//! Umbrella crate for the partial-compilation reproduction.
//!
//! This workspace reproduces *Gokhale et al., "Partial Compilation of Variational
//! Algorithms for Noisy Intermediate-Scale Quantum Machines" (MICRO-52, 2019)* as a set
//! of Rust crates. This crate simply re-exports the workspace so examples and
//! integration tests can use one import path; the interesting code lives in:
//!
//! * [`linalg`] — complex dense linear algebra (matrices, `expm`, `eigh`, fidelities).
//! * [`circuit`] — the quantum-circuit IR, transpiler passes, scheduling, and routing.
//! * [`sim`] — unitary / state-vector simulation and Pauli-operator expectation values.
//! * [`pulse`] — GRAPE quantum optimal control against the gmon device model.
//! * [`apps`] — the VQE-UCCSD and QAOA MAXCUT benchmark generators and the classical
//!   optimizer closing the variational loop.
//! * [`core`] — the paper's contribution: gate-based, strict partial, flexible partial,
//!   and full-GRAPE compilation behind one [`core::PartialCompiler`] API.
//! * [`runtime`] — the request-scheduling compilation service: a sharded pulse cache,
//!   a bounded-admission submission front-end with per-client priorities and
//!   backpressure, a scheduler that merges and deduplicates block tasks across
//!   requests onto a persistent worker pool, a synchronous batch API over many
//!   circuits / variational iterations, and persistent cache warm-start.
//! * [`transport`] — the service served over TCP: a length-prefixed, versioned,
//!   bincode-encoded wire protocol, a multi-threaded server that maps authenticated
//!   connections to service client ids (streaming per-job completion events and
//!   canceling on disconnect), and a blocking client library. The `vqc-serve` /
//!   `vqc-submit` binaries in `crates/apps` wrap the two ends.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the reproduction of every table and figure.

pub use vqc_apps as apps;
pub use vqc_circuit as circuit;
pub use vqc_core as core;
pub use vqc_linalg as linalg;
pub use vqc_pulse as pulse;
pub use vqc_runtime as runtime;
pub use vqc_sim as sim;
pub use vqc_transport as transport;
