//! `#[derive(Serialize, Deserialize)]` for the workspace serde shim.
//!
//! The build environment has no registry access, so this crate cannot use `syn` /
//! `quote`; instead it walks the raw [`proc_macro::TokenStream`] of the deriving item
//! directly. That is tractable because the workspace only derives on non-generic
//! structs and enums without serde attributes — exactly the shapes this parser
//! supports. Anything fancier (generics, lifetimes, `#[serde(...)]`) is rejected with
//! a compile error rather than silently miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The field shape of a struct or of one enum variant.
enum Fields {
    Unit,
    /// Named fields in declaration order.
    Named(Vec<String>),
    /// Number of tuple fields.
    Tuple(usize),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_serialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(message) => compile_error(&message),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(message) => compile_error(&message),
    }
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .expect("compile_error parses")
}

/// Walks the item tokens up to the struct/enum keyword, then parses the body.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.next() {
            // Attributes (including doc comments) come through as `#` + group.
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.next() {
                Some(TokenTree::Group(_)) => {}
                _ => return Err("malformed attribute on deriving item".into()),
            },
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                // Skip a `pub(crate)` / `pub(super)` restriction if present.
                if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    tokens.next();
                }
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "struct" => {
                let name = expect_ident(tokens.next())?;
                reject_generics(tokens.peek())?;
                return match tokens.next() {
                    Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                        Ok(Item::Struct {
                            name,
                            fields: Fields::Named(parse_named_fields(group.stream())?),
                        })
                    }
                    Some(TokenTree::Group(group))
                        if group.delimiter() == Delimiter::Parenthesis =>
                    {
                        Ok(Item::Struct {
                            name,
                            fields: Fields::Tuple(count_tuple_fields(group.stream())),
                        })
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                        name,
                        fields: Fields::Unit,
                    }),
                    _ => Err(format!("unsupported struct body for `{name}`")),
                };
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "enum" => {
                let name = expect_ident(tokens.next())?;
                reject_generics(tokens.peek())?;
                return match tokens.next() {
                    Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                        Ok(Item::Enum {
                            name,
                            variants: parse_variants(group.stream())?,
                        })
                    }
                    _ => Err(format!("unsupported enum body for `{name}`")),
                };
            }
            Some(_) => {}
            None => return Err("expected a struct or enum to derive on".into()),
        }
    }
}

fn expect_ident(token: Option<TokenTree>) -> Result<String, String> {
    match token {
        Some(TokenTree::Ident(ident)) => Ok(ident.to_string()),
        other => Err(format!("expected an identifier, found {other:?}")),
    }
}

fn reject_generics(token: Option<&TokenTree>) -> Result<(), String> {
    if let Some(TokenTree::Punct(p)) = token {
        if p.as_char() == '<' {
            return Err("the serde shim derive does not support generic types".into());
        }
    }
    Ok(())
}

/// Parses `name: Type, ...` field lists, returning the names in declaration order.
/// Commas inside `<...>` belong to the type and are skipped via angle-depth tracking
/// (commas inside parentheses/brackets are invisible here because groups are atomic
/// token trees).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Field prelude: attributes and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if !matches!(tokens.next(), Some(TokenTree::Group(_))) {
                        return Err("malformed field attribute".into());
                    }
                }
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    tokens.next();
                    if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        tokens.next();
                    }
                }
                _ => break,
            }
        }
        let Some(token) = tokens.next() else { break };
        let name = match token {
            TokenTree::Ident(ident) => ident.to_string(),
            other => return Err(format!("expected a field name, found {other}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        fields.push(name);
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for token in tokens.by_ref() {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut pending = false;
    for token in stream {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    count + pending as usize
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                if !matches!(tokens.next(), Some(TokenTree::Group(_))) {
                    return Err("malformed variant attribute".into());
                }
            } else {
                return Err(format!("unexpected `{p}` between enum variants"));
            }
        }
        let Some(token) = tokens.next() else { break };
        let name = match token {
            TokenTree::Ident(ident) => ident.to_string(),
            other => return Err(format!("expected a variant name, found {other}")),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(group.stream());
                tokens.next();
                Fields::Tuple(count)
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(group.stream())?;
                tokens.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        match tokens.next() {
            None => {
                variants.push((name, fields));
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push((name, fields)),
            Some(other) => return Err(format!("unexpected `{other}` after variant `{name}`")),
        }
    }
    Ok(variants)
}

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => String::new(),
                Fields::Named(names) => names
                    .iter()
                    .map(|f| format!("serde::ser::Serialize::serialize(&self.{f}, out);"))
                    .collect(),
                Fields::Tuple(count) => (0..*count)
                    .map(|i| format!("serde::ser::Serialize::serialize(&self.{i}, out);"))
                    .collect(),
            };
            format!(
                "#[automatically_derived]\n\
                 impl serde::ser::Serialize for {name} {{\n\
                     fn serialize(&self, out: &mut std::vec::Vec<u8>) {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .enumerate()
                .map(|(tag, (variant, fields))| {
                    let tag = tag as u32;
                    match fields {
                        Fields::Unit => format!(
                            "{name}::{variant} => {{ serde::ser::Serialize::serialize(&{tag}u32, out); }}\n"
                        ),
                        Fields::Named(field_names) => {
                            let bindings = field_names.join(", ");
                            let writes: String = field_names
                                .iter()
                                .map(|f| format!("serde::ser::Serialize::serialize({f}, out);"))
                                .collect();
                            format!(
                                "{name}::{variant} {{ {bindings} }} => {{\n\
                                     serde::ser::Serialize::serialize(&{tag}u32, out);\n\
                                     {writes}\n\
                                 }}\n"
                            )
                        }
                        Fields::Tuple(count) => {
                            let bindings: Vec<String> = (0..*count).map(|i| format!("__f{i}")).collect();
                            let writes: String = bindings
                                .iter()
                                .map(|b| format!("serde::ser::Serialize::serialize({b}, out);"))
                                .collect();
                            format!(
                                "{name}::{variant}({}) => {{\n\
                                     serde::ser::Serialize::serialize(&{tag}u32, out);\n\
                                     {writes}\n\
                                 }}\n",
                                bindings.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl serde::ser::Serialize for {name} {{\n\
                     fn serialize(&self, out: &mut std::vec::Vec<u8>) {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    let read = "serde::de::Deserialize::deserialize(reader)?";
    let constructor = |name: &str, fields: &Fields| match fields {
        Fields::Unit => name.to_string(),
        Fields::Named(field_names) => {
            let inits: Vec<String> = field_names.iter().map(|f| format!("{f}: {read}")).collect();
            format!("{name} {{ {} }}", inits.join(", "))
        }
        Fields::Tuple(count) => {
            let inits: Vec<String> = (0..*count).map(|_| read.to_string()).collect();
            format!("{name}({})", inits.join(", "))
        }
    };
    match item {
        Item::Struct { name, fields } => {
            let build = constructor(name, fields);
            format!(
                "#[automatically_derived]\n\
                 impl serde::de::Deserialize for {name} {{\n\
                     fn deserialize(reader: &mut serde::de::Reader<'_>) \
                         -> std::result::Result<Self, serde::de::Error> {{\n\
                         std::result::Result::Ok({build})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .enumerate()
                .map(|(tag, (variant, fields))| {
                    let build = constructor(&format!("{name}::{variant}"), fields);
                    format!("{tag}u32 => std::result::Result::Ok({build}),\n")
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl serde::de::Deserialize for {name} {{\n\
                     fn deserialize(reader: &mut serde::de::Reader<'_>) \
                         -> std::result::Result<Self, serde::de::Error> {{\n\
                         let __tag: u32 = serde::de::Deserialize::deserialize(reader)?;\n\
                         match __tag {{\n\
                             {arms}\n\
                             __other => std::result::Result::Err(serde::de::Error::custom(\
                                 format!(\"invalid variant tag {{__other}} for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
