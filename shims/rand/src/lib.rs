//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API the workspace uses — `StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_bool`] / [`Rng::gen_range`], and
//! [`seq::SliceRandom::shuffle`] — on top of xoshiro256** seeded through splitmix64.
//! The streams differ from upstream rand's, but every consumer in this workspace only
//! relies on determinism for a fixed seed, not on specific values.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform sample from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "cannot sample from empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift bounded sampling; the modulo bias over a 64-bit stream is
        // far below anything the benchmark generators could observe.
        range.start + (self.next_u64() % span) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Random rearrangement and selection on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=0.25");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut values: Vec<usize> = (0..50).collect();
        values.shuffle(&mut rng);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
