//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests use:
//! range strategies, tuple strategies, `prop_map` / `prop_filter` / `prop_filter_map`,
//! `prop::collection::vec`, `prop_oneof!`, and the `proptest!` test macro with
//! `#![proptest_config(...)]`. Test cases are generated from a deterministic
//! per-test-name stream (so CI runs are reproducible) and there is no shrinking: a
//! failing case panics with the generating values Debug-printed.

use std::ops::Range;

/// Marker returned when a strategy rejects a candidate (e.g. a failed `prop_filter`).
#[derive(Debug, Clone)]
pub struct Rejection(pub &'static str);

/// Failure raised by `prop_assert!` and friends inside a test case body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

/// Deterministic random stream used to generate test cases (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Creates a stream that is a deterministic function of the seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Produces one value, or a [`Rejection`] if the candidate was filtered out.
    fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Maps generated values through a function.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Rejects generated values failing the predicate; the runner retries.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            base: self,
            reason,
            f,
        }
    }

    /// Maps generated values through a partial function, rejecting `None`.
    fn prop_filter_map<O: std::fmt::Debug, F: Fn(Self::Value) -> Option<O>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            base: self,
            reason,
            f,
        }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a container
    /// (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| {
            self.new_value(rng)
        }))
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.base.new_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    base: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        let value = self.base.new_value(rng)?;
        if (self.f)(&value) {
            Ok(value)
        } else {
            Err(Rejection(self.reason))
        }
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    base: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        let value = self.base.new_value(rng)?;
        (self.f)(value).ok_or(Rejection(self.reason))
    }
}

/// The generator function a [`BoxedStrategy`] erases to.
type DynGenerator<V> = dyn Fn(&mut TestRng) -> Result<V, Rejection>;

/// A type-erased strategy; see [`Strategy::boxed`].
#[derive(Clone)]
pub struct BoxedStrategy<V>(std::rc::Rc<DynGenerator<V>>);

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoxedStrategy")
    }
}

impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> Result<V, Rejection> {
        (self.0)(rng)
    }
}

/// Uniform choice between several strategies of one value type (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> Result<V, Rejection> {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].new_value(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> Result<f64, Rejection> {
        Ok(self.start + (self.end - self.start) * rng.unit_f64())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn new_value(&self, rng: &mut TestRng) -> Result<f32, Rejection> {
        Ok(self.start + (self.end - self.start) * rng.unit_f64() as f32)
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> Result<$ty, Rejection> {
                if self.start >= self.end {
                    return Err(Rejection("empty integer range"));
                }
                let span = (self.end as i128 - self.start as i128) as u64;
                Ok((self.start as i128 + rng.below(span) as i128) as $ty)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                Ok(($(self.$idx.new_value(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Strategies over collections (`prop::collection`).
pub mod collection {
    use super::{Rejection, Strategy, TestRng};

    /// A length specification: a fixed size or a half-open range of sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max: len + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec length range");
            SizeRange {
                min: range.start,
                max: range.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements come from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Re-exports giving the `prop::collection::vec` path used by the tests.
pub mod prop {
    pub use crate::collection;
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives one property test: generates `config.cases` values (retrying rejections)
/// and runs the case body on each. Called by the `proptest!` macro, not directly.
///
/// # Panics
///
/// Panics when a case fails or when the strategy rejects too many candidates in a row.
pub fn run_proptest<S: Strategy>(
    config: ProptestConfig,
    name: &str,
    strategy: S,
    case: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    // Seed from the test name so every test sees an independent but reproducible
    // stream (FNV-1a over the name).
    let seed = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    });
    let mut rng = TestRng::seeded(seed);
    const MAX_CONSECUTIVE_REJECTIONS: u32 = 10_000;
    for case_index in 0..config.cases {
        let mut rejections = 0u32;
        let value = loop {
            match strategy.new_value(&mut rng) {
                Ok(value) => break value,
                Err(Rejection(reason)) => {
                    rejections += 1;
                    if rejections >= MAX_CONSECUTIVE_REJECTIONS {
                        panic!(
                            "proptest {name}: strategy rejected {MAX_CONSECUTIVE_REJECTIONS} \
                             candidates in a row (last reason: {reason})"
                        );
                    }
                }
            }
        };
        let repr = format!("{value:?}");
        if let Err(TestCaseError(message)) = case(value) {
            panic!(
                "proptest {name} failed at case {case_index}/{}: {message}\n  input: {repr}",
                config.cases
            );
        }
    }
}

/// The `proptest!` test-suite macro: expands each `fn name(arg in strategy, ...)` into
/// an ordinary `#[test]` driven by [`run_proptest`].
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(
                    $config,
                    stringify!($name),
                    ($($strategy,)+),
                    |__value| {
                        let ($($arg,)+) = __value;
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` case, failing the case (with the inputs
/// printed) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// One-import prelude mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(usize),
        B(f64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0..3.0f64, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn filters_are_respected(pair in (0usize..5, 0usize..5).prop_filter("distinct", |(a, b)| a != b)) {
            prop_assert_ne!(pair.0, pair.1);
        }

        #[test]
        fn vec_lengths_follow_the_size_range(v in prop::collection::vec(0.0..1.0f64, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn oneof_covers_both_arms(op in prop_oneof![
            (0usize..4).prop_map(Op::A),
            (-1.0..1.0f64).prop_map(Op::B),
        ]) {
            match op {
                Op::A(n) => prop_assert!(n < 4),
                Op::B(x) => prop_assert!((-1.0..1.0).contains(&x)),
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_input() {
        crate::run_proptest(
            ProptestConfig::with_cases(16),
            "always_fails",
            (0usize..10,),
            |_| Err(TestCaseError::fail("forced failure")),
        );
    }
}
