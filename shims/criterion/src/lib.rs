//! Offline stand-in for `criterion`.
//!
//! Provides the benchmark-harness surface the workspace uses — `Criterion`,
//! `benchmark_group` / `bench_function` / `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a deliberately simple
//! measurement loop (one warm-up call, then up to `sample_size` timed calls under a
//! wall-clock budget). Recorded results are kept on the `Criterion` value so harness
//! binaries can post-process them (e.g. emit a JSON summary).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (empty for top-level `Criterion::bench_function`).
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed iteration, in nanoseconds.
    pub min_ns: f64,
    /// Number of timed iterations behind the mean.
    pub samples: usize,
}

/// The benchmark harness: runs closures and records their timings.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

/// Wall-clock budget one benchmark may spend on timed samples.
const SAMPLE_BUDGET: Duration = Duration::from_secs(3);

fn run_benchmark(
    results: &mut Vec<BenchResult>,
    group: &str,
    name: String,
    sample_size: usize,
    mut routine: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    routine(&mut bencher);
    let samples = bencher.samples_ns;
    let (mean_ns, min_ns) = if samples.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        (
            samples.iter().sum::<f64>() / samples.len() as f64,
            samples.iter().cloned().fold(f64::INFINITY, f64::min),
        )
    };
    let qualified = if group.is_empty() {
        name.clone()
    } else {
        format!("{group}/{name}")
    };
    println!(
        "bench {qualified:<52} mean {:>12.1} ns  ({} samples)",
        mean_ns,
        samples.len()
    );
    results.push(BenchResult {
        group: group.to_string(),
        name,
        mean_ns,
        min_ns,
        samples: samples.len(),
    });
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&mut self.results, "", name.into(), 20, routine);
        self
    }

    /// All measurements recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A named collection of benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(
            &mut self.criterion.results,
            &self.name,
            name.into(),
            self.sample_size,
            routine,
        );
        self
    }

    /// Ends the group (measurements are already recorded; this exists for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the routine handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`: one untimed warm-up call, then up to `sample_size` timed calls
    /// (stopping early if the wall-clock budget is exhausted).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        let budget_start = Instant::now();
        for done in 0..self.sample_size {
            let started = Instant::now();
            black_box(routine());
            self.samples_ns.push(started.elapsed().as_secs_f64() * 1e9);
            if budget_start.elapsed() > SAMPLE_BUDGET && done + 1 >= 1 {
                break;
            }
        }
    }
}

/// Bundles benchmark functions into one group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generates `main` running the given group runners in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            println!("{} benchmarks recorded", criterion.results().len());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::Criterion;

    #[test]
    fn measurements_are_recorded_per_group() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(5);
        group.bench_function("square", |b| b.iter(|| super::black_box(7u64).pow(2)));
        group.bench_function(format!("cube_{}", 3), |b| {
            b.iter(|| super::black_box(3u64).pow(3))
        });
        group.finish();
        let results = criterion.results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].group, "demo");
        assert_eq!(results[1].name, "cube_3");
        assert!(results.iter().all(|r| r.samples >= 1 && r.mean_ns >= 0.0));
    }
}
