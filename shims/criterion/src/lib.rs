//! Offline stand-in for `criterion`.
//!
//! Provides the benchmark-harness surface the workspace uses — `Criterion`,
//! `benchmark_group` / `bench_function` / `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with a deliberately simple
//! measurement loop (one warm-up call, then up to `sample_size` timed calls under a
//! wall-clock budget). Recorded results are kept on the `Criterion` value so harness
//! binaries can post-process them (e.g. emit a JSON summary).
//!
//! Like real criterion, passing `--test` to a bench binary (`cargo bench -- --test`)
//! runs every benchmark routine exactly once as a smoke test without measuring —
//! that is how CI keeps bench code compiling *and running* without paying for real
//! measurements. Bench binaries that post-process results should skip their own
//! report emission when [`Criterion::test_mode`] is set.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (empty for top-level `Criterion::bench_function`).
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed iteration, in nanoseconds.
    pub min_ns: f64,
    /// Number of timed iterations behind the mean.
    pub samples: usize,
}

/// The benchmark harness: runs closures and records their timings.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
    test_mode: bool,
}

/// Wall-clock budget one benchmark may spend on timed samples.
const SAMPLE_BUDGET: Duration = Duration::from_secs(3);

fn run_benchmark(
    results: &mut Vec<BenchResult>,
    group: &str,
    name: String,
    sample_size: usize,
    test_mode: bool,
    mut routine: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_size,
        test_mode,
        samples_ns: Vec::new(),
    };
    routine(&mut bencher);
    if test_mode {
        let qualified = if group.is_empty() {
            name.clone()
        } else {
            format!("{group}/{name}")
        };
        println!("bench {qualified:<52} ok (smoke test, unmeasured)");
        return;
    }
    let samples = bencher.samples_ns;
    let (mean_ns, min_ns) = if samples.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        (
            samples.iter().sum::<f64>() / samples.len() as f64,
            samples.iter().cloned().fold(f64::INFINITY, f64::min),
        )
    };
    let qualified = if group.is_empty() {
        name.clone()
    } else {
        format!("{group}/{name}")
    };
    println!(
        "bench {qualified:<52} mean {:>12.1} ns  ({} samples)",
        mean_ns,
        samples.len()
    );
    results.push(BenchResult {
        group: group.to_string(),
        name,
        mean_ns,
        min_ns,
        samples: samples.len(),
    });
}

impl Criterion {
    /// Builds a harness configured from the binary's command-line arguments:
    /// `--test` selects smoke-test mode (each routine runs once, unmeasured), as
    /// with real criterion's `cargo bench -- --test`.
    pub fn from_args() -> Self {
        Criterion {
            results: Vec::new(),
            test_mode: std::env::args().any(|arg| arg == "--test"),
        }
    }

    /// Whether the harness is running as a smoke test (`--test`): routines execute
    /// once, nothing is measured, and report emission should be skipped.
    pub fn test_mode(&self) -> bool {
        self.test_mode
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let test_mode = self.test_mode;
        run_benchmark(&mut self.results, "", name.into(), 20, test_mode, routine);
        self
    }

    /// All measurements recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A named collection of benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(
            &mut self.criterion.results,
            &self.name,
            name.into(),
            self.sample_size,
            self.criterion.test_mode,
            routine,
        );
        self
    }

    /// Ends the group (measurements are already recorded; this exists for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the routine handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`: one untimed warm-up call, then up to `sample_size` timed calls
    /// (stopping early if the wall-clock budget is exhausted). In smoke-test mode
    /// the routine runs exactly once and nothing is recorded.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        if self.test_mode {
            return;
        }
        let budget_start = Instant::now();
        for done in 0..self.sample_size {
            let started = Instant::now();
            black_box(routine());
            self.samples_ns.push(started.elapsed().as_secs_f64() * 1e9);
            if budget_start.elapsed() > SAMPLE_BUDGET && done + 1 >= 1 {
                break;
            }
        }
    }
}

/// Bundles benchmark functions into one group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generates `main` running the given group runners in order. `--test` on the
/// command line switches the run into smoke-test mode.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $($group(&mut criterion);)+
            if criterion.test_mode() {
                println!("benchmarks smoke-tested (run without --test to measure)");
            } else {
                println!("{} benchmarks recorded", criterion.results().len());
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::Criterion;

    #[test]
    fn smoke_mode_runs_each_routine_once_and_records_nothing() {
        let mut criterion = Criterion {
            results: Vec::new(),
            test_mode: true,
        };
        assert!(criterion.test_mode());
        let mut calls = 0u32;
        criterion.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1, "smoke mode runs the routine exactly once");
        assert!(criterion.results().is_empty(), "nothing is measured");
    }

    #[test]
    fn measurements_are_recorded_per_group() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(5);
        group.bench_function("square", |b| b.iter(|| super::black_box(7u64).pow(2)));
        group.bench_function(format!("cube_{}", 3), |b| {
            b.iter(|| super::black_box(3u64).pow(3))
        });
        group.finish();
        let results = criterion.results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].group, "demo");
        assert_eq!(results[1].name, "cube_3");
        assert!(results.iter().all(|r| r.samples >= 1 && r.mean_ns >= 0.0));
    }
}
