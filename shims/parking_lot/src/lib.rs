//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the API surface the workspace uses is provided: `Mutex` and `RwLock` whose
//! lock methods return guards directly (no `LockResult`). Poisoning is deliberately
//! ignored — parking_lot has no poisoning, and matching that behavior keeps callers
//! identical — by unwrapping `PoisonError` into its inner guard.

use std::sync::PoisonError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's panic-free `read()`/`write()` signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_provides_exclusive_access_across_threads() {
        let counter = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *counter.lock() += 1;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(vec![1, 2]);
        assert_eq!(lock.read().len(), 2);
        lock.write().push(3);
        assert_eq!(*lock.read(), vec![1, 2, 3]);
    }
}
