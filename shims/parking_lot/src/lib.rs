//! Offline stand-in for `parking_lot`, backed by `std::sync` — now with an
//! optional lock-order checker.
//!
//! Only the API surface the workspace uses is provided: `Mutex`, `RwLock`, and
//! `Condvar` whose lock methods return guards directly (no `LockResult`).
//! Poisoning is deliberately ignored — parking_lot has no poisoning, and
//! matching that behavior keeps callers identical — by unwrapping
//! `PoisonError` into its inner guard.
//!
//! With `VQC_LOCK_CHECK=1` (see [`lock_check`]), every acquisition is checked
//! against a global acquisition-order graph: ABBA inversions and re-entrant
//! acquisitions panic with both conflicting sites named, and guards held past
//! `VQC_LOCK_HOLD_MS` are counted and reported through a pluggable hook. The
//! lock methods are `#[track_caller]`, so violations name the *caller's*
//! `file:line:column`, not the shim's.

use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::PoisonError;
use std::time::Duration;

mod check;

pub use check::LongHoldEvent;

/// The lock-order checker's public switchboard (`VQC_LOCK_CHECK`,
/// `VQC_LOCK_HOLD_MS`, test overrides, counters, and the long-hold reporter).
pub mod lock_check {
    pub use crate::check::{
        enabled, force, long_holds, order_edges, set_hold_threshold, set_long_hold_reporter,
        LongHoldEvent, LongHoldReporter,
    };
}

use check::{HeldKind, Track};
use std::sync::atomic::AtomicU64;

/// Mutual exclusion primitive with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    /// Lock-checker class id, lazily assigned on first acquisition (0 = none).
    class: AtomicU64,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. The inner `std` guard lives in an `Option` so
/// [`Condvar::wait`] can temporarily take it while the thread sleeps.
pub struct MutexGuard<'a, T: ?Sized> {
    track: Option<Track>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            class: AtomicU64::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let track = check::preflight(&self.class, Location::caller(), HeldKind::Exclusive);
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(track) = track {
            check::register(track);
        }
        MutexGuard {
            track,
            inner: Some(guard),
        }
    }

    /// Attempts to acquire the mutex without blocking. A failed attempt is not
    /// an ordering event, so only successful acquisitions are tracked.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        let track = check::acquired_nonblocking(&self.class, Location::caller());
        Some(MutexGuard {
            track,
            inner: Some(guard),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("mutex guard is only vacant inside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("mutex guard is only vacant inside Condvar::wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the OS lock *before* the hold check so a slow reporter never
        // extends the critical section it is reporting on.
        self.inner = None;
        if let Some(track) = self.track.take() {
            check::release(track);
        }
    }
}

/// Reader-writer lock with parking_lot's panic-free `read()`/`write()` signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    /// Lock-checker class id, lazily assigned on first acquisition (0 = none).
    class: AtomicU64,
    inner: std::sync::RwLock<T>,
}

/// Shared RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    track: Option<Track>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

/// Exclusive RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    track: Option<Track>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            class: AtomicU64::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let track = check::preflight(&self.class, Location::caller(), HeldKind::Shared);
        let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        if let Some(track) = track {
            check::register(track);
        }
        RwLockReadGuard {
            track,
            inner: Some(guard),
        }
    }

    /// Acquires an exclusive write guard.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let track = check::preflight(&self.class, Location::caller(), HeldKind::Exclusive);
        let guard = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(track) = track {
            check::register(track);
        }
        RwLockWriteGuard {
            track,
            inner: Some(guard),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("read guard is never vacant")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(track) = self.track.take() {
            check::release(track);
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("write guard is never vacant")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("write guard is never vacant")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner = None;
        if let Some(track) = self.track.take() {
            check::release(track);
        }
    }
}

/// Result of [`Condvar::wait_timeout`], mirroring parking_lot's shape.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's `wait(&mut guard)` signature.
///
/// While a thread is parked in `wait`, its hold on the mutex is suspended for
/// lock-order accounting: the guard is popped from the held stack (running the
/// long-hold check on the time held *so far*) and re-registered after waking,
/// so time spent parked never counts as holding the lock.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let track = guard.track.take();
        if let Some(track) = track {
            check::release(track);
        }
        let inner = guard
            .inner
            .take()
            .expect("condvar waits do not nest on one guard");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        if let Some(track) = track {
            check::register(track);
            guard.track = Some(track);
        }
    }

    /// Blocks until notified or `timeout` elapses, releasing the mutex while
    /// parked.
    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let track = guard.track.take();
        if let Some(track) = track {
            check::release(track);
        }
        let inner = guard
            .inner
            .take()
            .expect("condvar waits do not nest on one guard");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        if let Some(track) = track {
            check::register(track);
            guard.track = Some(track);
        }
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{lock_check, Condvar, Mutex, RwLock};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_provides_exclusive_access_across_threads() {
        let counter = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *counter.lock() += 1;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(vec![1, 2]);
        assert_eq!(lock.read().len(), 2);
        lock.write().push(3);
        assert_eq!(*lock.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (flag, cv) = &*pair;
                let mut ready = flag.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        let (flag, cv) = &*pair;
        *flag.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn condvar_wait_timeout_reports_timeout() {
        let flag = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = flag.lock();
        let result = cv.wait_timeout(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
    }

    // The lock-check tests below toggle the process-global `force` switch, so
    // they run in one test to avoid racing each other under the parallel
    // harness (the other tests in this binary never enable the checker).
    #[test]
    fn lock_check_detects_violations() {
        lock_check::force(true);

        // ABBA inversion: the A→B edge is established, then a B→A acquisition
        // panics deterministically — no unlucky interleaving required.
        let result = std::thread::spawn(|| {
            let a = Mutex::new(());
            let b = Mutex::new(());
            {
                let _ga = a.lock(); // site A1
                let _gb = b.lock(); // site B1: records A→B
            }
            let _gb = b.lock(); // site B2
            let _ga = a.lock(); // site A2: B→A closes the cycle → panic
        })
        .join();
        let message = panic_text(result);
        assert!(
            message.contains("lock-order inversion"),
            "unexpected panic: {message}"
        );
        // Both conflicting site pairs are named with this file's path.
        assert!(
            message.matches("lib.rs").count() >= 2,
            "sites not named: {message}"
        );

        // Re-entrant acquisition of the same instance panics instead of
        // deadlocking.
        let result = std::thread::spawn(|| {
            let m = Mutex::new(());
            let _first = m.lock();
            let _second = m.lock();
        })
        .join();
        let message = panic_text(result);
        assert!(
            message.contains("re-entrant acquisition"),
            "unexpected panic: {message}"
        );

        // Long holds fire the reporter with site and thread attribution.
        let events = Arc::new(Mutex::new(Vec::new()));
        {
            let events = Arc::clone(&events);
            lock_check::set_long_hold_reporter(Some(Arc::new(move |event| {
                events
                    .lock()
                    .push((event.site.clone(), event.thread.clone()));
            })));
        }
        lock_check::set_hold_threshold(Some(Duration::from_millis(1)));
        let before = lock_check::long_holds();
        std::thread::Builder::new()
            .name("vqc-hold-test".into())
            .spawn(|| {
                let slow = Mutex::new(());
                let _guard = slow.lock();
                std::thread::sleep(Duration::from_millis(10));
            })
            .unwrap()
            .join()
            .unwrap();
        assert!(lock_check::long_holds() > before);
        let seen = events.lock().clone();
        assert!(
            seen.iter()
                .any(|(site, thread)| site.contains("lib.rs") && thread == "vqc-hold-test"),
            "long hold not attributed: {seen:?}"
        );
        lock_check::set_hold_threshold(None);
        lock_check::set_long_hold_reporter(None);

        // Shared readers may nest on one instance without tripping the
        // re-entrancy rule.
        let rw = RwLock::new(0u32);
        let _r1 = rw.read();
        let _r2 = rw.read();
        drop(_r1);
        drop(_r2);

        // A condvar wait suspends the hold clock: order edges survive, and the
        // parked time is not reported as a hold.
        lock_check::set_hold_threshold(Some(Duration::from_millis(50)));
        let held_before = lock_check::long_holds();
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (flag, cv) = &*pair;
                let mut ready = flag.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
            })
        };
        std::thread::sleep(Duration::from_millis(120));
        {
            let (flag, cv) = &*pair;
            *flag.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
        assert_eq!(
            lock_check::long_holds(),
            held_before,
            "parked condvar wait must not count as a long hold"
        );
        lock_check::set_hold_threshold(None);

        lock_check::force(false);
    }

    fn panic_text(result: std::thread::Result<()>) -> String {
        let payload = result.expect_err("thread should have panicked");
        if let Some(text) = payload.downcast_ref::<String>() {
            text.clone()
        } else if let Some(text) = payload.downcast_ref::<&str>() {
            (*text).to_string()
        } else {
            String::from("<non-string panic payload>")
        }
    }
}
