//! The lock-order checker behind `VQC_LOCK_CHECK=1`.
//!
//! Every acquisition through the shim's [`crate::Mutex`] / [`crate::RwLock`] is
//! (when enabled) recorded against a per-thread stack of currently held locks
//! and a process-global acquisition-order graph:
//!
//! * **Lock identity is per instance.** Each lock is lazily assigned a
//!   process-unique class id on first acquisition (never reused, so stack- or
//!   heap-address recycling cannot merge two locks' histories). Acquisition
//!   sites — `file:line:column` via `#[track_caller]` — are recorded as edge
//!   metadata so violations name real source locations.
//! * **Edges are held→acquired pairs.** Acquiring `B` while holding `A` inserts
//!   the directed edge `A → B`, remembering both acquisition sites and the
//!   thread that first established it. Before the edge is committed, a
//!   depth-first search checks whether `B` can already reach `A`; if it can,
//!   both conflicting site pairs — the established path and the inverted
//!   acquisition happening now — are formatted into a panic, *before* the
//!   thread blocks. An ABBA inversion is therefore detected deterministically
//!   from the order history, even when the interleaving never actually
//!   deadlocks.
//! * **Re-entrant acquisition panics.** Locking a `Mutex` (or write-locking a
//!   `RwLock`) the thread already holds would deadlock `std::sync` silently;
//!   the checker reports both sites instead. Shared readers may nest.
//! * **Long holds are reported, not fatal.** A guard held longer than
//!   `VQC_LOCK_HOLD_MS` (default 250 ms) increments [`long_holds`] and invokes
//!   the registered [`set_long_hold_reporter`] hook — the runtime points that
//!   hook at its telemetry trace ring. Condvar waits release the hold clock
//!   while the thread sleeps, so a parked aggregator is not a "hold".
//!
//! When disabled (the default), every instrumentation site reduces to one
//! relaxed atomic load and an already-initialized `OnceLock` read.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex as StdMutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// How a lock is held, for re-entrancy rules (shared readers may nest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HeldKind {
    Exclusive,
    Shared,
}

/// An acquisition site: the `#[track_caller]` location of the lock call.
type Site = (&'static str, u32, u32);

fn site_of(location: &'static Location<'static>) -> Site {
    (location.file(), location.line(), location.column())
}

fn site_name(site: Site) -> String {
    format!("{}:{}:{}", site.0, site.1, site.2)
}

static NEXT_CLASS: AtomicU64 = AtomicU64::new(1);

/// Resolves a lock instance's class id, assigning one on first acquisition.
/// Ids start at 1 so the `AtomicU64::new(0)` in `const fn new` means
/// "unassigned"; they are never reused, so recycled addresses cannot merge
/// two locks' order histories.
pub(crate) fn class_of(slot: &AtomicU64) -> u64 {
    let existing = slot.load(Ordering::Relaxed);
    if existing != 0 {
        return existing;
    }
    let id = NEXT_CLASS.fetch_add(1, Ordering::Relaxed);
    match slot.compare_exchange(0, id, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => id,
        Err(actual) => actual,
    }
}

/// One edge of the acquisition-order graph, with its first observation.
#[derive(Debug, Clone)]
struct EdgeInfo {
    /// Site at which the already-held lock had been acquired.
    held_site: Site,
    /// Site of the acquisition that created the edge.
    acquired_site: Site,
    /// Name of the thread that first established the ordering.
    thread: String,
}

#[derive(Default)]
struct OrderGraph {
    /// Adjacency: held class → acquired class → first observation.
    edges: HashMap<u64, HashMap<u64, EdgeInfo>>,
}

impl OrderGraph {
    /// Is `to` reachable from `from`? Returns the class path when it is.
    fn path(&self, from: u64, to: u64) -> Option<Vec<u64>> {
        let mut stack = vec![(from, vec![from])];
        let mut visited = vec![from];
        while let Some((node, path)) = stack.pop() {
            if node == to {
                return Some(path);
            }
            if let Some(next) = self.edges.get(&node) {
                for candidate in next.keys() {
                    if !visited.contains(candidate) {
                        visited.push(*candidate);
                        let mut path = path.clone();
                        path.push(*candidate);
                        stack.push((*candidate, path));
                    }
                }
            }
        }
        None
    }
}

/// One entry of a thread's held-lock stack.
struct Held {
    class: u64,
    site: Site,
    kind: HeldKind,
    since: Instant,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    /// Re-entrancy fuse: a long-hold reporter that itself takes shim locks
    /// (the telemetry trace ring does) must not recurse into reporting.
    static IN_REPORTER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static GRAPH: StdMutex<Option<OrderGraph>> = StdMutex::new(None);
static LONG_HOLDS: AtomicU64 = AtomicU64::new(0);
static ORDER_EDGES: AtomicU64 = AtomicU64::new(0);

/// 0 = follow `VQC_LOCK_CHECK`, 1 = forced on, 2 = forced off.
static FORCE: AtomicU8 = AtomicU8::new(0);
static ENV_ENABLED: OnceLock<bool> = OnceLock::new();
/// Millisecond override installed by [`set_hold_threshold`]; `u64::MAX` = unset.
static HOLD_OVERRIDE_MS: AtomicU64 = AtomicU64::new(u64::MAX);
static ENV_HOLD: OnceLock<Duration> = OnceLock::new();

/// The long-hold hook type accepted by [`set_long_hold_reporter`].
pub type LongHoldReporter = Arc<dyn Fn(&LongHoldEvent) + Send + Sync>;
static REPORTER: StdMutex<Option<LongHoldReporter>> = StdMutex::new(None);

/// A guard outliving the long-hold threshold, as passed to the reporter hook.
#[derive(Debug, Clone)]
pub struct LongHoldEvent {
    /// `file:line:column` of the acquisition that held too long.
    pub site: String,
    /// How long the guard was held.
    pub held: Duration,
    /// Name of the holding thread (`<unnamed>` if the thread has none).
    pub thread: String,
}

/// Whether the lock-order checker is active (the `VQC_LOCK_CHECK` environment
/// variable, unless a [`force`] override is in effect).
#[inline]
pub fn enabled() -> bool {
    match FORCE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => *ENV_ENABLED.get_or_init(|| {
            matches!(
                std::env::var("VQC_LOCK_CHECK").as_deref(),
                Ok("1") | Ok("on") | Ok("true") | Ok("yes")
            )
        }),
    }
}

/// Overrides the `VQC_LOCK_CHECK` switch for this process (tests and
/// benchmarks; the environment variable is read once and cached, so toggling
/// it after startup has no effect without this).
pub fn force(enabled: bool) {
    FORCE.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
}

/// The long-hold threshold: [`set_hold_threshold`] override if present, else
/// `VQC_LOCK_HOLD_MS` (default 250 ms).
fn hold_threshold() -> Duration {
    let override_ms = HOLD_OVERRIDE_MS.load(Ordering::Relaxed);
    if override_ms != u64::MAX {
        return Duration::from_millis(override_ms);
    }
    *ENV_HOLD.get_or_init(|| {
        std::env::var("VQC_LOCK_HOLD_MS")
            .ok()
            .and_then(|raw| raw.parse::<u64>().ok())
            .map(Duration::from_millis)
            .unwrap_or(Duration::from_millis(250))
    })
}

/// Overrides the long-hold threshold for this process (tests; pass `None` to
/// fall back to `VQC_LOCK_HOLD_MS`).
pub fn set_hold_threshold(threshold: Option<Duration>) {
    HOLD_OVERRIDE_MS.store(
        threshold.map(|d| d.as_millis() as u64).unwrap_or(u64::MAX),
        Ordering::Relaxed,
    );
}

/// Installs (or clears) the hook invoked on every long hold. One hook per
/// process; the compilation runtime points it at its telemetry trace ring.
pub fn set_long_hold_reporter(reporter: Option<LongHoldReporter>) {
    *REPORTER.lock().unwrap_or_else(PoisonError::into_inner) = reporter;
}

/// Guards held longer than the threshold so far (process-wide).
pub fn long_holds() -> u64 {
    LONG_HOLDS.load(Ordering::Relaxed)
}

/// Distinct held→acquired orderings observed so far (process-wide). A clean
/// full-suite run under `VQC_LOCK_CHECK=1` accumulates edges without ever
/// finding a cycle.
pub fn order_edges() -> u64 {
    ORDER_EDGES.load(Ordering::Relaxed)
}

fn thread_name() -> String {
    std::thread::current()
        .name()
        .unwrap_or("<unnamed>")
        .to_string()
}

/// Tracking token carried by a live guard; `None` when the checker was
/// disabled at acquisition.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Track {
    class: u64,
    site: Site,
    kind: HeldKind,
}

/// Called *before* blocking on the lock: order-graph update, cycle detection,
/// re-entrancy detection. Panics on a violation (with the lock not yet taken,
/// so the panic propagates instead of deadlocking).
pub(crate) fn preflight(
    class_slot: &AtomicU64,
    location: &'static Location<'static>,
    kind: HeldKind,
) -> Option<Track> {
    if !enabled() {
        return None;
    }
    let class = class_of(class_slot);
    let site = site_of(location);
    let mut violation: Option<String> = None;
    HELD.with(|held| {
        let held = held.borrow();
        for entry in held.iter() {
            if entry.class == class {
                // Shared readers may nest on one instance; everything else is a
                // guaranteed self-deadlock under std::sync.
                if kind == HeldKind::Exclusive || entry.kind == HeldKind::Exclusive {
                    violation = Some(format!(
                        "lock-order violation: re-entrant acquisition at {} of the lock \
                         already held since {} on thread '{}' (std::sync would deadlock here)",
                        site_name(site),
                        site_name(entry.site),
                        thread_name(),
                    ));
                    return;
                }
            }
        }
        // Insert one edge per held lock, checking each for a cycle first.
        let mut graph_slot = GRAPH.lock().unwrap_or_else(PoisonError::into_inner);
        let graph = graph_slot.get_or_insert_with(OrderGraph::default);
        for entry in held.iter() {
            if entry.class == class {
                continue; // Shared re-read of the same instance: not an edge.
            }
            if graph
                .edges
                .get(&entry.class)
                .is_some_and(|next| next.contains_key(&class))
            {
                continue; // Edge already known (and acyclic at insertion).
            }
            if let Some(path) = graph.path(class, entry.class) {
                let mut message = format!(
                    "lock-order inversion (potential deadlock) detected:\n  \
                     thread '{}' acquires the lock at {} while holding the one taken at {}\n  \
                     but the opposite order is already established:\n",
                    thread_name(),
                    site_name(site),
                    site_name(entry.site),
                );
                for pair in path.windows(2) {
                    if let Some(info) = graph
                        .edges
                        .get(&pair[0])
                        .and_then(|next| next.get(&pair[1]))
                    {
                        message.push_str(&format!(
                            "    {} was acquired while holding {} (first seen on thread '{}')\n",
                            site_name(info.acquired_site),
                            site_name(info.held_site),
                            info.thread,
                        ));
                    }
                }
                violation = Some(message);
                return;
            }
            graph.edges.entry(entry.class).or_default().insert(
                class,
                EdgeInfo {
                    held_site: entry.site,
                    acquired_site: site,
                    thread: thread_name(),
                },
            );
            ORDER_EDGES.fetch_add(1, Ordering::Relaxed);
        }
    });
    if let Some(message) = violation {
        panic!("{message}");
    }
    Some(Track { class, site, kind })
}

/// Records a successful non-blocking acquisition (`try_lock`). A try-lock
/// cannot deadlock, so no order edge or cycle check is needed for the
/// acquisition itself — but the lock joins the held stack so that *later*
/// blocking acquisitions order against it and long holds are still caught.
pub(crate) fn acquired_nonblocking(
    class_slot: &AtomicU64,
    location: &'static Location<'static>,
) -> Option<Track> {
    if !enabled() {
        return None;
    }
    let track = Track {
        class: class_of(class_slot),
        site: site_of(location),
        kind: HeldKind::Exclusive,
    };
    register(track);
    Some(track)
}

/// Called once the lock is actually held: starts the hold clock.
pub(crate) fn register(track: Track) {
    HELD.with(|held| {
        held.borrow_mut().push(Held {
            class: track.class,
            site: track.site,
            kind: track.kind,
            since: Instant::now(),
        });
    });
}

/// Called when a guard releases (drop or condvar wait): pops the hold entry
/// and reports it if it outlived the threshold.
pub(crate) fn release(track: Track) {
    let since = HELD.with(|held| {
        let mut held = held.borrow_mut();
        // Pop the most recent entry for this instance (guards of one instance
        // release LIFO in practice; matching by class is robust either way).
        let index = held.iter().rposition(|entry| entry.class == track.class);
        index.map(|index| held.remove(index).since)
    });
    let Some(since) = since else { return };
    let held_for = since.elapsed();
    if held_for < hold_threshold() {
        return;
    }
    LONG_HOLDS.fetch_add(1, Ordering::Relaxed);
    if IN_REPORTER.with(|flag| flag.get()) {
        return;
    }
    let reporter = REPORTER
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if let Some(reporter) = reporter {
        let event = LongHoldEvent {
            site: site_name(track.site),
            held: held_for,
            thread: thread_name(),
        };
        IN_REPORTER.with(|flag| flag.set(true));
        reporter(&event);
        IN_REPORTER.with(|flag| flag.set(false));
    }
}
