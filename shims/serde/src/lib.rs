//! A small, offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to a crate registry, so the
//! subset of serde the codebase relies on — `#[derive(Serialize, Deserialize)]` on
//! plain structs and enums, driven by `bincode`-style binary encoding — is implemented
//! here. The traits are deliberately simpler than real serde's (no `Serializer` /
//! `Deserializer` abstraction, a single fixed little-endian binary format), which is
//! all the workspace needs: the only consumer is the pulse-cache snapshot persistence
//! in `vqc-runtime` via the sibling `bincode` shim.
//!
//! Wire format:
//! * fixed-width little-endian integers and floats (`usize` as `u64`),
//! * `bool` as one byte, `char` as its `u32` scalar value,
//! * length-prefixed (`u64`) sequences, strings, and maps,
//! * `Option` as a one-byte tag followed by the payload,
//! * enums as a `u32` variant index followed by the variant's fields in order.

pub mod ser {
    /// Types that can write themselves into the workspace binary format.
    pub trait Serialize {
        /// Appends the binary encoding of `self` to `out`.
        fn serialize(&self, out: &mut Vec<u8>);
    }
}

pub mod de {
    use std::fmt;

    /// Error produced when a byte buffer does not decode as the requested type.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        message: String,
    }

    impl Error {
        /// Creates an error with the given message.
        pub fn custom(message: impl Into<String>) -> Self {
            Error {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "deserialization error: {}", self.message)
        }
    }

    impl std::error::Error for Error {}

    /// Cursor over a byte buffer being deserialized.
    #[derive(Debug)]
    pub struct Reader<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// Creates a reader over the full buffer.
        pub fn new(buf: &'a [u8]) -> Self {
            Reader { buf, pos: 0 }
        }

        /// Number of bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.buf.len() - self.pos
        }

        /// Consumes exactly `n` bytes.
        pub fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
            if self.remaining() < n {
                return Err(Error::custom(format!(
                    "unexpected end of input: wanted {n} bytes, have {}",
                    self.remaining()
                )));
            }
            let slice = &self.buf[self.pos..self.pos + n];
            self.pos += n;
            Ok(slice)
        }

        /// Consumes a fixed-size array of bytes.
        pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], Error> {
            let mut out = [0u8; N];
            out.copy_from_slice(self.take(N)?);
            Ok(out)
        }

        /// Consumes a `u64` length prefix, sanity-checked against the remaining input.
        pub fn take_len(&mut self) -> Result<usize, Error> {
            let len = u64::from_le_bytes(self.take_array()?) as usize;
            // Every element of a sequence occupies at least one byte on the wire, so a
            // length prefix larger than the remaining input is always corrupt; checking
            // here keeps bad snapshots from triggering huge allocations.
            if len > self.remaining() {
                return Err(Error::custom(format!(
                    "length prefix {len} exceeds remaining input {}",
                    self.remaining()
                )));
            }
            Ok(len)
        }
    }

    /// Types that can reconstruct themselves from the workspace binary format.
    pub trait Deserialize: Sized {
        /// Reads one value from the reader.
        fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error>;
    }
}

pub use de::Deserialize;
pub use ser::Serialize;
// Re-export the derive macros under the same names, mirroring serde's `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

use de::{Error, Reader};

macro_rules! impl_fixed_width {
    ($($ty:ty),*) => {$(
        impl ser::Serialize for $ty {
            fn serialize(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl de::Deserialize for $ty {
            fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
                Ok(<$ty>::from_le_bytes(reader.take_array()?))
            }
        }
    )*};
}

impl_fixed_width!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

impl ser::Serialize for usize {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as u64).serialize(out);
    }
}

impl de::Deserialize for usize {
    fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
        let value = u64::deserialize(reader)?;
        usize::try_from(value).map_err(|_| Error::custom("usize overflow"))
    }
}

impl ser::Serialize for isize {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as i64).serialize(out);
    }
}

impl de::Deserialize for isize {
    fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
        let value = i64::deserialize(reader)?;
        isize::try_from(value).map_err(|_| Error::custom("isize overflow"))
    }
}

impl ser::Serialize for bool {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl de::Deserialize for bool {
    fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
        match reader.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::custom(format!("invalid bool byte {other}"))),
        }
    }
}

impl ser::Serialize for char {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as u32).serialize(out);
    }
}

impl de::Deserialize for char {
    fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
        let value = u32::deserialize(reader)?;
        char::from_u32(value).ok_or_else(|| Error::custom(format!("invalid char scalar {value}")))
    }
}

impl ser::Serialize for String {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl de::Deserialize for String {
    fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
        let len = reader.take_len()?;
        let bytes = reader.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::custom("invalid utf-8 string"))
    }
}

impl ser::Serialize for str {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl<T: ser::Serialize + ?Sized> ser::Serialize for &T {
    fn serialize(&self, out: &mut Vec<u8>) {
        (**self).serialize(out);
    }
}

impl<T: ser::Serialize> ser::Serialize for Option<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.serialize(out);
            }
        }
    }
}

impl<T: de::Deserialize> de::Deserialize for Option<T> {
    fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
        match reader.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(reader)?)),
            other => Err(Error::custom(format!("invalid option tag {other}"))),
        }
    }
}

impl<T: ser::Serialize, E: ser::Serialize> ser::Serialize for Result<T, E> {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            Ok(value) => {
                out.push(0);
                value.serialize(out);
            }
            Err(error) => {
                out.push(1);
                error.serialize(out);
            }
        }
    }
}

impl<T: de::Deserialize, E: de::Deserialize> de::Deserialize for Result<T, E> {
    fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
        match reader.take(1)?[0] {
            0 => Ok(Ok(T::deserialize(reader)?)),
            1 => Ok(Err(E::deserialize(reader)?)),
            other => Err(Error::custom(format!("invalid result tag {other}"))),
        }
    }
}

fn serialize_seq<'a, T: ser::Serialize + 'a>(
    items: impl ExactSizeIterator<Item = &'a T>,
    out: &mut Vec<u8>,
) {
    (items.len() as u64).serialize(out);
    for item in items {
        item.serialize(out);
    }
}

impl<T: ser::Serialize> ser::Serialize for Vec<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: de::Deserialize> de::Deserialize for Vec<T> {
    fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
        let len = reader.take_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::deserialize(reader)?);
        }
        Ok(out)
    }
}

impl<T: ser::Serialize> ser::Serialize for [T] {
    fn serialize(&self, out: &mut Vec<u8>) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: ser::Serialize, const N: usize> ser::Serialize for [T; N] {
    fn serialize(&self, out: &mut Vec<u8>) {
        for item in self {
            item.serialize(out);
        }
    }
}

impl<T: de::Deserialize + std::fmt::Debug, const N: usize> de::Deserialize for [T; N] {
    fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::deserialize(reader)?);
        }
        out.try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: ser::Serialize + Ord> ser::Serialize for std::collections::BTreeSet<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: de::Deserialize + Ord> de::Deserialize for std::collections::BTreeSet<T> {
    fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
        let len = reader.take_len()?;
        let mut out = std::collections::BTreeSet::new();
        for _ in 0..len {
            out.insert(T::deserialize(reader)?);
        }
        Ok(out)
    }
}

impl<T: ser::Serialize + Eq + std::hash::Hash> ser::Serialize for std::collections::HashSet<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: de::Deserialize + Eq + std::hash::Hash> de::Deserialize for std::collections::HashSet<T> {
    fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
        let len = reader.take_len()?;
        let mut out = std::collections::HashSet::with_capacity(len);
        for _ in 0..len {
            out.insert(T::deserialize(reader)?);
        }
        Ok(out)
    }
}

impl<K: ser::Serialize + Ord, V: ser::Serialize> ser::Serialize
    for std::collections::BTreeMap<K, V>
{
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        for (key, value) in self {
            key.serialize(out);
            value.serialize(out);
        }
    }
}

impl<K: de::Deserialize + Ord, V: de::Deserialize> de::Deserialize
    for std::collections::BTreeMap<K, V>
{
    fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
        let len = reader.take_len()?;
        let mut out = std::collections::BTreeMap::new();
        for _ in 0..len {
            let key = K::deserialize(reader)?;
            let value = V::deserialize(reader)?;
            out.insert(key, value);
        }
        Ok(out)
    }
}

impl<K: ser::Serialize + Eq + std::hash::Hash, V: ser::Serialize> ser::Serialize
    for std::collections::HashMap<K, V>
{
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        for (key, value) in self {
            key.serialize(out);
            value.serialize(out);
        }
    }
}

impl<K: de::Deserialize + Eq + std::hash::Hash, V: de::Deserialize> de::Deserialize
    for std::collections::HashMap<K, V>
{
    fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
        let len = reader.take_len()?;
        let mut out = std::collections::HashMap::with_capacity(len);
        for _ in 0..len {
            let key = K::deserialize(reader)?;
            let value = V::deserialize(reader)?;
            out.insert(key, value);
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: ser::Serialize),+> ser::Serialize for ($($name,)+) {
            fn serialize(&self, out: &mut Vec<u8>) {
                $(self.$idx.serialize(out);)+
            }
        }
        impl<$($name: de::Deserialize),+> de::Deserialize for ($($name,)+) {
            fn deserialize(reader: &mut Reader<'_>) -> Result<Self, Error> {
                Ok(($($name::deserialize(reader)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl ser::Serialize for () {
    fn serialize(&self, _out: &mut Vec<u8>) {}
}

impl de::Deserialize for () {
    fn deserialize(_reader: &mut Reader<'_>) -> Result<Self, Error> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::de::Reader;
    use super::{Deserialize, Serialize};
    use std::collections::{BTreeMap, BTreeSet, HashMap};

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: T) {
        let mut bytes = Vec::new();
        value.serialize(&mut bytes);
        let mut reader = Reader::new(&bytes);
        let back = T::deserialize(&mut reader).expect("round trip");
        assert_eq!(back, value);
        assert_eq!(reader.remaining(), 0);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(42u64);
        round_trip(-17i32);
        round_trip(3.5f64);
        round_trip(true);
        round_trip('θ');
        round_trip(String::from("pulse library"));
        round_trip(usize::MAX);
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1.0f64, -2.5, 0.0]);
        round_trip(Some(vec![(1usize, 2usize), (3, 4)]));
        round_trip(Option::<u8>::None);
        round_trip(BTreeSet::from([(0usize, 1usize), (1, 2)]));
        round_trip(BTreeMap::from([(String::from("a"), 1u32)]));
        round_trip(HashMap::from([(String::from("k"), vec![1u8, 2])]));
    }

    #[test]
    fn results_round_trip() {
        round_trip(Result::<u32, String>::Ok(7));
        round_trip(Result::<u32, String>::Err(String::from("queue full")));
        round_trip(vec![
            Result::<f64, u8>::Ok(1.5),
            Result::<f64, u8>::Err(3),
            Result::<f64, u8>::Ok(-0.25),
        ]);
        let mut bytes = Vec::new();
        2u8.serialize(&mut bytes); // neither the Ok nor the Err tag
        let mut reader = Reader::new(&bytes);
        assert!(Result::<u32, u32>::deserialize(&mut reader).is_err());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut bytes = Vec::new();
        vec![1u64, 2, 3].serialize(&mut bytes);
        bytes.truncate(bytes.len() - 1);
        let mut reader = Reader::new(&bytes);
        assert!(Vec::<u64>::deserialize(&mut reader).is_err());
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let bytes = u64::MAX.to_le_bytes();
        let mut reader = Reader::new(&bytes);
        assert!(Vec::<u8>::deserialize(&mut reader).is_err());
    }
}
