//! Offline stand-in for `bincode`: byte-buffer and `io` entry points over the
//! workspace serde shim's fixed little-endian binary format.

use std::fmt;
use std::io::{Read, Write};

/// Error raised by serialization or deserialization.
#[derive(Debug)]
pub enum Error {
    /// The byte stream did not decode as the requested type.
    Decode(serde::de::Error),
    /// An underlying reader or writer failed.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Decode(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::Decode(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Result alias matching bincode's.
pub type Result<T> = std::result::Result<T, Error>;

/// Encodes a value to a byte vector.
pub fn serialize<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    value.serialize(&mut out);
    Ok(out)
}

/// Decodes a value from a byte slice, requiring the slice to be fully consumed.
pub fn deserialize<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let mut reader = serde::de::Reader::new(bytes);
    let value = T::deserialize(&mut reader)?;
    if reader.remaining() != 0 {
        return Err(Error::Decode(serde::de::Error::custom(format!(
            "{} trailing bytes after value",
            reader.remaining()
        ))));
    }
    Ok(value)
}

/// Encodes a value into a writer.
pub fn serialize_into<W: Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let bytes = serialize(value)?;
    writer.write_all(&bytes)?;
    Ok(())
}

/// Decodes a value by reading a reader to its end.
pub fn deserialize_from<R: Read, T: serde::Deserialize>(mut reader: R) -> Result<T> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    deserialize(&bytes)
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sample {
        label: String,
        values: Vec<f64>,
        flag: bool,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Unit,
        Pair(u32, u32),
        Named { x: f64 },
    }

    #[test]
    fn derived_struct_round_trips() {
        let sample = Sample {
            label: "grape".into(),
            values: vec![1.5, -2.0],
            flag: true,
        };
        let bytes = super::serialize(&sample).unwrap();
        assert_eq!(super::deserialize::<Sample>(&bytes).unwrap(), sample);
    }

    #[test]
    fn derived_enum_round_trips() {
        for shape in [Shape::Unit, Shape::Pair(3, 4), Shape::Named { x: 0.25 }] {
            let bytes = super::serialize(&shape).unwrap();
            assert_eq!(super::deserialize::<Shape>(&bytes).unwrap(), shape);
        }
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = super::serialize(&7u32).unwrap();
        bytes.push(0);
        assert!(super::deserialize::<u32>(&bytes).is_err());
    }
}
