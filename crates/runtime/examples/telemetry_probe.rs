//! Interleaved A/B measurement of warm-submit latency with telemetry enabled
//! vs disabled.
//!
//! The `telemetry_overhead` criterion group in `vqc-bench` runs the two
//! configurations back to back, so on a busy (or single-CPU) host the *mean*
//! of whichever group runs during a noisy window can be inflated by scheduler
//! interference — that is why `BENCH_runtime.json` asserts its <5% budget on
//! `min_ns`. This example cross-checks that number free of ordering effects:
//! it alternates enabled/disabled batches (A/B then B/A per round) so drift
//! hits both sides equally, and reports min/median/p90/mean per side.
//!
//! Run with: `cargo run --release -p vqc-runtime --example telemetry_probe`

use vqc_circuit::Circuit;
use vqc_core::{CompilerOptions, Strategy};
use vqc_runtime::{CompilationRuntime, RuntimeOptions, Submission, TelemetryOptions};

fn fast_options() -> CompilerOptions {
    let mut options = CompilerOptions::fast();
    options.grape.max_iterations = 40;
    options.grape.target_infidelity = 1e-1;
    options.search_precision_ns = 2.0;
    options
}

fn circuit() -> Circuit {
    let mut c = Circuit::new(2);
    c.h(0);
    c.h(1);
    c.cx(0, 1);
    c.rx(0, 0.4);
    c.cx(0, 1);
    c
}

fn measure(runtime: &CompilationRuntime, circuit: &Circuit, iters: usize) -> Vec<f64> {
    (0..iters)
        .map(|_| {
            let start = std::time::Instant::now();
            let handle = runtime
                .submit(Submission::single(
                    circuit.clone(),
                    [],
                    Strategy::StrictPartial,
                ))
                .unwrap();
            let _ = handle.wait().unwrap();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect()
}

fn stats(mut xs: Vec<f64>) -> (f64, f64, f64, f64) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    (xs[0], xs[n / 2], xs[n * 9 / 10], mean)
}

fn main() {
    let circuit = circuit();
    let enabled = CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(2)
            .with_telemetry(TelemetryOptions::default().with_enabled(true)),
    );
    let disabled = CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(2)
            .with_telemetry(TelemetryOptions::default().with_enabled(false)),
    );
    enabled
        .compile(&circuit, &[], Strategy::StrictPartial)
        .unwrap();
    disabled
        .compile(&circuit, &[], Strategy::StrictPartial)
        .unwrap();

    let mut on = Vec::new();
    let mut off = Vec::new();
    for round in 0..10 {
        if round % 2 == 0 {
            on.extend(measure(&enabled, &circuit, 50));
            off.extend(measure(&disabled, &circuit, 50));
        } else {
            off.extend(measure(&disabled, &circuit, 50));
            on.extend(measure(&enabled, &circuit, 50));
        }
    }
    let (min_on, med_on, p90_on, mean_on) = stats(on);
    let (min_off, med_off, p90_off, mean_off) = stats(off);
    println!(
        "enabled : min {min_on:.1}µs  med {med_on:.1}µs  p90 {p90_on:.1}µs  mean {mean_on:.1}µs"
    );
    println!("disabled: min {min_off:.1}µs  med {med_off:.1}µs  p90 {p90_off:.1}µs  mean {mean_off:.1}µs");
    println!(
        "median ratio {:.4}  min ratio {:.4}",
        med_on / med_off,
        min_on / min_off
    );
}
