//! Regression tests for the runtime's accounting under bounded caches: every real
//! GRAPE compilation is counted no matter which dedup path ran it, warm starts do
//! not pollute compile-time metrics, and the LPT schedule changes only the order of
//! work, never its result.

use vqc_circuit::{Circuit, ParamExpr};
use vqc_core::{CompilerOptions, PulseCache, Strategy};
use vqc_runtime::{
    CacheConfig, CompilationRuntime, CompileJob, EvictionPolicy, RuntimeOptions, SchedulePolicy,
    TableConfig,
};

fn fast_options() -> CompilerOptions {
    let mut options = CompilerOptions::fast();
    options.grape.max_iterations = 80;
    options.grape.target_infidelity = 5e-2;
    options.search_precision_ns = 2.0;
    options
}

/// Options with a single-shard, single-entry block cache: every second distinct
/// block evicts the first, so "cached forever" assumptions break immediately.
fn capacity_one_options(workers: usize) -> RuntimeOptions {
    let mut options = RuntimeOptions::with_workers(workers);
    options.cache = CacheConfig {
        shards: 1,
        max_blocks_per_shard: Some(1),
        max_tunings_per_shard: None,
        eviction: EvictionPolicy::CostAware,
        seeds: TableConfig::default(),
    };
    options
}

/// A circuit aggregating into one Fixed multi-gate block (GRAPE work, cached under
/// a bound key) plus one parameterized single-gate block (lookup, uncached).
fn variational_circuit(phase: f64) -> Circuit {
    let mut circuit = Circuit::new(2);
    circuit.h(0);
    circuit.h(1);
    circuit.cx(0, 1);
    circuit.rx(0, phase);
    circuit.cx(0, 1);
    circuit.rz_expr(1, ParamExpr::theta(0));
    circuit
}

/// With a capacity-1 cache, alternating between two distinct blocks defeats the
/// cache entirely: every compile is a miss that performs real GRAPE work, and
/// `unique_compilations` must count every one of them. (The seed only counted the
/// in-flight *leader* path, so any recompilation performed by a follower — after
/// its leader's entry was evicted or its leader failed — went uncounted.)
#[test]
fn capacity_one_cache_counts_every_real_compilation_sequentially() {
    let runtime = CompilationRuntime::new(fast_options(), capacity_one_options(1));
    let a = variational_circuit(0.4);
    let b = variational_circuit(1.7);
    let params = [0.9];
    for circuit in [&a, &b, &a, &b, &a] {
        runtime
            .compile(circuit, &params, Strategy::StrictPartial)
            .unwrap();
    }
    let metrics = runtime.metrics();
    // Strict partial does no tuning lookups, so every cache miss is a block miss,
    // and every block miss runs GRAPE and must be counted.
    assert_eq!(metrics.cache.misses, 5, "capacity 1 defeats alternation");
    assert_eq!(
        metrics.unique_compilations, metrics.cache.misses,
        "every miss performed real GRAPE work and must be counted"
    );
    assert_eq!(runtime.cache().num_blocks(), 1);
    assert_eq!(metrics.cache.evictions, 4);
}

/// The same invariant under contention: concurrent duplicate requests against a
/// capacity-1 cache coalesce in flight, and any follower whose entry was evicted
/// before it woke performs — and must count — a real compilation.
#[test]
fn capacity_one_cache_counts_every_real_compilation_under_contention() {
    let runtime = CompilationRuntime::new(fast_options(), capacity_one_options(4));
    // Each batch floods the pool with duplicates of two distinct blocks, so in
    // every round the two leaders' flights carry coalesced followers while the
    // capacity-1 shard guarantees one leader's insert evicts the other's entry —
    // waking followers look up an evicted key, miss, and recompile. Several rounds
    // make a follower-path recompile (the case the seed failed to count)
    // overwhelmingly likely under any interleaving.
    let jobs: Vec<CompileJob> = (0..12)
        .map(|i| {
            CompileJob::new(
                variational_circuit(0.4 + 1.3 * (i % 2) as f64),
                vec![0.9],
                Strategy::StrictPartial,
            )
        })
        .collect();
    for _ in 0..5 {
        for report in runtime.compile_batch(&jobs) {
            report.unwrap();
        }
    }
    let metrics = runtime.metrics();
    assert!(
        metrics.coalesced_waits > 0,
        "duplicate in-flight requests must produce followers for this test to bite"
    );
    assert_eq!(
        metrics.unique_compilations, metrics.cache.misses,
        "every block-lookup miss ran GRAPE, whichever dedup ticket held it"
    );
    assert!(
        metrics.unique_compilations >= 2,
        "two distinct blocks exist"
    );
}

/// Warm-starting from a snapshot restores entries without fabricating compile-time
/// activity: insertions/evictions/hits/misses stay zero and only `restored` moves.
#[test]
fn warm_start_does_not_pollute_compile_time_metrics() {
    let dir = std::env::temp_dir().join("vqc_runtime_warm_metrics_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.snapshot");

    let first = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(2));
    first
        .compile(&variational_circuit(0.8), &[1.3], Strategy::StrictPartial)
        .unwrap();
    first.save_snapshot(&path).unwrap();
    let saved = first.cache().num_blocks();
    assert!(saved > 0);

    let second =
        CompilationRuntime::with_warm_start(fast_options(), RuntimeOptions::with_workers(2), &path)
            .unwrap();
    let metrics = second.metrics();
    assert_eq!(metrics.cache.hits, 0);
    assert_eq!(metrics.cache.misses, 0);
    assert_eq!(
        metrics.cache.insertions, 0,
        "absorbed snapshot entries are not compile-time insertions"
    );
    assert_eq!(metrics.cache.evictions, 0);
    assert_eq!(metrics.cache.restored, saved as u64);
    assert_eq!(metrics.unique_compilations, 0);
    assert_eq!(second.cache().num_blocks(), saved);

    std::fs::remove_dir_all(&dir).ok();
}

/// LPT ordering is a schedule, not a semantics: the reports must be identical to
/// the unsorted drain for the same batch.
#[test]
fn lpt_and_unsorted_schedules_produce_identical_reports() {
    let jobs: Vec<CompileJob> = (0..3)
        .map(|i| {
            CompileJob::new(
                variational_circuit(0.3 + 0.5 * i as f64),
                vec![0.2 * i as f64],
                Strategy::StrictPartial,
            )
        })
        .collect();
    let lpt = CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(4).with_schedule(SchedulePolicy::Lpt),
    );
    let unsorted = CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(4).with_schedule(SchedulePolicy::Unsorted),
    );
    let lpt_reports = lpt.compile_batch(&jobs);
    let unsorted_reports = unsorted.compile_batch(&jobs);
    assert_eq!(lpt_reports.len(), unsorted_reports.len());
    for (l, u) in lpt_reports.iter().zip(&unsorted_reports) {
        let (l, u) = (l.as_ref().unwrap(), u.as_ref().unwrap());
        assert_eq!(l.pulse_duration_ns, u.pulse_duration_ns);
        assert_eq!(l.num_blocks, u.num_blocks);
        assert_eq!(l.blocks.len(), u.blocks.len());
    }
}
