//! Integration tests of the lock-order checker against the real runtime: an
//! injected ABBA inversion panics with both sites named, a genuine service
//! workload runs clean with the checker on, and a long-held guard flows
//! through the registered reporter into the runtime's telemetry trace ring.
//!
//! The checker's force switch, hold threshold, and reporter hook are
//! process-global, so everything lives in one `#[test]` — parallel tests in
//! this binary would race on them.

use parking_lot::{lock_check, Mutex};
use std::sync::Arc;
use std::time::Duration;
use vqc_circuit::Circuit;
use vqc_core::{CompilerOptions, Strategy};
use vqc_runtime::{CompilationRuntime, RuntimeOptions, Submission, TraceStage};

fn fast_options() -> CompilerOptions {
    let mut options = CompilerOptions::fast();
    options.grape.max_iterations = 80;
    options.grape.target_infidelity = 5e-2;
    options.search_precision_ns = 2.0;
    options
}

fn one_block_circuit(phase: f64) -> Circuit {
    let mut circuit = Circuit::new(2);
    circuit.h(0);
    circuit.h(1);
    circuit.cx(0, 1);
    circuit.rx(0, phase);
    circuit.cx(0, 1);
    circuit
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

#[test]
fn lock_checker_detects_inversions_and_reports_holds_through_telemetry() {
    lock_check::force(true);

    // An injected ABBA inversion: establish a → b on this thread, then take
    // b → a on another. The checker panics at edge-insertion time — before the
    // second thread blocks — naming both conflicting acquisition sites.
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    {
        let guard_a = a.lock();
        let _guard_b = b.lock();
        drop(guard_a);
    }
    let (a_inv, b_inv) = (Arc::clone(&a), Arc::clone(&b));
    let result = std::thread::Builder::new()
        .name("vqc-abba-test".to_string())
        .spawn(move || {
            let _guard_b = b_inv.lock();
            let _guard_a = a_inv.lock();
        })
        .expect("spawn test thread")
        .join();
    let message = panic_text(result.expect_err("the inverted acquisition order must panic"));
    assert!(
        message.contains("lock-order inversion"),
        "unexpected panic message: {message}"
    );
    assert!(
        message.matches("tests/lock_check.rs").count() >= 2,
        "the report must name both conflicting sites in this file:\n{message}"
    );
    assert!(
        message.contains("vqc-abba-test"),
        "the report names the inverting thread:\n{message}"
    );

    // A genuine concurrent service workload runs clean under the checker and
    // accumulates order edges from the runtime's own lock nesting. Creating
    // the runtime while the checker is enabled also registers the long-hold
    // reporter against this runtime's telemetry.
    let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(2));
    let handles: Vec<_> = (0..3)
        .map(|i| {
            runtime
                .submit(Submission::single(
                    one_block_circuit(0.3 + 0.4 * f64::from(i)),
                    [],
                    Strategy::StrictPartial,
                ))
                .expect("default queue depth admits this load")
        })
        .collect();
    for handle in &handles {
        assert!(handle.wait().expect("not shed")[0].is_ok());
    }
    assert!(
        lock_check::order_edges() > 0,
        "the service workload must have observed held→acquired orderings"
    );

    // A guard held past the (lowered) threshold is counted and lands in the
    // runtime's trace ring as a lock-hold event via the reporter hook.
    lock_check::set_hold_threshold(Some(Duration::from_millis(5)));
    let holds_before = lock_check::long_holds();
    {
        let _guard = a.lock();
        std::thread::sleep(Duration::from_millis(30));
    }
    assert!(
        lock_check::long_holds() > holds_before,
        "a 30ms hold against a 5ms threshold must be counted"
    );
    let events = runtime.trace_events();
    assert!(
        events.iter().any(|e| e.stage == TraceStage::LockHold),
        "the long hold must reach the telemetry trace ring"
    );

    lock_check::set_hold_threshold(None);
    lock_check::set_long_hold_reporter(None);
    lock_check::force(false);
}
