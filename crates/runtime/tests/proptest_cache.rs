//! Property tests of the sharded cache.
//!
//! Unbounded, the cache is observationally equivalent to the seed `PulseLibrary`
//! under any interleaving of inserts and lookups, for any shard count and either
//! eviction policy. Bounded, it must respect its capacity under any insert sequence,
//! never evict the entry an insert call just wrote, and retain at least as many
//! estimated GRAPE seconds under cost-aware eviction as under FIFO.

use proptest::prelude::*;
use vqc_circuit::Circuit;
use vqc_core::{BlockKey, CachedBlock, CachedTuning, PulseCache, PulseLibrary};
use vqc_runtime::{CacheConfig, EvictionPolicy, ShardedPulseCache, TableConfig};

/// One step of a cache workload, replayed against both implementations.
#[derive(Debug, Clone)]
enum Op {
    InsertBlock(usize, usize),
    LookupBlock(usize),
    InsertTuning(usize, usize),
    LookupTuning(usize),
    Counts,
}

fn arb_op(key_space: usize) -> impl Strategy<Value = Op> {
    let k = 0..key_space;
    prop_oneof![
        (k.clone(), 0..1000usize).prop_map(|(k, v)| Op::InsertBlock(k, v)),
        k.clone().prop_map(Op::LookupBlock),
        (k.clone(), 0..1000usize).prop_map(|(k, v)| Op::InsertTuning(k, v)),
        k.clone().prop_map(Op::LookupTuning),
        k.prop_map(|_| Op::Counts),
    ]
}

fn arb_policy() -> impl Strategy<Value = EvictionPolicy> {
    (0usize..2).prop_map(|i| {
        if i == 0 {
            EvictionPolicy::Fifo
        } else {
            EvictionPolicy::CostAware
        }
    })
}

/// Distinct, deterministic keys: one-qubit circuits with distinct rotation angles.
fn key(tag: usize) -> BlockKey {
    let mut circuit = Circuit::new(1);
    circuit.rz(0, 0.25 * tag as f64 + 0.125);
    BlockKey::from_bound_circuit(&circuit)
}

/// `value` scales the entry's recompute cost (iterations and duration both grow).
fn block(value: usize) -> CachedBlock {
    CachedBlock {
        duration_ns: value as f64 * 0.5,
        converged: !value.is_multiple_of(3),
        grape_iterations: value,
    }
}

fn tuning(value: usize) -> CachedTuning {
    CachedTuning {
        learning_rate: 0.01 * value as f64,
        decay_rate: 0.99,
        duration_ns: value as f64,
        converged: value.is_multiple_of(2),
        precompute_iterations: value * 7,
        runtime_iterations: value,
    }
}

fn unbounded(shards: usize, eviction: EvictionPolicy) -> ShardedPulseCache {
    ShardedPulseCache::new(CacheConfig {
        shards,
        max_blocks_per_shard: None,
        max_tunings_per_shard: None,
        eviction,
        seeds: TableConfig::default(),
    })
}

fn bounded_single_shard(capacity: usize, eviction: EvictionPolicy) -> ShardedPulseCache {
    ShardedPulseCache::new(CacheConfig {
        shards: 1,
        max_blocks_per_shard: Some(capacity),
        max_tunings_per_shard: None,
        eviction,
        seeds: TableConfig::default(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_cache_agrees_with_pulse_library(
        ops in prop::collection::vec(arb_op(12), 1..80),
        shards in 1usize..32,
        eviction in arb_policy(),
    ) {
        let reference = PulseLibrary::new();
        let sharded = unbounded(shards, eviction);
        for op in &ops {
            match *op {
                Op::InsertBlock(k, v) => {
                    reference.insert_block(key(k), block(v));
                    PulseCache::insert_block(&sharded, key(k), block(v));
                }
                Op::LookupBlock(k) => {
                    prop_assert_eq!(reference.block(&key(k)), PulseCache::block(&sharded, &key(k)));
                }
                Op::InsertTuning(k, v) => {
                    reference.insert_tuning(key(k), tuning(v));
                    PulseCache::insert_tuning(&sharded, key(k), tuning(v));
                }
                Op::LookupTuning(k) => {
                    prop_assert_eq!(reference.tuning(&key(k)), PulseCache::tuning(&sharded, &key(k)));
                }
                Op::Counts => {
                    prop_assert_eq!(reference.num_blocks(), PulseCache::num_blocks(&sharded));
                    prop_assert_eq!(reference.num_tunings(), PulseCache::num_tunings(&sharded));
                }
            }
        }
        // Final exhaustive sweep over the key space.
        for k in 0..12 {
            prop_assert_eq!(reference.block(&key(k)), PulseCache::block(&sharded, &key(k)));
            prop_assert_eq!(reference.tuning(&key(k)), PulseCache::tuning(&sharded, &key(k)));
        }
    }

    #[test]
    fn snapshot_absorb_preserves_every_entry(
        entries in prop::collection::vec((0usize..40, 0usize..1000), 0..40),
        shards_a in 1usize..16,
        shards_b in 1usize..16,
    ) {
        let original = unbounded(shards_a, EvictionPolicy::CostAware);
        for &(k, v) in &entries {
            PulseCache::insert_block(&original, key(k), block(v));
        }
        let restored = unbounded(shards_b, EvictionPolicy::CostAware);
        restored.absorb(original.snapshot());
        prop_assert_eq!(PulseCache::num_blocks(&original), PulseCache::num_blocks(&restored));
        for k in 0..40 {
            prop_assert_eq!(PulseCache::block(&original, &key(k)), PulseCache::block(&restored, &key(k)));
        }
        // Absorb is a restore, not compile-time work: the compile counters stay zero.
        let metrics = restored.metrics();
        prop_assert_eq!(metrics.insertions, 0);
        prop_assert_eq!(metrics.evictions, 0);
        prop_assert_eq!(metrics.restored, PulseCache::num_blocks(&original) as u64);
    }

    /// Bounded shards obey their capacity under any insert/lookup sequence, the
    /// entry an insert call just wrote is always still present afterwards, and the
    /// lookup counters balance (`hits + misses == lookups`).
    #[test]
    fn bounded_cache_respects_capacity_and_counts_every_lookup(
        ops in prop::collection::vec(arb_op(16), 1..120),
        capacity in 1usize..6,
        eviction in arb_policy(),
    ) {
        let cache = bounded_single_shard(capacity, eviction);
        let mut lookups = 0u64;
        for op in &ops {
            match *op {
                Op::InsertBlock(k, v) => {
                    PulseCache::insert_block(&cache, key(k), block(v));
                    prop_assert!(
                        PulseCache::block(&cache, &key(k)).is_some(),
                        "the entry just inserted must never be this insert's victim"
                    );
                    lookups += 1; // the assertion above performed a lookup
                    prop_assert!(PulseCache::num_blocks(&cache) <= capacity);
                }
                Op::LookupBlock(k) => {
                    PulseCache::block(&cache, &key(k));
                    lookups += 1;
                }
                // Tunings are unbounded in this config; exercise them lightly.
                Op::InsertTuning(k, v) => PulseCache::insert_tuning(&cache, key(k), tuning(v)),
                Op::LookupTuning(k) => {
                    PulseCache::tuning(&cache, &key(k));
                    lookups += 1;
                }
                Op::Counts => {
                    prop_assert!(PulseCache::num_blocks(&cache) <= capacity);
                }
            }
        }
        let metrics = cache.metrics();
        prop_assert_eq!(metrics.hits + metrics.misses, lookups);
    }

    /// At equal capacity, cost-aware eviction never retains fewer estimated GRAPE
    /// seconds than FIFO for the same insert sequence.
    #[test]
    fn cost_aware_retention_dominates_fifo(
        inserts in prop::collection::vec((0usize..24, 0usize..1000), 1..100),
        capacity in 1usize..8,
    ) {
        let fifo = bounded_single_shard(capacity, EvictionPolicy::Fifo);
        let cost_aware = bounded_single_shard(capacity, EvictionPolicy::CostAware);
        for &(k, v) in &inserts {
            PulseCache::insert_block(&fifo, key(k), block(v));
            PulseCache::insert_block(&cost_aware, key(k), block(v));
        }
        prop_assert!(
            cost_aware.retained_block_cost_seconds() >= fifo.retained_block_cost_seconds() - 1e-12,
            "cost-aware retained {} s < fifo retained {} s",
            cost_aware.retained_block_cost_seconds(),
            fifo.retained_block_cost_seconds(),
        );
    }
}
