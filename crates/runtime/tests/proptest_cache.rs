//! Property test: the sharded cache is observationally equivalent to the seed
//! `PulseLibrary` under any interleaving of inserts and lookups (when no capacity
//! bound is set), for any shard count.

use proptest::prelude::*;
use vqc_circuit::Circuit;
use vqc_core::{BlockKey, CachedBlock, CachedTuning, PulseCache, PulseLibrary};
use vqc_runtime::{CacheConfig, ShardedPulseCache};

/// One step of a cache workload, replayed against both implementations.
#[derive(Debug, Clone)]
enum Op {
    InsertBlock(usize, usize),
    LookupBlock(usize),
    InsertTuning(usize, usize),
    LookupTuning(usize),
    Counts,
}

fn arb_op(key_space: usize) -> impl Strategy<Value = Op> {
    let k = 0..key_space;
    prop_oneof![
        (k.clone(), 0..1000usize).prop_map(|(k, v)| Op::InsertBlock(k, v)),
        k.clone().prop_map(Op::LookupBlock),
        (k.clone(), 0..1000usize).prop_map(|(k, v)| Op::InsertTuning(k, v)),
        k.clone().prop_map(Op::LookupTuning),
        k.prop_map(|_| Op::Counts),
    ]
}

/// Distinct, deterministic keys: one-qubit circuits with distinct rotation angles.
fn key(tag: usize) -> BlockKey {
    let mut circuit = Circuit::new(1);
    circuit.rz(0, 0.25 * tag as f64 + 0.125);
    BlockKey::from_bound_circuit(&circuit)
}

fn block(value: usize) -> CachedBlock {
    CachedBlock {
        duration_ns: value as f64 * 0.5,
        converged: !value.is_multiple_of(3),
        grape_iterations: value,
    }
}

fn tuning(value: usize) -> CachedTuning {
    CachedTuning {
        learning_rate: 0.01 * value as f64,
        decay_rate: 0.99,
        duration_ns: value as f64,
        converged: value.is_multiple_of(2),
        precompute_iterations: value * 7,
        runtime_iterations: value,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_cache_agrees_with_pulse_library(
        ops in prop::collection::vec(arb_op(12), 1..80),
        shards in 1usize..32,
    ) {
        let reference = PulseLibrary::new();
        let sharded = ShardedPulseCache::new(CacheConfig {
            shards,
            max_blocks_per_shard: None,
            max_tunings_per_shard: None,
        });
        for op in &ops {
            match *op {
                Op::InsertBlock(k, v) => {
                    reference.insert_block(key(k), block(v));
                    PulseCache::insert_block(&sharded, key(k), block(v));
                }
                Op::LookupBlock(k) => {
                    prop_assert_eq!(reference.block(&key(k)), PulseCache::block(&sharded, &key(k)));
                }
                Op::InsertTuning(k, v) => {
                    reference.insert_tuning(key(k), tuning(v));
                    PulseCache::insert_tuning(&sharded, key(k), tuning(v));
                }
                Op::LookupTuning(k) => {
                    prop_assert_eq!(reference.tuning(&key(k)), PulseCache::tuning(&sharded, &key(k)));
                }
                Op::Counts => {
                    prop_assert_eq!(reference.num_blocks(), PulseCache::num_blocks(&sharded));
                    prop_assert_eq!(reference.num_tunings(), PulseCache::num_tunings(&sharded));
                }
            }
        }
        // Final exhaustive sweep over the key space.
        for k in 0..12 {
            prop_assert_eq!(reference.block(&key(k)), PulseCache::block(&sharded, &key(k)));
            prop_assert_eq!(reference.tuning(&key(k)), PulseCache::tuning(&sharded, &key(k)));
        }
    }

    #[test]
    fn snapshot_absorb_preserves_every_entry(
        entries in prop::collection::vec((0usize..40, 0usize..1000), 0..40),
        shards_a in 1usize..16,
        shards_b in 1usize..16,
    ) {
        let original = ShardedPulseCache::new(CacheConfig {
            shards: shards_a,
            max_blocks_per_shard: None,
            max_tunings_per_shard: None,
        });
        for &(k, v) in &entries {
            PulseCache::insert_block(&original, key(k), block(v));
        }
        let restored = ShardedPulseCache::new(CacheConfig {
            shards: shards_b,
            max_blocks_per_shard: None,
            max_tunings_per_shard: None,
        });
        restored.absorb(original.snapshot());
        prop_assert_eq!(PulseCache::num_blocks(&original), PulseCache::num_blocks(&restored));
        for k in 0..40 {
            prop_assert_eq!(PulseCache::block(&original, &key(k)), PulseCache::block(&restored, &key(k)));
        }
    }
}
