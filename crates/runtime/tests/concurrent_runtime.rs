//! Concurrency correctness of the compilation runtime: overlapping block sets
//! compiled from many threads must GRAPE-compile each unique block exactly once,
//! and a snapshot written by one "run" must be hit by the next.

use std::sync::Arc;
use vqc_circuit::{Circuit, ParamExpr};
use vqc_core::{CompilerOptions, PartialCompiler, PulseCache, Strategy};
use vqc_runtime::{CompilationRuntime, CompileJob, RuntimeOptions};

fn fast_options() -> CompilerOptions {
    let mut options = CompilerOptions::fast();
    options.grape.max_iterations = 80;
    options.grape.target_infidelity = 5e-2;
    options.search_precision_ns = 2.0;
    options
}

/// A circuit whose prepared form aggregates into one Fixed entangling block plus a
/// parameterized single-gate block; `phase` varies the fixed section so different
/// circuits produce different block keys.
fn variational_circuit(phase: f64) -> Circuit {
    let mut circuit = Circuit::new(2);
    circuit.h(0);
    circuit.h(1);
    circuit.cx(0, 1);
    circuit.rx(0, phase);
    circuit.cx(0, 1);
    circuit.rz_expr(1, ParamExpr::theta(0));
    circuit
}

/// Counts the unique GRAPE-level cache keys a strict-partial compile of the given
/// circuits needs, by compiling them sequentially on a fresh compiler and reading
/// the resulting library size.
fn unique_block_count(circuits: &[Circuit], params: &[f64]) -> usize {
    let compiler = PartialCompiler::new(fast_options());
    for circuit in circuits {
        compiler
            .compile(circuit, params, Strategy::StrictPartial)
            .unwrap();
    }
    compiler.library().num_blocks()
}

#[test]
fn contended_compilation_compiles_each_unique_block_exactly_once() {
    // Eight threads, four distinct circuits, every circuit compiled by two threads
    // concurrently through one shared runtime.
    let circuits: Vec<Circuit> = (0..4)
        .map(|i| variational_circuit(0.4 + 0.3 * i as f64))
        .collect();
    let params = [0.9];
    let expected_unique = unique_block_count(&circuits, &params);
    assert!(expected_unique > 0, "workload must involve GRAPE blocks");

    let runtime = Arc::new(CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(4),
    ));
    std::thread::scope(|scope| {
        for thread_index in 0..8 {
            let runtime = Arc::clone(&runtime);
            let circuit = circuits[thread_index % circuits.len()].clone();
            scope.spawn(move || {
                let report = runtime
                    .compile(&circuit, &params, Strategy::StrictPartial)
                    .unwrap();
                assert!(report.pulse_duration_ns <= report.gate_based_duration_ns + 1e-9);
            });
        }
    });

    let metrics = runtime.metrics();
    // Exactly-once: every unique BlockKey was stored once, and the number of cache
    // misses on block lookups equals the number of unique keys — a second GRAPE run
    // of the same key would show up as an extra miss + insertion.
    assert_eq!(runtime.cache().num_blocks(), expected_unique);
    assert_eq!(metrics.cache.misses, expected_unique as u64);
    assert_eq!(metrics.cache.insertions, expected_unique as u64);
    // The runtime's own accounting agrees: GRAPE actually ran once per unique key,
    // and every duplicate request was served by a cache hit or a coalesced wait.
    assert_eq!(metrics.unique_compilations, expected_unique as u64);
    assert!(metrics.cache.hits > 0);
}

#[test]
fn batch_over_many_iterations_reuses_blocks_across_requests() {
    let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(4));
    let circuit = variational_circuit(1.1);
    let jobs: Vec<CompileJob> = (0..6)
        .map(|i| {
            CompileJob::new(
                circuit.clone(),
                vec![0.2 * i as f64],
                Strategy::StrictPartial,
            )
        })
        .collect();
    let reports = runtime.compile_batch(&jobs);
    assert_eq!(reports.len(), 6);
    let reports: Vec<_> = reports.into_iter().map(|r| r.unwrap()).collect();

    // The Fixed block is θ-independent: GRAPE ran for exactly one job, the other five
    // were served from the shared cache (cached flag set on their GRAPE blocks).
    let paying: Vec<_> = reports
        .iter()
        .filter(|r| r.precompute.grape_iterations > 0)
        .collect();
    assert_eq!(paying.len(), 1, "exactly one job pays the pre-compute cost");
    for report in &reports {
        if report.precompute.grape_iterations == 0 {
            assert!(report
                .blocks
                .iter()
                .filter(|b| b.used_grape)
                .all(|b| b.cached));
        }
    }
    // All six jobs agree on the result.
    let durations: Vec<f64> = reports.iter().map(|r| r.pulse_duration_ns).collect();
    assert!(durations.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
}

#[test]
fn snapshot_written_by_one_run_is_hit_by_the_next() {
    let dir = std::env::temp_dir().join("vqc_runtime_warm_start_test");
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot_path = dir.join("pulse_cache.snapshot");

    let circuit = variational_circuit(0.8);
    let params = [1.3];

    // Run 1: cold cache — pays GRAPE, persists the cache.
    let first_run = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(2));
    let cold = first_run
        .compile(&circuit, &params, Strategy::StrictPartial)
        .unwrap();
    assert!(
        cold.precompute.grape_iterations > 0,
        "cold run must pay GRAPE"
    );
    first_run.save_snapshot(&snapshot_path).unwrap();
    let saved_blocks = first_run.cache().num_blocks();
    assert!(saved_blocks > 0);

    // Run 2: a fresh runtime (fresh process, conceptually) warm-starts from disk and
    // compiles the same circuit without any GRAPE work.
    let second_run = CompilationRuntime::with_warm_start(
        fast_options(),
        RuntimeOptions::with_workers(2),
        &snapshot_path,
    )
    .unwrap();
    assert_eq!(second_run.cache().num_blocks(), saved_blocks);
    let warm = second_run
        .compile(&circuit, &params, Strategy::StrictPartial)
        .unwrap();
    assert_eq!(
        warm.precompute.grape_iterations, 0,
        "warm run must be all cache hits"
    );
    assert_eq!(warm.pulse_duration_ns, cold.pulse_duration_ns);
    assert!(warm
        .blocks
        .iter()
        .filter(|b| b.used_grape)
        .all(|b| b.cached));
    assert!(second_run.metrics().cache.hits > 0);

    std::fs::remove_dir_all(&dir).ok();
}
