//! Integration tests of the telemetry subsystem: per-client counter slices
//! summing to the global view under concurrent load, latency histograms
//! agreeing with completion counts, the metrics watch stream, and the
//! lifecycle trace ring's stage ordering.

use std::sync::Arc;
use std::time::Duration;
use vqc_circuit::Circuit;
use vqc_core::{CompilerOptions, Strategy};
use vqc_runtime::{
    chrome_trace_json, priority_class, CompilationRuntime, Priority, RuntimeOptions, Submission,
    TelemetryOptions, TraceStage, PRIORITY_CLASSES,
};

fn fast_options() -> CompilerOptions {
    let mut options = CompilerOptions::fast();
    options.grape.max_iterations = 80;
    options.grape.target_infidelity = 5e-2;
    options.search_precision_ns = 2.0;
    options
}

/// A circuit that aggregates into exactly one Fixed 2-qubit GRAPE block,
/// distinct per `phase`.
fn one_block_circuit(phase: f64) -> Circuit {
    let mut circuit = Circuit::new(2);
    circuit.h(0);
    circuit.h(1);
    circuit.cx(0, 1);
    circuit.rx(0, phase);
    circuit.cx(0, 1);
    circuit
}

/// Under concurrent multi-client load, the per-client metric slices sum to the
/// global `RuntimeMetrics` / `MetricsSnapshot` view — no event is dropped or
/// double-counted by the sharded accounting.
#[test]
fn client_slices_sum_to_global_metrics_under_concurrent_load() {
    let runtime = Arc::new(CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(4),
    ));
    let clients = 4u64;
    let per_client = 3u64;
    let threads: Vec<_> = (0..clients)
        .map(|client| {
            let runtime = Arc::clone(&runtime);
            std::thread::spawn(move || {
                for i in 0..per_client {
                    // Distinct phases per client, one shared phase across all
                    // clients so cross-request dedup and fan-out fire too.
                    let phase = if i == 0 {
                        0.42
                    } else {
                        client as f64 + 0.1 * i as f64
                    };
                    let priority = match client % 3 {
                        0 => Priority::LOW,
                        1 => Priority::NORMAL,
                        _ => Priority::HIGH,
                    };
                    let handle = runtime
                        .submit(
                            Submission::single(
                                one_block_circuit(phase),
                                [],
                                Strategy::StrictPartial,
                            )
                            .with_client(client)
                            .with_priority(priority),
                        )
                        .expect("default queue depth admits this load");
                    assert!(handle.wait().expect("not shed")[0].is_ok());
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().unwrap();
    }

    let global = runtime.metrics();
    let slices = runtime.client_metrics_snapshot();
    assert_eq!(slices.len(), clients as usize);
    let sum = |f: fn(&vqc_runtime::ClientMetrics) -> u64| -> u64 {
        slices.iter().map(|(_, m)| f(m)).sum()
    };
    assert_eq!(sum(|m| m.submissions), global.submissions);
    assert_eq!(sum(|m| m.submissions), clients * per_client);
    assert_eq!(sum(|m| m.completed), global.completed_submissions);
    assert_eq!(sum(|m| m.compilations), global.unique_compilations);
    assert_eq!(sum(|m| m.coalesced_waits), global.coalesced_waits);
    assert_eq!(sum(|m| m.shed), global.shed_submissions);
    assert_eq!(sum(|m| m.canceled), global.canceled_submissions);

    // The telemetry snapshot reports the same totals.
    let snapshot = runtime.telemetry_snapshot();
    assert_eq!(snapshot.submissions, global.submissions);
    assert_eq!(snapshot.completed, global.completed_submissions);
    assert_eq!(snapshot.unique_compilations, global.unique_compilations);
    assert_eq!(snapshot.coalesced_waits, global.coalesced_waits);
    assert_eq!(snapshot.workers, 4);
}

/// Every completed submission is recorded in exactly one priority class's
/// latency histograms: the queue-wait and submit-to-report counts each sum to
/// the completed-submission count, in the class the submission ran at.
#[test]
fn histogram_counts_equal_completed_submissions() {
    let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(2));
    let priorities = [
        Priority::LOW,
        Priority::NORMAL,
        Priority::HIGH,
        Priority::NORMAL,
        Priority(20),
    ];
    let mut expected = [0u64; PRIORITY_CLASSES];
    let handles: Vec<_> = priorities
        .iter()
        .enumerate()
        .map(|(i, &priority)| {
            expected[priority_class(priority)] += 1;
            runtime
                .submit(
                    Submission::single(
                        one_block_circuit(0.2 + 0.3 * i as f64),
                        [],
                        Strategy::StrictPartial,
                    )
                    .with_priority(priority),
                )
                .unwrap()
        })
        .collect();
    for handle in &handles {
        assert!(handle.wait().expect("not shed")[0].is_ok());
    }

    let snapshot = runtime.telemetry_snapshot();
    assert_eq!(snapshot.completed, priorities.len() as u64);
    assert_eq!(snapshot.classes.len(), PRIORITY_CLASSES);
    for (class, latency) in snapshot.classes.iter().enumerate() {
        assert_eq!(latency.class as usize, class);
        assert_eq!(
            latency.submit_to_report.count, expected[class],
            "class {class} submit-to-report count"
        );
        assert_eq!(
            latency.queue_wait.count, expected[class],
            "class {class} queue-wait count"
        );
        if latency.submit_to_report.count > 0 {
            // Quantiles are positive and ordered on a log-bucketed histogram.
            let p50 = latency.submit_to_report.p50();
            let p99 = latency.submit_to_report.p99();
            assert!(p50 > 0.0 && p99 >= p50);
            assert!(latency.submit_to_report.mean() > 0.0);
        }
    }
}

/// A `watch_metrics` subscriber sees snapshots with strictly increasing `seq`,
/// and — because the aggregator publishes one final snapshot after the worker
/// pool drains — the last tick reflects the fully-drained runtime.
#[test]
fn watch_subscriber_receives_monotonic_ticks_including_post_drain() {
    let runtime = CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(2)
            .with_telemetry(TelemetryOptions::default().with_interval(Duration::from_millis(20))),
    );
    let ticks = runtime.watch_metrics();
    let total = 4u64;
    let handles: Vec<_> = (0..total)
        .map(|i| {
            runtime
                .submit(Submission::single(
                    one_block_circuit(0.3 + 0.4 * i as f64),
                    [],
                    Strategy::StrictPartial,
                ))
                .unwrap()
        })
        .collect();
    for handle in &handles {
        assert!(handle.wait().expect("not shed")[0].is_ok());
    }
    // Let at least one tick observe the drained state before teardown, then
    // drop the runtime: the aggregator publishes a final snapshot and closes
    // the channel.
    std::thread::sleep(Duration::from_millis(50));
    drop(runtime);

    let mut snapshots = Vec::new();
    while let Ok(snapshot) = ticks.recv() {
        snapshots.push(snapshot);
    }
    assert!(
        snapshots.len() >= 2,
        "a 20ms aggregator must tick at least twice, got {}",
        snapshots.len()
    );
    for pair in snapshots.windows(2) {
        assert!(
            pair[1].seq > pair[0].seq,
            "seq must be strictly increasing: {} then {}",
            pair[0].seq,
            pair[1].seq
        );
        assert!(pair[1].uptime_seconds >= pair[0].uptime_seconds);
    }
    let last = snapshots.last().unwrap();
    assert_eq!(last.submissions, total);
    assert_eq!(last.completed, total, "the final tick reflects the drain");
    assert_eq!(last.queued_by_class.iter().sum::<u64>(), 0);
    assert_eq!(last.outstanding, 0);
    assert_eq!(last.busy_workers, 0);
}

/// With telemetry disabled, a watch subscriber disconnects immediately instead
/// of blocking forever, the trace ring stays empty, and on-demand snapshots
/// still work.
#[test]
fn disabled_telemetry_disconnects_watchers_and_records_nothing() {
    let runtime = CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(1)
            .with_telemetry(TelemetryOptions::default().with_enabled(false)),
    );
    let ticks = runtime.watch_metrics();
    assert!(ticks.recv().is_err(), "no aggregator will ever publish");
    let handle = runtime
        .submit(Submission::single(
            one_block_circuit(0.9),
            [],
            Strategy::StrictPartial,
        ))
        .unwrap();
    assert!(handle.wait().expect("not shed")[0].is_ok());
    assert!(runtime.trace_events().is_empty());
    let snapshot = runtime.telemetry_snapshot();
    assert_eq!(snapshot.completed, 1);
    assert_eq!(
        snapshot
            .classes
            .iter()
            .map(|c| c.queue_wait.count)
            .sum::<u64>(),
        0
    );
}

/// One submission's lifecycle appears in the trace ring as the full chain
/// submitted → admitted → dispatched → compile-start → compiled → job-done →
/// report, with non-decreasing timestamps, and renders to Chrome trace JSON.
#[test]
fn trace_ring_records_the_full_lifecycle_chain() {
    let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(1));
    let handle = runtime
        .submit(
            Submission::single(one_block_circuit(0.5), [], Strategy::StrictPartial).with_client(7),
        )
        .unwrap();
    assert!(handle.wait().expect("not shed")[0].is_ok());

    let events = runtime.trace_events();
    let expected = [
        TraceStage::Submitted,
        TraceStage::Admitted,
        TraceStage::Dispatched,
        TraceStage::CompileStart,
        TraceStage::Compiled,
        TraceStage::JobDone,
        TraceStage::Report,
    ];
    let mut last_index = None;
    for stage in expected {
        let index = events
            .iter()
            .position(|e| e.stage == stage)
            .unwrap_or_else(|| panic!("stage {} missing from trace", stage.name()));
        if let Some(last) = last_index {
            assert!(
                index > last,
                "stage {} out of order in the lifecycle chain",
                stage.name()
            );
            assert!(
                events[index].micros >= events[last].micros,
                "timestamps must be non-decreasing along the chain"
            );
        }
        last_index = Some(index);
    }
    // Every event belongs to the one submission and carries its client id
    // where the stage has one.
    assert!(events
        .iter()
        .all(|e| e.client.is_none() || e.client == Some(7)));

    let json = chrome_trace_json(&events);
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    for stage in expected {
        assert!(
            json.contains(&format!("\"name\":\"{}\"", stage.name())),
            "chrome trace must name stage {}",
            stage.name()
        );
    }
}

/// The metrics dump file gains one well-formed JSON line per aggregator tick,
/// including the final post-drain snapshot.
#[test]
fn metrics_dump_appends_json_lines() {
    let dir = std::env::temp_dir().join(format!("vqc-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("metrics.jsonl");
    let _ = std::fs::remove_file(&dump);
    {
        let runtime = CompilationRuntime::new(
            fast_options(),
            RuntimeOptions::with_workers(1).with_telemetry(
                TelemetryOptions::default()
                    .with_interval(Duration::from_millis(20))
                    .with_dump_path(&dump),
            ),
        );
        let handle = runtime
            .submit(Submission::single(
                one_block_circuit(1.2),
                [],
                Strategy::StrictPartial,
            ))
            .unwrap();
        assert!(handle.wait().expect("not shed")[0].is_ok());
        std::thread::sleep(Duration::from_millis(50));
    }
    let contents = std::fs::read_to_string(&dump).unwrap();
    let lines: Vec<&str> = contents.lines().collect();
    assert!(lines.len() >= 2, "expected multiple ticks, got {lines:?}");
    for line in &lines {
        assert!(line.starts_with("{\"seq\":") && line.ends_with('}'));
    }
    // The final line is the post-drain snapshot.
    assert!(lines.last().unwrap().contains("\"completed\":1"));
    let _ = std::fs::remove_dir_all(&dir);
}
