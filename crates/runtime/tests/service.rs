//! Integration tests of the request-scheduling service layer: strict priority
//! ordering with fair-share interleaving, cross-request block dedup with fan-out,
//! and the three admission backpressure policies.
//!
//! Determinism notes: the tests pause the runtime (workers stop dispatching, the
//! accept loop keeps expanding) to build a known ready-queue state, then resume and
//! read each handle's `dispatch_sequence()` — the global dispatch order the
//! scheduler actually chose.

use vqc_circuit::Circuit;
use vqc_core::{CompilerOptions, Strategy};
use vqc_runtime::{
    Backpressure, CompilationRuntime, JobStatus, Priority, RuntimeOptions, ServiceOptions,
    Submission, SubmitError,
};

fn fast_options() -> CompilerOptions {
    let mut options = CompilerOptions::fast();
    options.grape.max_iterations = 80;
    options.grape.target_infidelity = 5e-2;
    options.search_precision_ns = 2.0;
    options
}

/// A circuit that aggregates into exactly one Fixed 2-qubit GRAPE block (no
/// parameterized gates), distinct per `phase`.
fn one_block_circuit(phase: f64) -> Circuit {
    let mut circuit = Circuit::new(2);
    circuit.h(0);
    circuit.h(1);
    circuit.cx(0, 1);
    circuit.rx(0, phase);
    circuit.cx(0, 1);
    circuit
}

/// A 4-qubit circuit whose prepared form aggregates (at `max_block_width = 2`) into
/// two Fixed blocks: a *shared* section on qubits (0, 1) that is identical for
/// every client, and a *private* section on qubits (2, 3) distinct per phase.
fn shared_plus_private(private_phase: f64) -> Circuit {
    let mut circuit = Circuit::new(4);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.rx(0, 0.7);
    circuit.cx(0, 1);
    circuit.h(2);
    circuit.cx(2, 3);
    circuit.rx(2, private_phase);
    circuit.cx(2, 3);
    circuit
}

fn wait_until_running(handles: &[&vqc_runtime::JobHandle]) {
    while handles
        .iter()
        .any(|handle| handle.try_status() == JobStatus::Queued)
    {
        std::thread::yield_now();
    }
}

/// The acceptance scenario: two concurrent clients at different priorities share a
/// block. The high-priority client's work — its private block *and* the shared
/// block, via priority inheritance — is scheduled before the low-priority client's
/// private block, and the shared block is compiled exactly once.
#[test]
fn high_priority_work_dispatches_first_and_shared_blocks_compile_once() {
    let mut options = fast_options();
    // Cap the block width so the shared (0,1) and private (2,3) sections cannot
    // merge into one 4-qubit block.
    options.max_block_width = 2;
    let runtime = CompilationRuntime::new(options, RuntimeOptions::with_workers(1));
    runtime.pause();

    let low = runtime
        .submit(
            Submission::single(shared_plus_private(0.3), [], Strategy::StrictPartial)
                .with_priority(Priority::LOW)
                .with_client(1),
        )
        .unwrap();
    // Expansion is priority-ordered: wait for the low submission to expand (and
    // post the shared task as owner) before the high one is admitted, so the
    // inheritance scenario — high coalescing onto low's task — is what happens.
    wait_until_running(&[&low]);
    let high = runtime
        .submit(
            Submission::single(shared_plus_private(1.9), [], Strategy::StrictPartial)
                .with_priority(Priority::HIGH)
                .with_client(2),
        )
        .unwrap();
    // Both are expanded into the (paused) ready queue before any dispatch.
    wait_until_running(&[&low, &high]);
    runtime.resume();

    let low_reports = low.wait().expect("not shed");
    let high_reports = high.wait().expect("not shed");
    let low_report = low_reports[0].as_ref().unwrap();
    let high_report = high_reports[0].as_ref().unwrap();
    assert_eq!(low_report.num_blocks, 2);
    assert_eq!(high_report.num_blocks, 2);

    // Dispatch order: the shared block (posted first by the low client, re-posted
    // at high priority when the high client coalesced onto it) dispatches first,
    // then the high client's private block, then — only then — the low client's
    // private block. The high client's whole working set precedes low's private
    // work even though low submitted first.
    assert_eq!(
        high.dispatch_sequence(),
        vec![1],
        "high's own block runs right after the (inherited) shared block"
    );
    assert_eq!(
        low.dispatch_sequence(),
        vec![0, 2],
        "the shared block task is owned by low (seq 0); low's private block is last"
    );

    // The shared block was GRAPE-compiled exactly once: three unique compilations
    // for four GRAPE block requests, one coalesced fan-out.
    let metrics = runtime.metrics();
    assert_eq!(metrics.unique_compilations, 3);
    assert_eq!(metrics.cache.misses, 3);
    assert_eq!(metrics.coalesced_waits, 1);
    // The fanned-out copy of the shared block reports as served from cache, and
    // both clients agree on its pulse.
    let cached_blocks =
        |report: &vqc_core::CompilationReport| report.blocks.iter().filter(|b| b.cached).count();
    assert_eq!(cached_blocks(high_report), 1);
    assert_eq!(cached_blocks(low_report), 0);
    let shared_duration = |report: &vqc_core::CompilationReport| {
        report
            .blocks
            .iter()
            .find(|b| b.qubits == vec![0, 1])
            .map(|b| b.duration_ns)
            .expect("both plans contain the shared (0,1) block")
    };
    assert_eq!(shared_duration(high_report), shared_duration(low_report));
}

/// Clients of equal priority interleave by fair share instead of draining the
/// first client's backlog: A's second submission yields to B's first.
#[test]
fn equal_priority_clients_interleave_fairly() {
    let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(1));
    runtime.pause();
    let submit = |client: u64, phase: f64| {
        runtime
            .submit(
                Submission::single(one_block_circuit(phase), [], Strategy::StrictPartial)
                    .with_client(client),
            )
            .unwrap()
    };
    let a1 = submit(1, 0.2);
    let a2 = submit(1, 0.9);
    let b1 = submit(2, 1.6);
    wait_until_running(&[&a1, &a2, &b1]);
    runtime.resume();
    for handle in [&a1, &a2, &b1] {
        assert!(handle.wait().unwrap()[0].is_ok());
    }
    // A's first submission starts at virtual time 0 and advances A's clock; B
    // joined at virtual time 0 too, so B's first block outranks A's second.
    assert_eq!(a1.dispatch_sequence(), vec![0]);
    assert_eq!(b1.dispatch_sequence(), vec![1]);
    assert_eq!(a2.dispatch_sequence(), vec![2]);
}

/// A heavier fair-share weight buys a proportionally larger slice: the weight-4
/// client drains four submissions before the weight-1 client's second.
#[test]
fn fair_share_weights_scale_a_clients_slice() {
    let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(1));
    runtime.pause();
    let submit = |client: u64, weight: f64, phase: f64| {
        runtime
            .submit(
                Submission::single(one_block_circuit(phase), [], Strategy::StrictPartial)
                    .with_client(client)
                    .with_weight(weight),
            )
            .unwrap()
    };
    let a1 = submit(1, 1.0, 0.1);
    let b: Vec<_> = (0..4)
        .map(|i| submit(2, 4.0, 1.0 + 0.3 * i as f64))
        .collect();
    let a2 = submit(1, 1.0, 0.5);
    let handles: Vec<_> = std::iter::once(&a1)
        .chain(b.iter())
        .chain(std::iter::once(&a2))
        .collect();
    wait_until_running(&handles);
    runtime.resume();
    for handle in &handles {
        assert!(handle.wait().unwrap()[0].is_ok());
    }
    // a1 leads (earliest at virtual time 0), then all four of B's submissions
    // (each advancing B's clock by cost/4) land before a2 (at cost/1).
    assert_eq!(a1.dispatch_sequence(), vec![0]);
    let b_seqs: Vec<u64> = b.iter().flat_map(|h| h.dispatch_sequence()).collect();
    assert_eq!(b_seqs, vec![1, 2, 3, 4]);
    assert_eq!(a2.dispatch_sequence(), vec![5]);
}

/// `Backpressure::Reject` fails fast at depth and recovers as soon as an
/// outstanding submission completes.
#[test]
fn reject_backpressure_fails_fast_and_recovers() {
    let runtime = CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(1).with_service(
            ServiceOptions::default()
                .with_queue_depth(1)
                .with_backpressure(Backpressure::Reject),
        ),
    );
    runtime.pause();
    let first = runtime
        .submit(Submission::single(
            one_block_circuit(0.4),
            [],
            Strategy::StrictPartial,
        ))
        .unwrap();
    let second = runtime.submit(Submission::single(
        one_block_circuit(0.9),
        [],
        Strategy::StrictPartial,
    ));
    assert!(matches!(second, Err(SubmitError::QueueFull { depth: 1 })));
    runtime.resume();
    assert!(first.wait().unwrap()[0].is_ok());

    // Capacity freed: the next submission is admitted and completes.
    let third = runtime
        .submit(Submission::single(
            one_block_circuit(1.4),
            [],
            Strategy::StrictPartial,
        ))
        .unwrap();
    assert!(third.wait().unwrap()[0].is_ok());
    let metrics = runtime.metrics();
    assert_eq!(metrics.rejected_submissions, 1);
    assert_eq!(metrics.submissions, 2);
}

/// `Backpressure::Block` parks the submitting thread until capacity frees, then
/// admits — nothing is lost, nothing is refused.
#[test]
fn block_backpressure_waits_for_capacity() {
    let runtime = std::sync::Arc::new(CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(1).with_service(
            ServiceOptions::default()
                .with_queue_depth(1)
                .with_backpressure(Backpressure::Block),
        ),
    ));
    runtime.pause();
    let first = runtime
        .submit(Submission::single(
            one_block_circuit(0.4),
            [],
            Strategy::StrictPartial,
        ))
        .unwrap();
    let second = {
        let runtime = std::sync::Arc::clone(&runtime);
        std::thread::spawn(move || {
            // Blocks until `first` completes, then compiles.
            runtime
                .submit(Submission::single(
                    one_block_circuit(0.9),
                    [],
                    Strategy::StrictPartial,
                ))
                .unwrap()
                .wait()
        })
    };
    // The queue stays at depth while the worker pool is paused; the spawned
    // submit cannot have been admitted.
    std::thread::sleep(std::time::Duration::from_millis(30));
    assert_eq!(runtime.metrics().submissions, 1);
    runtime.resume();
    assert!(first.wait().unwrap()[0].is_ok());
    let second = second.join().unwrap().expect("admitted after capacity");
    assert!(second[0].is_ok());
    assert_eq!(runtime.metrics().submissions, 2);
    assert_eq!(runtime.metrics().rejected_submissions, 0);
}

/// `Backpressure::Shed` drops the lowest-priority not-yet-started submission for
/// a higher-priority arrival, and sheds the arrival itself when everything
/// outstanding outranks it.
#[test]
fn shed_backpressure_drops_the_lowest_priority_pending_submission() {
    let runtime = CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(1).with_service(
            ServiceOptions::default()
                .with_queue_depth(2)
                .with_backpressure(Backpressure::Shed),
        ),
    );
    runtime.pause();
    let low = runtime
        .submit(
            Submission::single(one_block_circuit(0.1), [], Strategy::StrictPartial)
                .with_priority(Priority::LOW),
        )
        .unwrap();
    let normal = runtime
        .submit(
            Submission::single(one_block_circuit(0.6), [], Strategy::StrictPartial)
                .with_priority(Priority::NORMAL),
        )
        .unwrap();
    // Queue full (paused workers dispatch nothing). A high-priority arrival sheds
    // the lowest-priority pending submission.
    let high = runtime
        .submit(
            Submission::single(one_block_circuit(1.1), [], Strategy::StrictPartial)
                .with_priority(Priority::HIGH),
        )
        .unwrap();
    assert_eq!(low.try_status(), JobStatus::Shed);
    assert!(matches!(low.wait(), Err(SubmitError::Shed)));

    // Full again with NORMAL and HIGH: an incoming LOW submission outranks nothing
    // and is itself shed at the door.
    let hopeless = runtime.submit(
        Submission::single(one_block_circuit(1.6), [], Strategy::StrictPartial)
            .with_priority(Priority::LOW),
    );
    assert!(matches!(hopeless, Err(SubmitError::Shed)));

    runtime.resume();
    assert!(normal.wait().unwrap()[0].is_ok());
    assert!(high.wait().unwrap()[0].is_ok());
    let metrics = runtime.metrics();
    assert_eq!(metrics.shed_submissions, 2);
    // The shed submission's block never compiled: only the three survivors'
    // distinct blocks ran.
    assert_eq!(metrics.unique_compilations, 2);
}

/// Many submissions of the same circuit at different θ bindings: the shared Fixed
/// block is GRAPE-compiled exactly once across all requests, whichever request's
/// task ran it, and every other request is served by fan-out or cache hit.
///
/// Uses `RuntimeOptions::default()` so the CI stress job can drive worker count
/// and queue depth through `VQC_WORKERS` / `VQC_QUEUE_DEPTH` / `VQC_BACKPRESSURE`.
#[test]
fn cross_request_dedup_compiles_each_unique_block_exactly_once() {
    let runtime = std::sync::Arc::new(CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::default(),
    ));
    let mut circuit = one_block_circuit(0.8);
    circuit.rz_expr(1, vqc_circuit::ParamExpr::theta(0));

    // Submit from several OS threads at once (competing clients), each a batch of
    // bindings — every request's plan contains the same Fixed block.
    let handles: Vec<_> = (0..4)
        .map(|client| {
            let runtime = std::sync::Arc::clone(&runtime);
            let circuit = circuit.clone();
            std::thread::spawn(move || {
                let bindings: Vec<Vec<f64>> = (0..3)
                    .map(|i| vec![0.2 * client as f64 + i as f64])
                    .collect();
                runtime
                    .submit(
                        Submission::iterations(circuit, bindings, Strategy::StrictPartial)
                            .with_client(client),
                    )
                    .unwrap()
                    .wait()
            })
        })
        .collect();
    for handle in handles {
        let reports = handle.join().unwrap().expect("not shed");
        assert_eq!(reports.len(), 3);
        for report in reports {
            assert!(report.is_ok());
        }
    }
    let metrics = runtime.metrics();
    assert_eq!(
        metrics.unique_compilations, 1,
        "one Fixed block exists across all 12 jobs and compiles exactly once"
    );
    assert_eq!(metrics.cache.insertions, 1);
    assert_eq!(metrics.cache.misses, 1);
    // Every other job was served without GRAPE: a coalesced fan-out if it arrived
    // while the block was pending, a cache hit otherwise.
    assert!(metrics.coalesced_waits + metrics.cache.hits >= 11);
    assert_eq!(metrics.submissions, 4);
}

/// Regression for interest-generation confusion: when a high-priority client
/// coalesces onto a shared block, the task is re-posted at high priority and the
/// *original* posting becomes a stale duplicate that can outlive its interest in
/// the ready queue (it is only discarded when popped). A later submission
/// re-creating interest in the same `BlockKey` must not have that interest
/// hijacked — or dropped — by the leftover; without generation stamps the stale
/// task consumed the successor's pending entry and the successor's handle hung
/// forever. Several rounds of (low + high) then (low alone) on one shared key
/// walk straight through that window; the observable failure is a hang.
#[test]
fn stale_priority_inheritance_duplicates_cannot_consume_later_interests() {
    let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(1));
    for round in 0..3 {
        // A low owner posts the shared key; a high waiter re-posts it.
        runtime.pause();
        let low = runtime
            .submit(
                Submission::single(one_block_circuit(0.7), [], Strategy::StrictPartial)
                    .with_priority(Priority::LOW)
                    .with_client(1),
            )
            .unwrap();
        // Priority-ordered expansion would otherwise plan the high submission
        // first; the hijack window needs low to own the shared key's task.
        wait_until_running(&[&low]);
        let high = runtime
            .submit(
                Submission::single(one_block_circuit(0.7), [], Strategy::StrictPartial)
                    .with_priority(Priority::HIGH)
                    .with_client(2),
            )
            .unwrap();
        wait_until_running(&[&low, &high]);
        runtime.resume();
        assert!(low.wait().expect("not shed")[0].is_ok(), "round {round}");
        assert!(high.wait().expect("not shed")[0].is_ok(), "round {round}");

        // A lone low-priority successor re-creates interest in the same key. Its
        // fresh task carries the (small) observed cost while a leftover stale
        // task carries the (large) model estimate, so the stale one pops first —
        // exactly the hijack window.
        runtime.pause();
        let successor = runtime
            .submit(
                Submission::single(one_block_circuit(0.7), [], Strategy::StrictPartial)
                    .with_priority(Priority::LOW)
                    .with_client(3),
            )
            .unwrap();
        wait_until_running(&[&successor]);
        runtime.resume();
        assert!(
            successor.wait().expect("not shed")[0].is_ok(),
            "round {round}: the successor's interest must survive stale duplicates"
        );
    }
    let metrics = runtime.metrics();
    assert_eq!(
        metrics.unique_compilations, 1,
        "one shared block exists and compiled exactly once across all rounds"
    );
    assert!(metrics.coalesced_waits >= 3);
}

/// Canceling a queued submission resolves its handle with `Canceled` and frees
/// its admission slot immediately, without waiting for workers.
#[test]
fn cancel_releases_queue_capacity_for_queued_and_running_submissions() {
    let runtime = CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(1).with_service(
            ServiceOptions::default()
                .with_queue_depth(1)
                .with_backpressure(Backpressure::Reject),
        ),
    );
    runtime.pause();
    let first = runtime
        .submit(Submission::single(
            one_block_circuit(0.4),
            [],
            Strategy::StrictPartial,
        ))
        .unwrap();
    // Queue is at depth; a second submission is rejected.
    assert!(matches!(
        runtime.submit(Submission::single(
            one_block_circuit(0.9),
            [],
            Strategy::StrictPartial,
        )),
        Err(SubmitError::QueueFull { depth: 1 })
    ));
    // Cancel (whether still Queued or already expanded) frees the slot without
    // a single block having compiled.
    assert!(first.cancel());
    assert!(!first.cancel(), "cancel is idempotent");
    assert_eq!(first.try_status(), JobStatus::Canceled);
    assert!(matches!(first.wait(), Err(SubmitError::Canceled)));
    let second = runtime
        .submit(Submission::single(
            one_block_circuit(0.9),
            [],
            Strategy::StrictPartial,
        ))
        .expect("the canceled submission's slot is free");
    runtime.resume();
    assert!(second.wait().unwrap()[0].is_ok());
    let metrics = runtime.metrics();
    assert_eq!(metrics.canceled_submissions, 1);
    // The canceled submission's block task was garbage-collected, not compiled.
    assert_eq!(metrics.unique_compilations, 1);
}

/// Canceling an owner whose task other requests wait on keeps the task alive
/// for the waiters (task GC only drops work nobody wants): the canceled
/// client's private block never compiles, the shared block fans out.
#[test]
fn canceled_owner_with_live_waiters_keeps_shared_work_but_drops_private_work() {
    let mut options = fast_options();
    options.max_block_width = 2;
    let runtime = CompilationRuntime::new(options, RuntimeOptions::with_workers(1));
    runtime.pause();
    let owner = runtime
        .submit(
            Submission::single(shared_plus_private(0.3), [], Strategy::StrictPartial)
                .with_client(1),
        )
        .unwrap();
    // The owner must expand first so it owns the shared (0,1) block's task.
    wait_until_running(&[&owner]);
    let waiter = runtime
        .submit(
            Submission::single(shared_plus_private(1.9), [], Strategy::StrictPartial)
                .with_client(2),
        )
        .unwrap();
    wait_until_running(&[&waiter]);
    assert!(owner.cancel());
    runtime.resume();

    // The waiter still gets a full report: the shared block compiled (on the
    // canceled owner's task, kept alive by the waiter) and fanned out.
    let report = waiter.wait().expect("not canceled")[0].clone().unwrap();
    assert_eq!(report.num_blocks, 2);
    assert!(matches!(owner.wait(), Err(SubmitError::Canceled)));
    let metrics = runtime.metrics();
    // Shared block + the waiter's private block; the canceled owner's private
    // block was garbage-collected from the ready queue.
    assert_eq!(metrics.unique_compilations, 2);
    assert_eq!(metrics.canceled_submissions, 1);
    assert_eq!(runtime.client_metrics(1).canceled, 1);
}

/// Expansion is priority-ordered: with the intake held, a later high-priority
/// submission is planned before an earlier low-priority one.
#[test]
fn expansion_drains_the_intake_heap_in_priority_order() {
    let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(1));
    runtime.pause(); // workers quiesced; only expansion order is under test
    runtime.pause_intake();
    // A big low-priority batch (many distinct circuits, planned one by one)...
    let low = runtime
        .submit(
            Submission::batch(
                (0..40)
                    .map(|i| {
                        vqc_runtime::CompileJob::new(
                            one_block_circuit(0.05 * i as f64),
                            vec![],
                            Strategy::StrictPartial,
                        )
                    })
                    .collect(),
            )
            .with_priority(Priority::LOW)
            .with_client(1),
        )
        .unwrap();
    // ...admitted before a small high-priority request.
    let high = runtime
        .submit(
            Submission::single(one_block_circuit(3.1), [], Strategy::StrictPartial)
                .with_priority(Priority::HIGH)
                .with_client(2),
        )
        .unwrap();
    assert_eq!(low.try_status(), JobStatus::Queued);
    assert_eq!(high.try_status(), JobStatus::Queued);
    runtime.resume_intake();
    assert_eq!(high.wait_started(), JobStatus::Running);
    runtime.resume();
    assert!(high.wait().unwrap()[0].is_ok());
    assert!(low.wait().unwrap().iter().all(|r| r.is_ok()));
    // Queue time is stamped at each submission's Running transition, so the
    // per-client slices record the expansion order race-free: the high
    // submission expanded first (small queue time), the low batch only after
    // it — its queue time includes the high expansion *and* its own 40-circuit
    // planning. Admission-ordered expansion would invert this (the low batch,
    // admitted first, would go Running first and the high submission would
    // wait behind its 40 plans).
    let low_queue = runtime.client_metrics(1).queue_seconds;
    let high_queue = runtime.client_metrics(2).queue_seconds;
    assert!(
        high_queue < low_queue,
        "high expanded after the low batch (high queued {high_queue:.6}s, low {low_queue:.6}s)"
    );
}

/// `RuntimeMetrics` slices per client: hits, compilations, coalesced waits,
/// queue time, and life-cycle counts are attributed to the client id that
/// caused them.
#[test]
fn metrics_slice_per_client() {
    let mut options = fast_options();
    options.max_block_width = 2;
    let runtime = CompilationRuntime::new(options, RuntimeOptions::with_workers(1));
    runtime.pause();
    let a = runtime
        .submit(
            Submission::single(shared_plus_private(0.3), [], Strategy::StrictPartial)
                .with_client(10),
        )
        .unwrap();
    wait_until_running(&[&a]); // a owns the shared block's task
    let b = runtime
        .submit(
            Submission::single(shared_plus_private(1.9), [], Strategy::StrictPartial)
                .with_client(20),
        )
        .unwrap();
    wait_until_running(&[&b]);
    runtime.resume();
    assert!(a.wait().unwrap()[0].is_ok());
    assert!(b.wait().unwrap()[0].is_ok());

    let a_metrics = runtime.client_metrics(10);
    let b_metrics = runtime.client_metrics(20);
    // A led both of its blocks; B compiled its private block and coalesced onto
    // A's shared task (served as a fan-out cache hit).
    assert_eq!(a_metrics.submissions, 1);
    assert_eq!(b_metrics.submissions, 1);
    assert_eq!(a_metrics.completed, 1);
    assert_eq!(b_metrics.completed, 1);
    assert_eq!(a_metrics.compilations, 2);
    assert_eq!(b_metrics.compilations, 1);
    assert_eq!(b_metrics.coalesced_waits, 1);
    assert_eq!(b_metrics.cache_hits, 1);
    assert_eq!(a_metrics.dispatched_tasks, 2);
    assert_eq!(b_metrics.dispatched_tasks, 1);
    assert!(a_metrics.queue_seconds >= 0.0);
    // The global view is the sum of the slices (plus nothing else here).
    let metrics = runtime.metrics();
    assert_eq!(
        metrics.unique_compilations,
        a_metrics.compilations + b_metrics.compilations
    );
    let snapshot = runtime.client_metrics_snapshot();
    assert_eq!(
        snapshot.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        vec![10, 20]
    );
    // An unseen client id reads as zeroes rather than an error.
    assert_eq!(runtime.client_metrics(99).submissions, 0);
}

/// Submissions that end while still Queued — canceled or load-shed — charge
/// their queued time to the owner's `queue_seconds` slice exactly once;
/// door-shed submissions (never admitted) are never charged.
#[test]
fn queue_seconds_charged_for_canceled_and_shed_submissions() {
    let runtime = CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(1).with_service(
            ServiceOptions::default()
                .with_queue_depth(2)
                .with_backpressure(Backpressure::Shed),
        ),
    );
    // Pausing intake (not dispatch) keeps admitted submissions in Queued: they
    // never reach `expand`, so the Running-transition charge cannot fire and
    // the terminal-state paths are the only ones that can account their time.
    runtime.pause_intake();
    let canceled = runtime
        .submit(
            Submission::single(one_block_circuit(0.2), [], Strategy::StrictPartial).with_client(40),
        )
        .unwrap();
    let victim = runtime
        .submit(
            Submission::single(one_block_circuit(0.7), [], Strategy::StrictPartial)
                .with_client(50)
                .with_priority(Priority::LOW),
        )
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));

    // Queue full, and a LOW arrival outranks nothing pending: shed at the
    // door. It was never admitted, so it accrues no queue time.
    let door = runtime.submit(
        Submission::single(one_block_circuit(1.6), [], Strategy::StrictPartial)
            .with_client(70)
            .with_priority(Priority::LOW),
    );
    assert!(matches!(door, Err(SubmitError::Shed)));
    assert_eq!(runtime.client_metrics(70).queue_seconds, 0.0);

    // A HIGH arrival sheds the queued LOW victim, which is charged the time it
    // spent admitted-but-unexpanded.
    let high = runtime
        .submit(
            Submission::single(one_block_circuit(1.1), [], Strategy::StrictPartial)
                .with_client(60)
                .with_priority(Priority::HIGH),
        )
        .unwrap();
    assert_eq!(victim.try_status(), JobStatus::Shed);
    let shed_seconds = runtime.client_metrics(50).queue_seconds;
    assert!(
        shed_seconds >= 0.015,
        "shed-while-queued must be charged its ~20ms queue time, got {shed_seconds:.6}s"
    );

    // Cancel-while-Queued is charged the same way...
    canceled.cancel();
    assert_eq!(canceled.try_status(), JobStatus::Canceled);
    let cancel_seconds = runtime.client_metrics(40).queue_seconds;
    assert!(
        cancel_seconds >= 0.015,
        "cancel-while-queued must be charged its ~20ms queue time, got {cancel_seconds:.6}s"
    );
    // ...and exactly once: a second cancel is a no-op on an already-terminal
    // submission.
    canceled.cancel();
    assert_eq!(runtime.client_metrics(40).queue_seconds, cancel_seconds);

    runtime.resume_intake();
    assert!(high.wait().unwrap()[0].is_ok());
    // The survivor is charged at its Running transition as before.
    assert!(runtime.client_metrics(60).queue_seconds > 0.0);
}

/// `wait_job` streams per-job completions in completion order and then reports
/// exhaustion; the stream agrees with the final `wait` result set.
#[test]
fn wait_job_streams_completions_in_order() {
    let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(2));
    let mut circuit = one_block_circuit(0.8);
    circuit.rz_expr(1, vqc_circuit::ParamExpr::theta(0));
    let handle = runtime
        .submit(Submission::iterations(
            circuit,
            vec![vec![0.1], vec![0.7], vec![2.2]],
            Strategy::StrictPartial,
        ))
        .unwrap();
    let mut streamed = Vec::new();
    let mut seen = 0;
    while let Some((job, result)) = handle.wait_job(seen).expect("not canceled") {
        streamed.push((job, result));
        seen += 1;
    }
    assert_eq!(streamed.len(), 3);
    assert_eq!(handle.completed_jobs(), 3);
    assert_eq!(handle.job_count(), 3);
    let mut job_indices: Vec<usize> = streamed.iter().map(|(job, _)| *job).collect();
    job_indices.sort_unstable();
    assert_eq!(job_indices, vec![0, 1, 2]);
    let final_results = handle.wait().expect("not shed");
    for (job, result) in &streamed {
        assert_eq!(
            result.as_ref().unwrap().pulse_duration_ns,
            final_results[*job].as_ref().unwrap().pulse_duration_ns
        );
    }
}

/// The handle lifecycle is observable: Queued (paused) → Running → Done, and
/// `wait` is idempotent on a cloned handle.
#[test]
fn handle_status_progresses_and_wait_is_repeatable() {
    let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(1));
    runtime.pause();
    let handle = runtime
        .submit(Submission::single(
            one_block_circuit(0.3),
            [],
            Strategy::StrictPartial,
        ))
        .unwrap();
    // While paused, the submission never reaches Done (it may be Queued or, once
    // the accept loop expands it, Running).
    assert_ne!(handle.try_status(), JobStatus::Done);
    runtime.resume();
    let clone = handle.clone();
    assert!(handle.wait().unwrap()[0].is_ok());
    assert_eq!(handle.try_status(), JobStatus::Done);
    assert!(clone.wait().unwrap()[0].is_ok(), "wait repeats on clones");
    assert_eq!(handle.priority(), Priority::NORMAL);
}
