//! In-flight deduplication of block compilations.
//!
//! Two workers that reach for the same [`BlockKey`] at the same time must not both
//! run GRAPE: the first becomes the *leader* and compiles; every other worker gets a
//! *follower* ticket and blocks until the leader finishes (by which point the shared
//! pulse cache holds the result, so the follower's own compile call degenerates to a
//! lookup). This is the runtime's "singleflight" primitive.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vqc_core::BlockKey;

/// Completion signal for one in-flight compilation (opaque; carried by [`Ticket`]).
#[derive(Debug, Default)]
pub struct Flight {
    done: Mutex<bool>,
    finished: Condvar,
}

/// Which role a worker was assigned for one key; see [`InFlight::begin`].
#[derive(Debug)]
pub enum Ticket {
    /// This worker must perform the compilation and then call [`InFlight::complete`].
    Leader(Arc<Flight>),
    /// Another worker is compiling this key; wait via [`InFlight::wait`].
    Follower(Arc<Flight>),
}

/// Table of compilations currently being performed somewhere on the worker pool.
#[derive(Debug, Default)]
pub struct InFlight {
    flights: Mutex<HashMap<BlockKey, Arc<Flight>>>,
    leads: AtomicU64,
    coalesced: AtomicU64,
}

impl InFlight {
    /// Creates an empty table.
    pub fn new() -> Self {
        InFlight::default()
    }

    /// Registers interest in a key: the first caller becomes the leader, later
    /// callers (until the leader completes) become followers.
    pub fn begin(&self, key: BlockKey) -> Ticket {
        let mut flights = self.flights.lock();
        if let Some(flight) = flights.get(&key) {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            Ticket::Follower(Arc::clone(flight))
        } else {
            let flight = Arc::new(Flight::default());
            flights.insert(key, Arc::clone(&flight));
            self.leads.fetch_add(1, Ordering::Relaxed);
            Ticket::Leader(flight)
        }
    }

    /// Marks a leader's flight finished and wakes all followers. Must be called even
    /// when the compilation failed, or followers would wait forever.
    pub fn complete(&self, key: &BlockKey, flight: Arc<Flight>) {
        {
            let mut flights = self.flights.lock();
            flights.remove(key);
        }
        *flight.done.lock() = true;
        flight.finished.notify_all();
    }

    /// Blocks a follower until its leader calls [`InFlight::complete`].
    pub fn wait(&self, flight: &Arc<Flight>) {
        let mut done = flight.done.lock();
        while !*done {
            flight.finished.wait(&mut done);
        }
    }

    /// Number of times a caller became a leader (unique in-flight compilations).
    pub fn leads(&self) -> u64 {
        self.leads.load(Ordering::Relaxed)
    }

    /// Number of times a caller was coalesced onto an existing flight.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Returns a guard that calls [`InFlight::complete`] when dropped. Leaders must
    /// hold one across their compilation: if the compile panics, the unwinding drop
    /// still completes the flight, so followers wake (and observe the missing cache
    /// entry) instead of deadlocking on a flight nobody will ever finish.
    pub fn complete_on_drop<'a>(
        &'a self,
        key: BlockKey,
        flight: Arc<Flight>,
    ) -> CompletionGuard<'a> {
        CompletionGuard {
            table: self,
            key,
            flight: Some(flight),
        }
    }
}

/// Drop guard completing a leader's flight; see [`InFlight::complete_on_drop`].
#[derive(Debug)]
pub struct CompletionGuard<'a> {
    table: &'a InFlight,
    key: BlockKey,
    flight: Option<Arc<Flight>>,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        if let Some(flight) = self.flight.take() {
            self.table.complete(&self.key, flight);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{InFlight, Ticket};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use vqc_circuit::Circuit;
    use vqc_core::BlockKey;

    fn key() -> BlockKey {
        let mut circuit = Circuit::new(2);
        circuit.cx(0, 1);
        BlockKey::from_bound_circuit(&circuit)
    }

    #[test]
    fn leader_then_followers_then_leader_again() {
        let table = InFlight::new();
        let Ticket::Leader(flight) = table.begin(key()) else {
            panic!("first begin must lead")
        };
        assert!(matches!(table.begin(key()), Ticket::Follower(_)));
        table.complete(&key(), flight);
        // Once completed, the key leads again (a fresh compile would hit the cache).
        assert!(matches!(table.begin(key()), Ticket::Leader(_)));
        assert_eq!(table.leads(), 2);
        assert_eq!(table.coalesced(), 1);
    }

    #[test]
    fn followers_unblock_when_leader_completes() {
        let table = Arc::new(InFlight::new());
        let Ticket::Leader(leader_flight) = table.begin(key()) else {
            panic!("first begin must lead")
        };
        let woken = Arc::new(AtomicUsize::new(0));
        // All followers obtain their tickets before the leader completes (barrier),
        // so every spawned thread must coalesce.
        let registered = Arc::new(std::sync::Barrier::new(5));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let table = Arc::clone(&table);
                let woken = Arc::clone(&woken);
                let registered = Arc::clone(&registered);
                std::thread::spawn(move || {
                    let ticket = table.begin(key());
                    registered.wait();
                    match ticket {
                        Ticket::Follower(flight) => {
                            table.wait(&flight);
                            woken.fetch_add(1, Ordering::SeqCst);
                        }
                        Ticket::Leader(_) => panic!("leader already exists"),
                    }
                })
            })
            .collect();
        registered.wait();
        assert_eq!(woken.load(Ordering::SeqCst), 0);
        table.complete(&key(), leader_flight);
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(woken.load(Ordering::SeqCst), 4);
    }
}
