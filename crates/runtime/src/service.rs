//! The request-scheduling service core: submissions, priorities, backpressure.
//!
//! This module turns the compilation runtime from a library function into a
//! service. Clients [`Submission::batch`]/[`Submission::iterations`] work through a
//! bounded admission queue ([`Backpressure`] decides what happens when it is full),
//! a channel-based accept loop hands each admitted submission to a scheduler thread
//! that expands it into block tasks via [`PartialCompiler::plan`], and a persistent
//! worker pool drains one merged task queue for *all* outstanding requests.
//!
//! Ordering is per-client priority with weighted fair queuing underneath:
//!
//! 1. **Priority classes are strict** — a ready task of a higher [`Priority`]
//!    always dispatches before any lower one. Sustained high-priority load can
//!    therefore starve lower classes; the bounded admission queue is the pressure
//!    valve that keeps that starvation visible at submit time instead of silent.
//! 2. **Within a class, clients share the pool by weighted virtual time** — each
//!    submission is stamped with its client's virtual start time, and the client's
//!    clock advances by `estimated cost / weight` per submission, so a client
//!    submitting many requests interleaves fairly with its peers instead of
//!    draining its whole backlog first (start-time fair queuing).
//! 3. **Within a submission, blocks drain longest-processing-time-first** (the
//!    runtime's existing LPT schedule), using the same calibrated cost estimates.
//!
//! Block tasks from different requests are merged and deduplicated: if a submission
//! needs a block another request has already queued or started, no second task is
//! created — the submission is registered as a *waiter* and the one compiled result
//! fans out to every waiting job on completion. A waiter of higher priority than
//! the task's owner re-posts the task at its own priority (priority inheritance),
//! so a low-priority request can never make a high-priority one late by having
//! asked for a shared block first.

use crate::cache::ShardedPulseCache;
use crate::runtime::{CompileJob, SchedulePolicy};
use crate::telemetry::{
    MetricsSnapshot, Telemetry, TelemetryOptions, TraceStage, PRIORITY_CLASSES,
};
use parking_lot::{lock_check, Condvar, Mutex};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;
use vqc_circuit::Circuit;
use vqc_core::{
    BlockKey, BlockOutcome, CompilationPlan, CompilationReport, CompileError, PartialCompiler,
    Strategy,
};

/// Scheduling priority of a submission. Higher values dispatch strictly first.
///
/// Priorities order *classes* of traffic (interactive vs. batch); fairness between
/// clients of the same class is handled by weighted virtual time, not by inventing
/// fine-grained priority values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u8);

impl Priority {
    /// Background traffic: speculative pre-compilation, cache warming.
    pub const LOW: Priority = Priority(0);
    /// The default class for ordinary requests.
    pub const NORMAL: Priority = Priority(8);
    /// Latency-sensitive traffic: an interactive client blocked on the result.
    pub const HIGH: Priority = Priority(16);
}

impl Default for Priority {
    fn default() -> Self {
        Priority::NORMAL
    }
}

/// What `submit` does when the admission queue is at its configured depth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the submitting thread until capacity frees up. The caller's thread
    /// becomes the pressure valve — this is what the synchronous wrapper API uses.
    #[default]
    Block,
    /// Fail fast with [`SubmitError::QueueFull`]; the client decides whether to
    /// retry, degrade, or route elsewhere.
    Reject,
    /// Make room by dropping the lowest-priority submission that has not *started*
    /// (still queued, or expanded with no block task dispatched yet) and whose
    /// priority is strictly below the incoming one; its handle resolves to
    /// [`SubmitError::Shed`]. If everything outstanding outranks the incoming
    /// submission or already started, the incoming submission is the one shed.
    ///
    /// "Started" means a block task of its own dispatched: a submission whose
    /// every block coalesced onto *other* requests' tasks stays sheddable even
    /// while that shared work is compiling — shedding it wastes nothing (the
    /// shared results land in the cache regardless), but the client receives
    /// [`SubmitError::Shed`] rather than the nearly-free result.
    Shed,
}

impl Backpressure {
    /// Parses the `VQC_BACKPRESSURE` spelling of a policy (`"block"`, `"reject"`,
    /// or `"shed"`, case-insensitive); anything else is `None`.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "block" | "wait" => Some(Backpressure::Block),
            "reject" | "fail" => Some(Backpressure::Reject),
            "shed" | "drop" => Some(Backpressure::Shed),
            _ => None,
        }
    }
}

/// Admission-control configuration of the service front-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceOptions {
    /// Maximum number of submissions admitted but not yet completed (minimum 1).
    /// When reached, [`ServiceOptions::backpressure`] decides what happens next.
    pub queue_depth: usize,
    /// Behavior of `submit` against a full queue.
    pub backpressure: Backpressure,
}

impl Default for ServiceOptions {
    /// Defaults to a 64-deep queue with blocking backpressure; the
    /// `VQC_QUEUE_DEPTH` and `VQC_BACKPRESSURE` environment variables override
    /// (garbage values are ignored, `0` clamps to 1).
    fn default() -> Self {
        let queue_depth = std::env::var("VQC_QUEUE_DEPTH")
            .ok()
            .and_then(|raw| raw.parse::<usize>().ok())
            .unwrap_or(64)
            .max(1);
        let backpressure = std::env::var("VQC_BACKPRESSURE")
            .ok()
            .and_then(|raw| Backpressure::parse(&raw))
            .unwrap_or_default();
        ServiceOptions {
            queue_depth,
            backpressure,
        }
    }
}

impl ServiceOptions {
    /// Replaces the queue depth (clamped to at least 1).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Replaces the backpressure policy.
    pub fn with_backpressure(mut self, backpressure: Backpressure) -> Self {
        self.backpressure = backpressure;
        self
    }
}

/// Why a submission did not produce compilation results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue was full under [`Backpressure::Reject`].
    QueueFull {
        /// The configured queue depth that was exhausted.
        depth: usize,
    },
    /// The submission was load-shed under [`Backpressure::Shed`] — either dropped
    /// from the queue to admit higher-priority work, or refused at the door
    /// because everything queued outranked it.
    Shed,
    /// The submission was canceled via [`JobHandle::cancel`] (directly, or by a
    /// transport front-end on behalf of a disconnected client).
    Canceled,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { depth } => {
                write!(f, "admission queue is at its configured depth of {depth}")
            }
            SubmitError::Shed => write!(f, "submission was load-shed for higher-priority work"),
            SubmitError::Canceled => write!(f, "submission was canceled"),
            SubmitError::ShuttingDown => write!(f, "the compilation service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Life-cycle stage of a submission, as reported by [`JobHandle::try_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for the scheduler to expand it into block tasks.
    Queued,
    /// Expanded; its block tasks are queued on or running on the worker pool.
    Running,
    /// All jobs have results; [`JobHandle::wait`] returns without blocking.
    Done,
    /// Load-shed before it started; [`JobHandle::wait`] returns
    /// [`SubmitError::Shed`].
    Shed,
    /// Canceled via [`JobHandle::cancel`]; [`JobHandle::wait`] returns
    /// [`SubmitError::Canceled`]. Block tasks the submission owned are
    /// garbage-collected from the ready queue unless another request is waiting
    /// on them; tasks already running finish and populate the shared cache.
    Canceled,
}

/// Per-client slice of the runtime's counters, keyed by the client id a
/// [`Submission::with_client`] carried. Submissions without a client id are
/// counted only in the global [`crate::RuntimeMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClientMetrics {
    /// Submissions admitted on behalf of this client.
    pub submissions: u64,
    /// Submissions that completed (successfully or with per-job errors).
    pub completed: u64,
    /// Submissions dropped by [`Backpressure::Shed`].
    pub shed: u64,
    /// Submissions canceled via [`JobHandle::cancel`].
    pub canceled: u64,
    /// Keyed block requests served from the shared pulse cache.
    pub cache_hits: u64,
    /// Keyed block compilations whose pulse-level work ran on behalf of this
    /// client (as task owner or as a fan-out waiter whose entry was evicted).
    pub compilations: u64,
    /// Block requests coalesced onto an already-scheduled task of another request.
    pub coalesced_waits: u64,
    /// Block tasks dispatched with this client's submissions as owner.
    pub dispatched_tasks: u64,
    /// Total seconds this client's submissions spent between admission and
    /// expansion (queue time before any block task could be scheduled).
    pub queue_seconds: f64,
}

/// What a submission asks the service to compile.
#[derive(Debug, Clone)]
enum SubmissionKind {
    /// Independent jobs (each its own circuit, binding, and strategy).
    Batch(Vec<CompileJob>),
    /// One circuit at many parameter bindings under one strategy — planned once,
    /// the paper's variational-loop workload.
    Iterations {
        circuit: Circuit,
        parameter_sets: Vec<Vec<f64>>,
        strategy: Strategy,
    },
}

/// One request to the compilation service: what to compile, at which priority, on
/// behalf of which client.
#[derive(Debug, Clone)]
pub struct Submission {
    kind: SubmissionKind,
    priority: Priority,
    weight: f64,
    client: Option<u64>,
    trace: Option<u64>,
}

impl Submission {
    /// A batch of independent compile jobs (one result per job, in order).
    pub fn batch(jobs: Vec<CompileJob>) -> Self {
        Submission {
            kind: SubmissionKind::Batch(jobs),
            priority: Priority::default(),
            weight: 1.0,
            client: None,
            trace: None,
        }
    }

    /// A single circuit at a single binding (one result).
    pub fn single(circuit: Circuit, params: impl Into<Vec<f64>>, strategy: Strategy) -> Self {
        Submission::batch(vec![CompileJob::new(circuit, params, strategy)])
    }

    /// One circuit at many parameter bindings under one strategy. The circuit is
    /// planned once and the plan shared by every binding (blocking is structural),
    /// exactly as [`crate::CompilationRuntime::compile_iterations`] behaves.
    pub fn iterations(circuit: Circuit, parameter_sets: Vec<Vec<f64>>, strategy: Strategy) -> Self {
        Submission {
            kind: SubmissionKind::Iterations {
                circuit,
                parameter_sets,
                strategy,
            },
            priority: Priority::default(),
            weight: 1.0,
            client: None,
            trace: None,
        }
    }

    /// Sets the scheduling priority (default [`Priority::NORMAL`]).
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the client's fair-share weight within its priority class (default 1.0;
    /// a weight-2 client gets twice the share of a weight-1 peer). Clamped to a
    /// small positive minimum.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = if weight.is_finite() {
            weight.max(1e-6)
        } else {
            1.0
        };
        self
    }

    /// Attributes the submission to a stable client identity for fair-share
    /// accounting. Submissions without a client are scheduled at the current
    /// virtual clock with no accrued history.
    pub fn with_client(mut self, client: u64) -> Self {
        self.client = Some(client);
        self
    }

    /// Tags the submission with a client-assigned causal trace id. The id lands
    /// in the `detail` of the submission's `submitted` trace event, so a client
    /// that stamped its own spans with the same id can correlate them with the
    /// server's after fetching the trace (`vqc-submit --trace-out`).
    pub fn with_trace(mut self, trace: u64) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// Shared state of one admitted submission.
#[derive(Debug)]
struct SubmissionState {
    id: u64,
    kind: SubmissionKind,
    priority: Priority,
    weight: f64,
    client: Option<u64>,
    /// When the submission was admitted; the interval to its `Running` transition
    /// is the queue time charged to its client's [`ClientMetrics`].
    admitted_at: Instant,
    inner: Mutex<SubmissionInner>,
    done: Condvar,
}

#[derive(Debug)]
struct SubmissionInner {
    status: JobStatus,
    /// One-shot completion claim: exactly one thread performs the Done transition
    /// (admission release, then status publish), however deliveries race.
    finishing: bool,
    jobs: Vec<JobSlot>,
    /// Jobs without a result yet.
    jobs_remaining: usize,
    /// Job indices in the order their results landed — the stream a transport
    /// front-end forwards to a remote client as completion events.
    completed_order: Vec<usize>,
    /// Global dispatch sequence numbers of the block tasks dispatched for this
    /// submission, in dispatch order — the observable scheduling order.
    dispatched: Vec<u64>,
}

/// Result assembly state of one job of a submission.
#[derive(Debug)]
struct JobSlot {
    plan: Option<Arc<CompilationPlan>>,
    outcomes: Vec<Option<BlockOutcome>>,
    remaining: usize,
    result: Option<Result<CompilationReport, CompileError>>,
}

/// A client's handle to one submission: poll with
/// [`JobHandle::try_status`], block with [`JobHandle::wait`], stream per-job
/// completions with [`JobHandle::wait_job`], abort with [`JobHandle::cancel`].
#[derive(Debug, Clone)]
pub struct JobHandle {
    state: Arc<SubmissionState>,
    core: Weak<ServiceCore>,
}

impl JobHandle {
    /// Blocks until the submission completes (or was shed or canceled) and returns
    /// one result per job, in submission order. Cloned handles may wait repeatedly.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::Shed`] if the submission was load-shed before it
    /// started, [`SubmitError::Canceled`] if it was canceled.
    #[allow(clippy::type_complexity)]
    pub fn wait(&self) -> Result<Vec<Result<CompilationReport, CompileError>>, SubmitError> {
        let mut inner = self.state.inner.lock();
        while !matches!(
            inner.status,
            JobStatus::Done | JobStatus::Shed | JobStatus::Canceled
        ) {
            self.state.done.wait(&mut inner);
        }
        match inner.status {
            JobStatus::Shed => Err(SubmitError::Shed),
            JobStatus::Canceled => Err(SubmitError::Canceled),
            _ => Ok(inner
                .jobs
                .iter()
                // audit:allow(unwrap): status == Done guarantees every job slot carries a result
                .map(|job| job.result.clone().expect("done submissions have results"))
                .collect()),
        }
    }

    /// The submission's current life-cycle stage, without blocking.
    pub fn try_status(&self) -> JobStatus {
        self.state.inner.lock().status
    }

    /// Blocks until the submission leaves [`JobStatus::Queued`] and returns the
    /// first non-queued status observed.
    pub fn wait_started(&self) -> JobStatus {
        let mut inner = self.state.inner.lock();
        while matches!(inner.status, JobStatus::Queued) {
            self.state.done.wait(&mut inner);
        }
        inner.status
    }

    /// Blocks until the `seen`-th job (counting in completion order, starting at
    /// 0) has a result, and returns its submission-order index together with that
    /// result. Returns `Ok(None)` once the submission is done and fewer than
    /// `seen + 1` jobs exist — the stream is exhausted. Calling with `seen` equal
    /// to the number of events already consumed turns the handle into a blocking
    /// iterator of completion events, which is exactly how the network transport
    /// streams per-job results to a remote client as blocks finish.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::Shed`] / [`SubmitError::Canceled`] once the
    /// submission reaches that terminal state (events observed before
    /// cancellation remain observable *before* the error: the stream fails only
    /// at its tail).
    #[allow(clippy::type_complexity)]
    pub fn wait_job(
        &self,
        seen: usize,
    ) -> Result<Option<(usize, Result<CompilationReport, CompileError>)>, SubmitError> {
        let mut inner = self.state.inner.lock();
        loop {
            if inner.completed_order.len() > seen {
                let job = inner.completed_order[seen];
                let result = inner.jobs[job]
                    .result
                    .clone()
                    // audit:allow(unwrap): completed_order only holds jobs whose result was set
                    .expect("completed jobs have results");
                return Ok(Some((job, result)));
            }
            match inner.status {
                JobStatus::Done => return Ok(None),
                JobStatus::Shed => return Err(SubmitError::Shed),
                JobStatus::Canceled => return Err(SubmitError::Canceled),
                _ => self.state.done.wait(&mut inner),
            }
        }
    }

    /// Number of jobs whose results have landed so far.
    pub fn completed_jobs(&self) -> usize {
        self.state.inner.lock().completed_order.len()
    }

    /// Number of jobs the submission expands to. Zero until expansion installs
    /// the job slots (i.e. while [`JobStatus::Queued`]); fixed thereafter.
    pub fn job_count(&self) -> usize {
        self.state.inner.lock().jobs.len()
    }

    /// Cancels the submission: queued work never dispatches, and a running
    /// submission's not-yet-started block tasks are garbage-collected from the
    /// ready queue (tasks other requests wait on survive and fan out to them;
    /// tasks already executing finish and populate the shared cache). The
    /// admission slot is released immediately, so cancellation frees queue
    /// capacity even under [`Backpressure::Block`] pressure. Returns `true` if
    /// this call canceled the submission, `false` if it had already completed,
    /// been shed, been canceled, or entered its completion window.
    pub fn cancel(&self) -> bool {
        let was_queued = {
            let mut inner = self.state.inner.lock();
            if inner.finishing
                || matches!(
                    inner.status,
                    JobStatus::Done | JobStatus::Shed | JobStatus::Canceled
                )
            {
                return false;
            }
            let was_queued = matches!(inner.status, JobStatus::Queued);
            inner.status = JobStatus::Canceled;
            was_queued
        };
        self.state.done.notify_all();
        if let Some(core) = self.core.upgrade() {
            core.canceled_submissions.fetch_add(1, Ordering::Relaxed);
            // A submission canceled while still Queued never reached `expand`,
            // so its queue time is charged here (exactly once: a Running
            // submission was already charged at the Running transition).
            let queue_wait = was_queued.then(|| self.state.admitted_at.elapsed().as_secs_f64());
            core.record_client(self.state.client, |m| {
                m.canceled += 1;
                if let Some(wait) = queue_wait {
                    m.queue_seconds += wait;
                }
            });
            if let Some(wait) = queue_wait {
                core.telemetry.record_queue_wait(self.state.priority, wait);
            }
            core.telemetry
                .trace(TraceStage::Canceled, self.state.id, self.state.client, 0);
            core.release_admission();
            // Wake the workers so an otherwise idle pool garbage-collects the
            // canceled owner's queued tasks promptly.
            core.work.notify_all();
        }
        true
    }

    /// The priority the submission was admitted at.
    pub fn priority(&self) -> Priority {
        self.state.priority
    }

    /// Global dispatch sequence numbers of the block tasks dispatched for this
    /// submission so far, in dispatch order. Two handles' sequences interleave
    /// exactly as the scheduler ordered their work — the observable ground truth
    /// for priority and fairness tests (and for latency debugging).
    pub fn dispatch_sequence(&self) -> Vec<u64> {
        self.state.inner.lock().dispatched.clone()
    }
}

/// Everything a worker needs to run one block task (identity plus inputs).
#[derive(Debug, Clone)]
struct TaskBody {
    submission: Arc<SubmissionState>,
    job: usize,
    block: usize,
    plan: Arc<CompilationPlan>,
    params: Arc<Vec<f64>>,
    key: Option<BlockKey>,
    cost: f64,
}

/// A queued block task. Ordering (via `Ord`) is the scheduling policy: strict
/// priority, then weighted-fair virtual start time, then LPT cost, then FIFO.
#[derive(Debug)]
struct ReadyTask {
    priority: Priority,
    vstart: f64,
    seq: u64,
    /// Generation of the [`KeyInterest`] this task was posted for (0 and unused
    /// for keyless tasks).
    generation: u64,
    body: TaskBody,
}

impl PartialEq for ReadyTask {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for ReadyTask {}

impl PartialOrd for ReadyTask {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReadyTask {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap pops the greatest element, so "greater" must mean "dispatch
        // sooner": higher priority, then earlier virtual start, then larger
        // estimated cost (LPT), then earlier enqueue.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.vstart.total_cmp(&self.vstart))
            .then_with(|| self.body.cost.total_cmp(&other.body.cost))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A job waiting for a block task owned by another request.
#[derive(Debug)]
struct Waiter {
    submission: Arc<SubmissionState>,
    job: usize,
    block: usize,
    plan: Arc<CompilationPlan>,
    params: Arc<Vec<f64>>,
}

/// Cross-request interest in one block key: the task template (for priority
/// inheritance re-posts), whether some worker already took the task, and every job
/// waiting for the result to fan out.
#[derive(Debug)]
struct KeyInterest {
    /// Which incarnation of interest in this key the entry represents. A key can
    /// be compiled, completed, and become interesting again later; ready tasks
    /// carry the generation they were posted for, so a stale task (its interest
    /// already completed) can never hijack — or drop — a successor interest.
    generation: u64,
    taken: bool,
    /// Highest priority this key has been posted at so far.
    priority: Priority,
    template: TaskBody,
    waiters: Vec<Waiter>,
}

#[derive(Debug)]
struct SchedState {
    ready: BinaryHeap<ReadyTask>,
    /// Keyed block work that is queued or running: the cross-request dedup table.
    pending: HashMap<BlockKey, KeyInterest>,
    /// Per-client virtual time (seconds of estimated cost / weight).
    clients: HashMap<u64, f64>,
    /// Virtual start time of the most recently dispatched task; late-joining
    /// clients start here rather than at zero, so idleness earns no credit.
    vclock: f64,
    /// While `true`, workers do not dispatch (quiesce for tests or maintenance).
    paused: bool,
    /// Set once the accept loop has drained its channel during shutdown.
    scheduler_done: bool,
    next_task_seq: u64,
    /// Generation stamps for [`KeyInterest`] entries.
    next_generation: u64,
}

#[derive(Debug, Default)]
struct Admission {
    /// Submissions admitted but not yet completed or shed.
    outstanding: usize,
    /// Sheddable submissions that may still be in the Queued stage, scanned for
    /// victims by [`Backpressure::Shed`]; pruned lazily.
    queued: Vec<Arc<SubmissionState>>,
}

/// An admitted submission waiting for the accept loop to expand it. The heap
/// ordering is what makes *expansion* priority-ordered: a huge low-priority
/// submission admitted first no longer delays a later high-priority one's
/// planning — the accept loop always drains the highest class first, FIFO within
/// a class.
#[derive(Debug)]
struct IntakeEntry(Arc<SubmissionState>);

impl PartialEq for IntakeEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.id == other.0.id
    }
}

impl Eq for IntakeEntry {}

impl PartialOrd for IntakeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IntakeEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap pops the greatest: higher priority first, then lower
        // submission id (admission order) within a class.
        self.0
            .priority
            .cmp(&other.0.priority)
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}

#[derive(Debug)]
struct IntakeState {
    /// Admitted, not-yet-expanded submissions, drained best-first.
    heap: BinaryHeap<IntakeEntry>,
    /// While `true`, the accept loop buffers admissions without expanding them —
    /// the intake analogue of the dispatch [`SchedState::paused`] switch, used to
    /// stage deterministic expansion-order scenarios.
    paused: bool,
    /// Set at shutdown; admissions still buffered are drained (expanded) so their
    /// handles resolve, but nothing new is accepted.
    closed: bool,
}

/// Shared heart of the service: compiler, caches, scheduler state, counters.
#[derive(Debug)]
pub(crate) struct ServiceCore {
    pub(crate) compiler: PartialCompiler,
    pub(crate) cache: Arc<ShardedPulseCache>,
    schedule: SchedulePolicy,
    queue_depth: usize,
    backpressure: Backpressure,
    sched: Mutex<SchedState>,
    work: Condvar,
    intake: Mutex<IntakeState>,
    intake_cv: Condvar,
    admission: Mutex<Admission>,
    admitted: Condvar,
    shutdown: AtomicBool,
    pub(crate) compilations: AtomicU64,
    pub(crate) coalesced: AtomicU64,
    pub(crate) submissions: AtomicU64,
    pub(crate) completed_submissions: AtomicU64,
    pub(crate) shed_submissions: AtomicU64,
    pub(crate) rejected_submissions: AtomicU64,
    pub(crate) canceled_submissions: AtomicU64,
    client_metrics: Mutex<HashMap<u64, ClientMetrics>>,
    next_submission_id: AtomicU64,
    dispatch_seq: AtomicU64,
    /// Size of the worker pool (for utilization in snapshots).
    pub(crate) workers: usize,
    /// The live instrumentation layer (histograms, trace ring, subscribers).
    pub(crate) telemetry: Arc<Telemetry>,
}

/// Spawns a named thread. Thread names surface in lock-checker panics, long-hold
/// reports, and Chrome trace exports, so every service thread gets one.
fn spawn_named<F>(name: &str, body: F) -> std::thread::JoinHandle<()>
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(body)
        // audit:allow(unwrap): thread spawn fails only on OS resource exhaustion at startup
        .expect("failed to spawn service thread")
}

impl ServiceCore {
    /// Transitions the submission to `Done` once all jobs have results. The
    /// admission slot is released *before* `Done` becomes observable, so a client
    /// that returns from [`JobHandle::wait`] can immediately re-submit without
    /// racing the bookkeeping. Must be called with fresh (unheld) locks.
    fn try_complete(&self, state: &Arc<SubmissionState>) {
        {
            let mut inner = state.inner.lock();
            if inner.jobs_remaining > 0 || inner.status != JobStatus::Running || inner.finishing {
                return;
            }
            inner.finishing = true;
        }
        self.release_admission();
        self.record_client(state.client, |m| m.completed += 1);
        self.completed_submissions.fetch_add(1, Ordering::Relaxed);
        self.telemetry
            .record_submit_to_report(state.priority, state.admitted_at.elapsed().as_secs_f64());
        self.telemetry
            .trace(TraceStage::Report, state.id, state.client, 0);
        state.inner.lock().status = JobStatus::Done;
        state.done.notify_all();
    }

    /// Assembles one [`MetricsSnapshot`] from the live counters, allocating the
    /// next snapshot sequence number. Each queue's lock is taken briefly and
    /// independently, so the snapshot is a consistent-enough observation without
    /// ever stalling the submit or dispatch paths behind a global freeze.
    pub(crate) fn build_snapshot(&self) -> MetricsSnapshot {
        let (seq, uptime_seconds) = self.telemetry.next_seq();
        let ready_tasks = self.sched.lock().ready.len() as u64;
        let mut queued_by_class = [0u64; PRIORITY_CLASSES];
        for entry in self.intake.lock().heap.iter() {
            queued_by_class[crate::telemetry::priority_class(entry.0.priority)] += 1;
        }
        let outstanding = self.admission.lock().outstanding as u64;
        let cache = self.cache.metrics();
        MetricsSnapshot {
            seq,
            uptime_seconds,
            workers: self.workers as u64,
            busy_workers: self.telemetry.busy_workers(),
            queued_by_class,
            outstanding,
            ready_tasks,
            submissions: self.submissions.load(Ordering::Relaxed),
            completed: self.completed_submissions.load(Ordering::Relaxed),
            shed: self.shed_submissions.load(Ordering::Relaxed),
            rejected: self.rejected_submissions.load(Ordering::Relaxed),
            canceled: self.canceled_submissions.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_insertions: cache.insertions,
            cache_evictions: cache.evictions,
            cache_entries: vqc_core::PulseCache::num_blocks(&*self.cache) as u64,
            unique_compilations: self.compilations.load(Ordering::Relaxed),
            coalesced_waits: self.coalesced.load(Ordering::Relaxed),
            trace_dropped: self.telemetry.trace_dropped(),
            warm_start: vqc_core::PulseCache::warm_start_stats(&*self.cache),
            seed_entries: self.cache.num_seeds() as u64,
            phases: self.telemetry.phase_metrics(),
            jacobi_sweeps: self.telemetry.jacobi_sweeps(),
            classes: self.telemetry.class_latencies(),
        }
    }

    /// Applies `update` to the client's metrics slice (no-op for anonymous
    /// submissions).
    fn record_client(&self, client: Option<u64>, update: impl FnOnce(&mut ClientMetrics)) {
        if let Some(client) = client {
            update(self.client_metrics.lock().entry(client).or_default());
        }
    }

    /// The client's current metrics slice (zeroes for an unseen client id).
    pub(crate) fn client_metrics(&self, client: u64) -> ClientMetrics {
        self.client_metrics
            .lock()
            .get(&client)
            .copied()
            .unwrap_or_default()
    }

    /// Drops a client id's metrics slice and fair-share clock. Transports call
    /// this when a connection closes and its id will never submit again, so a
    /// long-lived service does not grow state per short-lived client. A
    /// straggling fan-out delivery may recreate a (near-empty) slice; that is
    /// benign and the next release reaps it.
    pub(crate) fn release_client(&self, client: u64) {
        self.client_metrics.lock().remove(&client);
        self.sched.lock().clients.remove(&client);
    }

    /// Every client id seen so far with its metrics slice, sorted by id.
    pub(crate) fn client_metrics_snapshot(&self) -> Vec<(u64, ClientMetrics)> {
        let mut all: Vec<(u64, ClientMetrics)> = self
            .client_metrics
            .lock()
            .iter()
            .map(|(id, metrics)| (*id, *metrics))
            .collect();
        all.sort_by_key(|(id, _)| *id);
        all
    }

    fn release_admission(&self) {
        {
            let mut admission = self.admission.lock();
            admission.outstanding = admission.outstanding.saturating_sub(1);
        }
        self.admitted.notify_all();
    }

    /// Expands one admitted submission into block tasks (the scheduler layer).
    fn expand(self: &Arc<Self>, state: Arc<SubmissionState>) {
        // Shed while waiting in the accept channel: nothing to do. The transition
        // to `Running` is deliberately NOT made here — it is published together
        // with the task enqueue at the end, so `Running` always means "every block
        // task this submission will ever have is in the ready queue". (The accept
        // loop is the only expander, so there is no claim to take.)
        if state.inner.lock().status != JobStatus::Queued {
            return;
        }

        // Plan every job. Planning is the expensive prefix (transpile passes and
        // blocking); it runs here on the scheduler thread, off the submit path and
        // outside every lock.
        /// One planned job: its shared plan (absent on error), its parameter
        /// binding, and its planning error if any.
        type PlannedJob = (
            Option<Arc<CompilationPlan>>,
            Arc<Vec<f64>>,
            Option<CompileError>,
        );
        let planned: Vec<PlannedJob> = match &state.kind {
            SubmissionKind::Batch(jobs) => jobs
                .iter()
                .map(
                    |job| match self.compiler.plan(&job.circuit, &job.params, job.strategy) {
                        Ok(plan) => (Some(Arc::new(plan)), Arc::new(job.params.clone()), None),
                        Err(error) => (None, Arc::new(job.params.clone()), Some(error)),
                    },
                )
                .collect(),
            SubmissionKind::Iterations {
                circuit,
                parameter_sets,
                strategy,
            } => {
                let required = circuit
                    .parameter_indices()
                    .into_iter()
                    .max()
                    .map(|m| m + 1)
                    .unwrap_or(0);
                // Planning only consults params for the length check, which is
                // re-done per binding below; zeros of the required length stand in.
                let shared = self
                    .compiler
                    .plan(circuit, &vec![0.0; required], *strategy)
                    .map(Arc::new);
                parameter_sets
                    .iter()
                    .map(|params| {
                        let params = Arc::new(params.clone());
                        match &shared {
                            Err(error) => (None, params, Some(error.clone())),
                            Ok(_) if params.len() < required => (
                                None,
                                Arc::clone(&params),
                                Some(CompileError::MissingParameters {
                                    supplied: params.len(),
                                    required,
                                }),
                            ),
                            Ok(plan) => (Some(Arc::clone(plan)), params, None),
                        }
                    })
                    .collect()
            }
        };

        // Estimate block costs before taking the scheduler lock (each estimate may
        // walk the block's subcircuit). Estimates are memoized per (plan, block):
        // every binding of an iterations submission shares one estimate.
        let lpt = self.schedule == SchedulePolicy::Lpt;
        let mut memo: HashMap<(usize, usize), f64> = HashMap::new();
        struct PlannedTask {
            job: usize,
            block: usize,
            key: Option<BlockKey>,
            cost: f64,
        }
        let mut tasks: Vec<PlannedTask> = Vec::new();
        for (job_index, (plan, params, error)) in planned.iter().enumerate() {
            if error.is_some() {
                continue;
            }
            // audit:allow(unwrap): error jobs are filtered out on the line above
            let plan = plan.as_ref().expect("non-error jobs have plans");
            for block_index in 0..plan.blocks.len() {
                let block = &plan.blocks[block_index];
                let key = plan.dedup_key(block, params);
                let cost = if lpt {
                    let memo_key = (Arc::as_ptr(plan) as usize, block_index);
                    *memo.entry(memo_key).or_insert_with(|| {
                        self.compiler
                            .estimate_block_cost_seconds(plan, block, params)
                    })
                } else {
                    0.0
                };
                tasks.push(PlannedTask {
                    job: job_index,
                    block: block_index,
                    key,
                    cost,
                });
            }
        }

        // Install the job slots (results skeleton).
        {
            let mut inner = state.inner.lock();
            inner.jobs = planned
                .iter()
                .map(|(plan, _, error)| {
                    let blocks = plan.as_ref().map(|p| p.blocks.len()).unwrap_or(0);
                    let mut slot = JobSlot {
                        plan: plan.clone(),
                        outcomes: (0..blocks).map(|_| None).collect(),
                        remaining: blocks,
                        result: error.clone().map(Err),
                    };
                    if slot.result.is_none() && blocks == 0 {
                        // Zero-block plans (the gate-based strategy) need no pulse
                        // work: assemble immediately.
                        // audit:allow(unwrap): waiters register only against planned jobs
                        let plan = slot.plan.as_ref().expect("planned");
                        slot.result = Some(Ok(self.compiler.assemble(plan, Vec::new())));
                    }
                    slot
                })
                .collect();
            inner.jobs_remaining = inner
                .jobs
                .iter()
                .filter(|slot| slot.result.is_none())
                .count();
            // Jobs resolved at planning time (errors, zero-block assembles) open
            // the completion stream before any block task runs.
            inner.completed_order = inner
                .jobs
                .iter()
                .enumerate()
                .filter(|(_, slot)| slot.result.is_some())
                .map(|(index, _)| index)
                .collect();
        }

        // Merge the tasks into the shared ready queue under one scheduler lock:
        // cross-request dedup registers waiters instead of duplicate tasks, and the
        // whole submission receives one fair-share virtual start stamp. `Running`
        // is published inside the same critical section, so a submission observed
        // as Running by anyone already has every task it will ever have in the
        // queue — there is no window where it looks started but is undispatched.
        {
            let mut sched = self.sched.lock();
            {
                let mut inner = state.inner.lock();
                if inner.status != JobStatus::Queued {
                    // Load-shed or canceled while this expansion was planning:
                    // discard the tasks before anything becomes visible to the
                    // workers.
                    return;
                }
                inner.status = JobStatus::Running;
            }
            let queue_wait = state.admitted_at.elapsed().as_secs_f64();
            self.record_client(state.client, |m| {
                m.queue_seconds += queue_wait;
            });
            self.telemetry.record_queue_wait(state.priority, queue_wait);
            let vstart = match state.client {
                Some(client) => sched
                    .clients
                    .get(&client)
                    .copied()
                    .unwrap_or(sched.vclock)
                    .max(sched.vclock),
                None => sched.vclock,
            };
            let mut charged = 0.0;
            for task in tasks {
                let (plan, params, _) = &planned[task.job];
                let body = TaskBody {
                    submission: Arc::clone(&state),
                    job: task.job,
                    block: task.block,
                    // audit:allow(unwrap): tasks are created during plan expansion, after the plan is set
                    plan: Arc::clone(plan.as_ref().expect("tasks come from planned jobs")),
                    params: Arc::clone(params),
                    key: task.key.clone(),
                    cost: task.cost,
                };
                if let Some(key) = &task.key {
                    // Another request already owns this block's task: register as a
                    // waiter, and inherit priority upward if we outrank the owner
                    // so shared work is never scheduled late.
                    let repost = if let Some(interest) = sched.pending.get_mut(key) {
                        interest.waiters.push(Waiter {
                            submission: Arc::clone(&state),
                            job: task.job,
                            block: task.block,
                            plan: Arc::clone(&body.plan),
                            params: Arc::clone(&body.params),
                        });
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        self.record_client(state.client, |m| m.coalesced_waits += 1);
                        if !interest.taken && state.priority > interest.priority {
                            interest.priority = state.priority;
                            Some((interest.template.clone(), interest.generation))
                        } else {
                            None
                        }
                    } else {
                        let generation = sched.next_generation;
                        sched.next_generation += 1;
                        sched.pending.insert(
                            key.clone(),
                            KeyInterest {
                                generation,
                                taken: false,
                                priority: state.priority,
                                template: body.clone(),
                                waiters: Vec::new(),
                            },
                        );
                        charged += task.cost;
                        let seq = sched.next_task_seq;
                        sched.next_task_seq += 1;
                        sched.ready.push(ReadyTask {
                            priority: state.priority,
                            vstart,
                            seq,
                            generation,
                            body,
                        });
                        continue;
                    };
                    if let Some((template, generation)) = repost {
                        let seq = sched.next_task_seq;
                        sched.next_task_seq += 1;
                        sched.ready.push(ReadyTask {
                            priority: state.priority,
                            vstart,
                            seq,
                            generation,
                            body: template,
                        });
                    }
                    continue;
                }
                charged += task.cost;
                let seq = sched.next_task_seq;
                sched.next_task_seq += 1;
                sched.ready.push(ReadyTask {
                    priority: state.priority,
                    vstart,
                    seq,
                    generation: 0,
                    body,
                });
            }
            if let Some(client) = state.client {
                sched
                    .clients
                    .insert(client, vstart + charged / state.weight);
            }
        }
        self.work.notify_all();
        // Wake status observers ([`JobHandle::wait_started`]) and completion
        // streamers ([`JobHandle::wait_job`] of already-resolved jobs).
        state.done.notify_all();

        // A submission whose every job already has a result (all planning errors,
        // or all gate-based) completes without touching the worker pool.
        self.try_complete(&state);
    }

    /// Delivers one block outcome to a job, assembling the job's report when it was
    /// the last missing block.
    fn deliver(
        &self,
        submission: &Arc<SubmissionState>,
        job: usize,
        block: usize,
        outcome: Result<BlockOutcome, CompileError>,
    ) {
        let mut job_done = false;
        {
            let mut inner = submission.inner.lock();
            if inner.status != JobStatus::Running {
                return;
            }
            let resolved = {
                let slot = &mut inner.jobs[job];
                if slot.result.is_some() {
                    // The job already failed on another block; this outcome only
                    // contributed to the shared cache.
                    false
                } else {
                    match outcome {
                        Err(error) => {
                            slot.result = Some(Err(error));
                            true
                        }
                        Ok(outcome) => {
                            debug_assert!(slot.outcomes[block].is_none());
                            slot.outcomes[block] = Some(outcome);
                            slot.remaining -= 1;
                            slot.remaining == 0
                        }
                    }
                }
            };
            if resolved {
                let slot = &mut inner.jobs[job];
                if slot.result.is_none() {
                    // audit:allow(unwrap): jobs complete only after their plan was recorded
                    let plan = slot.plan.clone().expect("completed jobs have plans");
                    let outcomes = slot
                        .outcomes
                        .iter_mut()
                        // audit:allow(unwrap): blocks_remaining == 0 means every outcome slot was filled
                        .map(|outcome| outcome.take().expect("job completed all blocks"))
                        .collect();
                    slot.result = Some(Ok(self.compiler.assemble(&plan, outcomes)));
                }
                inner.completed_order.push(job);
                inner.jobs_remaining -= 1;
                job_done = true;
            }
        }
        if job_done {
            self.telemetry.trace(
                TraceStage::JobDone,
                submission.id,
                submission.client,
                job as u64,
            );
        }
        // Every job completion is an event: wake per-job streamers even though the
        // submission as a whole may not be done yet.
        submission.done.notify_all();
        self.try_complete(submission);
    }

    /// Runs one block task and fans its result out to every waiting job.
    fn execute(&self, body: TaskBody) {
        self.telemetry.trace(
            TraceStage::CompileStart,
            body.submission.id,
            body.submission.client,
            body.block as u64,
        );
        let compile_started_micros = self.telemetry.now_micros();
        let outcome = self.compiler.compile_block_outcome(
            &body.plan,
            &body.plan.blocks[body.block],
            &body.params,
        );
        // Count every compilation that actually ran GRAPE / tuning. Keyless blocks
        // (single-gate lookups, gate-based plans) do no pulse-level work even
        // though they report `cached: false`.
        if let Ok(outcome) = &outcome {
            let resolution = if outcome.report.cached {
                TraceStage::CacheHit
            } else {
                TraceStage::Compiled
            };
            self.telemetry.trace(
                resolution,
                body.submission.id,
                body.submission.client,
                body.block as u64,
            );
            if body.key.is_some() {
                if outcome.report.cached {
                    self.record_client(body.submission.client, |m| m.cache_hits += 1);
                } else {
                    self.compilations.fetch_add(1, Ordering::Relaxed);
                    self.record_client(body.submission.client, |m| m.compilations += 1);
                }
            }
            // With the compile-phase profiler armed (`VQC_PROFILE=1`), the
            // block's per-phase breakdown lands in the phase histograms and as
            // nested child spans under this block's compile span.
            if !outcome.report.profile.is_empty() {
                self.telemetry.record_compile_profile(
                    body.submission.id,
                    body.submission.client,
                    compile_started_micros,
                    &outcome.report.profile,
                    outcome.report.measured_seconds,
                );
            }
        }
        // Take the waiter list; the dedup entry disappears with it, so later
        // requests for this key become fresh tasks (and hit the cache).
        let waiters = match &body.key {
            Some(key) => self
                .sched
                .lock()
                .pending
                .remove(key)
                .map(|interest| interest.waiters)
                .unwrap_or_default(),
            None => Vec::new(),
        };
        self.deliver(&body.submission, body.job, body.block, outcome.clone());
        for waiter in waiters {
            let shared = match &outcome {
                // The leader populated the cache, so this is a lookup in the
                // success case — and an honest (counted) recompile if a bounded
                // cache already evicted the entry.
                Ok(_) => {
                    let outcome = self.compiler.compile_block_outcome(
                        &waiter.plan,
                        &waiter.plan.blocks[waiter.block],
                        &waiter.params,
                    );
                    if let Ok(outcome) = &outcome {
                        if outcome.report.cached {
                            self.record_client(waiter.submission.client, |m| m.cache_hits += 1);
                        } else {
                            self.compilations.fetch_add(1, Ordering::Relaxed);
                            self.record_client(waiter.submission.client, |m| m.compilations += 1);
                        }
                    }
                    outcome
                }
                // Block errors are deterministic per circuit; recompiling for each
                // waiter would fail identically.
                Err(error) => Err(error.clone()),
            };
            self.deliver(&waiter.submission, waiter.job, waiter.block, shared);
        }
    }

    /// The worker loop: pop the best ready task, skip stale priority-inheritance
    /// duplicates, execute, repeat; park when idle, exit on shutdown.
    fn worker_loop(self: Arc<Self>) {
        loop {
            let task = {
                let mut sched = self.sched.lock();
                loop {
                    let draining = self.shutdown.load(Ordering::SeqCst);
                    if !sched.paused || draining {
                        if let Some(task) = sched.ready.pop() {
                            // A shed or canceled owner no longer needs its work.
                            let owner_dead = matches!(
                                task.body.submission.inner.lock().status,
                                JobStatus::Shed | JobStatus::Canceled
                            );
                            if let Some(key) = &task.body.key {
                                match sched.pending.get_mut(key) {
                                    // The interest this task was posted for is
                                    // live and undispatched: take it.
                                    Some(interest)
                                        if interest.generation == task.generation
                                            && !interest.taken =>
                                    {
                                        // Prune waiters whose submissions died
                                        // since they registered, so a canceled
                                        // waiter cannot keep a dead owner's task
                                        // alive (task GC).
                                        interest.waiters.retain(|waiter| {
                                            !matches!(
                                                waiter.submission.inner.lock().status,
                                                JobStatus::Shed | JobStatus::Canceled
                                            )
                                        });
                                        if owner_dead && interest.waiters.is_empty() {
                                            // The owning submission was shed or
                                            // canceled and nobody else wants the
                                            // block: drop the work.
                                            sched.pending.remove(key);
                                            continue;
                                        }
                                        // Either a live owner or live waiters: the
                                        // block compiles (a dead owner's delivery
                                        // is a no-op).
                                        interest.taken = true;
                                    }
                                    // Already dispatched (a higher-priority
                                    // re-post beat us), completed (entry gone),
                                    // or superseded (a *later* interest in the
                                    // same key now owns the entry — this task
                                    // must not hijack or drop it): stale, skip.
                                    _ => continue,
                                }
                            } else if owner_dead {
                                continue;
                            }
                            sched.vclock = sched.vclock.max(task.vstart);
                            let seq = self.dispatch_seq.fetch_add(1, Ordering::SeqCst);
                            task.body.submission.inner.lock().dispatched.push(seq);
                            self.record_client(task.body.submission.client, |m| {
                                m.dispatched_tasks += 1;
                            });
                            self.telemetry.trace(
                                TraceStage::Dispatched,
                                task.body.submission.id,
                                task.body.submission.client,
                                seq,
                            );
                            break Some(task);
                        }
                    }
                    if draining && sched.scheduler_done && sched.ready.is_empty() {
                        break None;
                    }
                    self.work.wait(&mut sched);
                }
            };
            match task {
                Some(task) => {
                    self.telemetry.worker_busy();
                    self.execute(task.body);
                    self.telemetry.worker_idle();
                }
                None => return,
            }
        }
    }

    /// The accept loop: drain admitted submissions from the intake heap —
    /// highest priority first, admission order within a class — and expand each
    /// into scheduled tasks. Because the heap (not arrival order) chooses what to
    /// plan next, a huge low-priority submission cannot delay a later
    /// high-priority submission's expansion by more than one in-progress plan.
    fn accept_loop(self: Arc<Self>) {
        loop {
            let state = {
                let mut intake = self.intake.lock();
                loop {
                    if intake.closed {
                        // Shutdown drains buffered admissions (paused or not) so
                        // outstanding handles still resolve.
                        break intake.heap.pop().map(|entry| entry.0);
                    }
                    if !intake.paused {
                        if let Some(entry) = intake.heap.pop() {
                            break Some(entry.0);
                        }
                    }
                    self.intake_cv.wait(&mut intake);
                }
            };
            match state {
                Some(state) => self.expand(state),
                None => break,
            }
        }
        self.sched.lock().scheduler_done = true;
        self.work.notify_all();
    }
}

/// The telemetry aggregator loop: every `interval`, assemble a snapshot,
/// publish it to watch subscribers, and append it to the dump file. The stop
/// signal is raised only after the worker pool has drained, so the final
/// snapshot each subscriber receives reflects the drained state; subscribers
/// are disconnected after it.
fn aggregator_loop(
    core: Arc<ServiceCore>,
    interval: std::time::Duration,
    dump_path: Option<std::path::PathBuf>,
    stop: Arc<(Mutex<bool>, Condvar)>,
) {
    use std::io::Write;
    let mut dump = dump_path.and_then(|path| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .ok()
    });
    loop {
        let stopped = {
            let (flag, cv) = &*stop;
            let mut guard = flag.lock();
            if *guard {
                true
            } else {
                cv.wait_timeout(&mut guard, interval);
                *guard
            }
        };
        let snapshot = core.build_snapshot();
        core.telemetry.publish(&snapshot);
        if let Some(file) = dump.as_mut() {
            let _ = writeln!(file, "{}", snapshot.to_json_line());
        }
        if stopped {
            core.telemetry.close_subscribers();
            return;
        }
    }
}

/// The running service: core state plus its accept-loop, worker, and telemetry
/// aggregator threads.
#[derive(Debug)]
pub(crate) struct CompileService {
    pub(crate) core: Arc<ServiceCore>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
    aggregator_thread: Option<std::thread::JoinHandle<()>>,
    /// Tells the aggregator to emit one final snapshot and exit; raised only
    /// after the worker pool has been joined, so that snapshot is post-drain.
    aggregator_stop: Arc<(Mutex<bool>, Condvar)>,
    pub(crate) workers: usize,
}

impl CompileService {
    pub(crate) fn start(
        compiler: PartialCompiler,
        cache: Arc<ShardedPulseCache>,
        workers: usize,
        schedule: SchedulePolicy,
        service_options: ServiceOptions,
        telemetry_options: TelemetryOptions,
    ) -> Self {
        let workers = workers.max(1);
        let core = Arc::new(ServiceCore {
            compiler,
            cache,
            schedule,
            queue_depth: service_options.queue_depth.max(1),
            backpressure: service_options.backpressure,
            sched: Mutex::new(SchedState {
                ready: BinaryHeap::new(),
                pending: HashMap::new(),
                clients: HashMap::new(),
                vclock: 0.0,
                paused: false,
                scheduler_done: false,
                next_task_seq: 0,
                next_generation: 1,
            }),
            work: Condvar::new(),
            intake: Mutex::new(IntakeState {
                heap: BinaryHeap::new(),
                paused: false,
                closed: false,
            }),
            intake_cv: Condvar::new(),
            admission: Mutex::new(Admission::default()),
            admitted: Condvar::new(),
            shutdown: AtomicBool::new(false),
            compilations: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            submissions: AtomicU64::new(0),
            completed_submissions: AtomicU64::new(0),
            shed_submissions: AtomicU64::new(0),
            rejected_submissions: AtomicU64::new(0),
            canceled_submissions: AtomicU64::new(0),
            client_metrics: Mutex::new(HashMap::new()),
            next_submission_id: AtomicU64::new(0),
            dispatch_seq: AtomicU64::new(0),
            workers,
            telemetry: Arc::new(Telemetry::new(&telemetry_options)),
        });
        if lock_check::enabled() {
            // Route long-hold reports from the lock checker into the trace
            // ring. The hook is process-global (last runtime wins), so it
            // holds only a weak reference and goes quiet once this service's
            // telemetry is dropped.
            let telemetry = Arc::downgrade(&core.telemetry);
            lock_check::set_long_hold_reporter(Some(Arc::new(move |event| {
                if let Some(telemetry) = telemetry.upgrade() {
                    telemetry.trace_lock_hold(event.held.as_millis() as u64);
                }
            })));
        }
        let accept_core = Arc::clone(&core);
        let accept_thread = spawn_named("vqc-accept", move || accept_core.accept_loop());
        let worker_threads = (0..workers)
            .map(|index| {
                let worker_core = Arc::clone(&core);
                spawn_named(&format!("vqc-worker-{index}"), move || {
                    worker_core.worker_loop()
                })
            })
            .collect();
        let aggregator_stop = Arc::new((Mutex::new(false), Condvar::new()));
        let aggregator_thread = telemetry_options.enabled.then(|| {
            let aggregator_core = Arc::clone(&core);
            let stop = Arc::clone(&aggregator_stop);
            let interval = telemetry_options.interval;
            let dump_path = telemetry_options.dump_path.clone();
            spawn_named("vqc-aggregator", move || {
                aggregator_loop(aggregator_core, interval, dump_path, stop)
            })
        });
        CompileService {
            core,
            accept_thread: Some(accept_thread),
            worker_threads,
            aggregator_thread,
            aggregator_stop,
            workers,
        }
    }

    /// Admits a submission under the given backpressure mode. `sheddable` marks
    /// whether a later [`Backpressure::Shed`] submit may drop it while queued.
    pub(crate) fn submit_with(
        &self,
        submission: Submission,
        mode: Backpressure,
        sheddable: bool,
    ) -> Result<JobHandle, SubmitError> {
        let core = &self.core;
        if core.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let id = core.next_submission_id.fetch_add(1, Ordering::Relaxed);
        let trace_id = submission.trace.unwrap_or(0);
        let state = Arc::new(SubmissionState {
            id,
            kind: submission.kind,
            priority: submission.priority,
            weight: submission.weight,
            client: submission.client,
            admitted_at: Instant::now(),
            inner: Mutex::new(SubmissionInner {
                status: JobStatus::Queued,
                finishing: false,
                jobs: Vec::new(),
                jobs_remaining: 0,
                completed_order: Vec::new(),
                dispatched: Vec::new(),
            }),
            done: Condvar::new(),
        });
        // The client's causal trace id rides in the event's detail, so a merged
        // client+server trace can correlate the two processes' spans.
        core.telemetry
            .trace(TraceStage::Submitted, id, state.client, trace_id);

        // A submission is sheddable (and worth keeping in the victim registry)
        // until its first block task dispatches or its completion begins; dispatch,
        // completion, and shed are all serialized by the submission's own lock, so
        // "started" is unambiguous.
        let is_sheddable = |s: &SubmissionState| {
            let inner = s.inner.lock();
            matches!(inner.status, JobStatus::Queued)
                || (matches!(inner.status, JobStatus::Running)
                    && inner.dispatched.is_empty()
                    && !inner.finishing)
        };
        {
            let mut admission = core.admission.lock();
            // Prune on every admission, whatever the mode: without this, the
            // registry would retain an Arc per completed submission for the
            // process lifetime under Block/Reject (which never scan it).
            admission.queued.retain(|s| is_sheddable(s));
            loop {
                if core.shutdown.load(Ordering::SeqCst) {
                    return Err(SubmitError::ShuttingDown);
                }
                if admission.outstanding < core.queue_depth {
                    break;
                }
                match mode {
                    Backpressure::Reject => {
                        core.rejected_submissions.fetch_add(1, Ordering::Relaxed);
                        return Err(SubmitError::QueueFull {
                            depth: core.queue_depth,
                        });
                    }
                    Backpressure::Block => {
                        core.admitted.wait(&mut admission);
                    }
                    Backpressure::Shed => {
                        // Prune entries that started or finished, then pick the
                        // lowest-priority victim (oldest on ties) strictly below us.
                        admission.queued.retain(|s| is_sheddable(s));
                        let victim_index = admission
                            .queued
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| s.priority < state.priority)
                            .min_by_key(|(_, s)| (s.priority, s.id))
                            .map(|(index, _)| index);
                        let Some(victim_index) = victim_index else {
                            core.shed_submissions.fetch_add(1, Ordering::Relaxed);
                            core.telemetry
                                .trace(TraceStage::Shed, state.id, state.client, 0);
                            return Err(SubmitError::Shed);
                        };
                        let victim = admission.queued.remove(victim_index);
                        let mut inner = victim.inner.lock();
                        // Re-check under the victim's lock: it may have started
                        // dispatching — or entered its completion window
                        // (`finishing`) — since the scan; shedding then would
                        // double-release its admission slot.
                        let still_sheddable = matches!(inner.status, JobStatus::Queued)
                            || (matches!(inner.status, JobStatus::Running)
                                && inner.dispatched.is_empty()
                                && !inner.finishing);
                        if still_sheddable {
                            let was_queued = matches!(inner.status, JobStatus::Queued);
                            inner.status = JobStatus::Shed;
                            drop(inner);
                            victim.done.notify_all();
                            admission.outstanding = admission.outstanding.saturating_sub(1);
                            core.shed_submissions.fetch_add(1, Ordering::Relaxed);
                            // Shed-while-Queued never reached `expand`: charge its
                            // queue time here (a Running victim was charged at its
                            // Running transition already).
                            let queue_wait =
                                was_queued.then(|| victim.admitted_at.elapsed().as_secs_f64());
                            core.record_client(victim.client, |m| {
                                m.shed += 1;
                                if let Some(wait) = queue_wait {
                                    m.queue_seconds += wait;
                                }
                            });
                            if let Some(wait) = queue_wait {
                                core.telemetry.record_queue_wait(victim.priority, wait);
                            }
                            core.telemetry
                                .trace(TraceStage::Shed, victim.id, victim.client, 0);
                        }
                        // Re-check the depth; the victim's slot is now free (or the
                        // victim raced into dispatch and we scan again).
                    }
                }
            }
            admission.outstanding += 1;
            // Membership in the victim registry is what makes a submission
            // sheddable; the synchronous wrappers stay out of it — a blocked
            // caller thread is already applying backpressure upstream.
            if sheddable {
                admission.queued.push(Arc::clone(&state));
            }
        }

        {
            let mut intake = core.intake.lock();
            if intake.closed {
                drop(intake);
                core.release_admission();
                return Err(SubmitError::ShuttingDown);
            }
            intake.heap.push(IntakeEntry(Arc::clone(&state)));
        }
        core.intake_cv.notify_all();
        core.submissions.fetch_add(1, Ordering::Relaxed);
        core.record_client(state.client, |m| m.submissions += 1);
        core.telemetry
            .trace(TraceStage::Admitted, state.id, state.client, 0);
        Ok(JobHandle {
            state,
            core: Arc::downgrade(core),
        })
    }

    /// Admits a submission under the service's configured backpressure policy.
    pub(crate) fn submit(&self, submission: Submission) -> Result<JobHandle, SubmitError> {
        self.submit_with(submission, self.core.backpressure, true)
    }

    /// Stops dispatching new block tasks (running ones finish).
    pub(crate) fn pause(&self) {
        self.core.sched.lock().paused = true;
    }

    /// Resumes dispatching.
    pub(crate) fn resume(&self) {
        self.core.sched.lock().paused = false;
        self.core.work.notify_all();
    }

    /// Stops the accept loop from expanding admitted submissions (they buffer in
    /// the intake heap).
    pub(crate) fn pause_intake(&self) {
        self.core.intake.lock().paused = true;
    }

    /// Resumes expansion of buffered submissions, best-priority first.
    pub(crate) fn resume_intake(&self) {
        self.core.intake.lock().paused = false;
        self.core.intake_cv.notify_all();
    }
}

impl Drop for CompileService {
    /// Shuts the service down: no new submissions are accepted, but everything
    /// already admitted is drained to completion before the threads exit, so
    /// outstanding [`JobHandle`]s still resolve.
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        // Closing the intake ends the accept loop once it has drained the heap.
        self.core.intake.lock().closed = true;
        self.core.intake_cv.notify_all();
        self.core.admitted.notify_all();
        self.core.work.notify_all();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // The accept loop marked itself done and woke the workers; they drain the
        // remaining ready tasks and exit.
        self.core.work.notify_all();
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
        // Workers are drained: stop the aggregator, which emits one final
        // snapshot reflecting the drained state before disconnecting
        // subscribers.
        {
            let (flag, cv) = &*self.aggregator_stop;
            *flag.lock() = true;
            cv.notify_all();
        }
        if let Some(handle) = self.aggregator_thread.take() {
            let _ = handle.join();
        }
        self.core.telemetry.close_subscribers();
    }
}
