//! The concurrent compilation runtime: a worker pool over a shared sharded cache.
//!
//! [`CompilationRuntime`] owns a [`PartialCompiler`] whose [`vqc_core::PulseCache`]
//! is a [`ShardedPulseCache`], and compiles the independent blocks of one or many
//! circuits on a pool of worker threads. Identical blocks are deduplicated at two
//! levels: completed work through the content-addressed cache, and concurrent work
//! through the [`InFlight`] table, so each unique [`vqc_core::BlockKey`] is
//! GRAPE-optimized at most once per process no matter how many circuits, parameter
//! bindings, or worker threads are involved.
//!
//! The batch API is the paper's cross-iteration reuse turned cross-request: a
//! variational optimizer (or many concurrent clients) submits whole iterations of
//! circuits, and every Fixed block compiled for any of them is reused by all.

use crate::cache::{CacheConfig, CacheMetrics, CompactionPolicy, ShardedPulseCache};
use crate::inflight::{InFlight, Ticket};
use crate::persist::{self, PersistError};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use vqc_circuit::Circuit;
use vqc_core::{
    BlockOutcome, CompilationPlan, CompilationReport, CompileError, CompilerOptions,
    PartialCompiler, Strategy,
};

/// In which order the worker pool drains a batch's flattened block-task list.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Longest-processing-time-first: tasks are sorted by estimated GRAPE cost
    /// (descending) before the pool drains them. The classic LPT bound keeps the
    /// makespan within 4/3 of optimal on heterogeneous plans, where submission order
    /// can strand one worker on a minutes-scale block while the rest sit idle.
    #[default]
    Lpt,
    /// Plan/submission order, as the seed runtime drained tasks. Kept for
    /// benchmarking the scheduling win and for bit-faithful replay of old runs.
    Unsorted,
}

/// Configuration of a [`CompilationRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// Number of worker threads block compilation may use (minimum 1).
    pub workers: usize,
    /// Configuration of the shared sharded cache.
    pub cache: CacheConfig,
    /// Order in which the worker pool drains block tasks.
    pub schedule: SchedulePolicy,
}

impl Default for RuntimeOptions {
    /// Defaults to one worker per available core (capped at 8); the `VQC_WORKERS`
    /// environment variable overrides the worker count (garbage values are ignored,
    /// `0` clamps to 1).
    fn default() -> Self {
        let workers = std::env::var("VQC_WORKERS")
            .ok()
            .and_then(|raw| raw.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
                    .min(8)
            });
        RuntimeOptions {
            workers: workers.max(1),
            cache: CacheConfig::default(),
            schedule: SchedulePolicy::default(),
        }
    }
}

impl RuntimeOptions {
    /// Options with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        RuntimeOptions {
            workers: workers.max(1),
            ..RuntimeOptions::default()
        }
    }

    /// Replaces the schedule policy.
    pub fn with_schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }
}

/// One compilation request of a batch: a circuit at a parameter binding under a
/// strategy.
#[derive(Debug, Clone)]
pub struct CompileJob {
    /// The (possibly parameterized) circuit to compile.
    pub circuit: Circuit,
    /// Parameter binding for this request.
    pub params: Vec<f64>,
    /// Compilation strategy.
    pub strategy: Strategy,
}

impl CompileJob {
    /// Convenience constructor.
    pub fn new(circuit: Circuit, params: impl Into<Vec<f64>>, strategy: Strategy) -> Self {
        CompileJob {
            circuit,
            params: params.into(),
            strategy,
        }
    }
}

/// Counters describing what a runtime has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RuntimeMetrics {
    /// Shared-cache counters (hits/misses/insertions/evictions).
    pub cache: CacheMetrics,
    /// Block compilations whose pulse-level work this runtime actually performed —
    /// any path (led flight *or* a follower whose leader failed or whose entry was
    /// already evicted) that missed the cache and ran GRAPE / tuning. Cache hits and
    /// cleanly coalesced followers do not count.
    pub unique_compilations: u64,
    /// Block compilations coalesced onto an in-flight leader.
    pub coalesced_waits: u64,
    /// Worker threads the runtime schedules onto.
    pub workers: usize,
}

/// Per-plan result slots a worker pool fills in as block tasks complete.
type OutcomeSlots = Mutex<Vec<Option<Result<BlockOutcome, CompileError>>>>;

/// The concurrent compilation runtime.
#[derive(Debug)]
pub struct CompilationRuntime {
    compiler: PartialCompiler,
    cache: Arc<ShardedPulseCache>,
    inflight: InFlight,
    workers: usize,
    schedule: SchedulePolicy,
    compilations: AtomicU64,
}

impl CompilationRuntime {
    /// Creates a runtime with a fresh empty cache.
    pub fn new(options: CompilerOptions, runtime_options: RuntimeOptions) -> Self {
        let cache = Arc::new(ShardedPulseCache::new(runtime_options.cache));
        CompilationRuntime {
            compiler: PartialCompiler::with_cache(options, Arc::<ShardedPulseCache>::clone(&cache)),
            cache,
            inflight: InFlight::new(),
            workers: runtime_options.workers.max(1),
            schedule: runtime_options.schedule,
            compilations: AtomicU64::new(0),
        }
    }

    /// Creates a runtime warm-started from a cache snapshot on disk.
    ///
    /// # Errors
    ///
    /// Fails if the snapshot cannot be read or does not parse.
    pub fn with_warm_start(
        options: CompilerOptions,
        runtime_options: RuntimeOptions,
        snapshot_path: impl AsRef<Path>,
    ) -> Result<Self, PersistError> {
        let runtime = CompilationRuntime::new(options, runtime_options);
        runtime.cache.absorb(persist::load_snapshot(snapshot_path)?);
        Ok(runtime)
    }

    /// The underlying compiler (shared cache included).
    pub fn compiler(&self) -> &PartialCompiler {
        &self.compiler
    }

    /// The shared sharded cache.
    pub fn cache(&self) -> &ShardedPulseCache {
        &self.cache
    }

    /// Number of worker threads used for block compilation.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Current runtime counters.
    pub fn metrics(&self) -> RuntimeMetrics {
        RuntimeMetrics {
            cache: self.cache.metrics(),
            unique_compilations: self.compilations.load(Ordering::Relaxed),
            coalesced_waits: self.inflight.coalesced(),
            workers: self.workers,
        }
    }

    /// Writes the cache contents to disk for a later warm start.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        self.save_snapshot_compacted(path, &CompactionPolicy::default())
    }

    /// Writes the cache contents to disk, compacted: entries below the policy's cost
    /// floor or beyond its size budget are dropped at save time (the costliest
    /// entries survive), so a long-lived process does not grow its snapshot file with
    /// entries that are cheaper to recompute than to carry.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn save_snapshot_compacted(
        &self,
        path: impl AsRef<Path>,
        policy: &CompactionPolicy,
    ) -> Result<(), PersistError> {
        let mut snapshot = self.cache.snapshot();
        snapshot.compact(policy);
        persist::save_snapshot(path, &snapshot)
    }

    /// Compiles one circuit, running its independent blocks on the worker pool.
    ///
    /// Produces the same [`CompilationReport`] as [`PartialCompiler::compile`]
    /// (block order, durations, and latency accounting included); only the wall-clock
    /// schedule differs.
    ///
    /// # Errors
    ///
    /// Propagates planning and block-compilation errors.
    pub fn compile(
        &self,
        circuit: &Circuit,
        params: &[f64],
        strategy: Strategy,
    ) -> Result<CompilationReport, CompileError> {
        let plan = self.compiler.plan(circuit, params, strategy)?;
        let outcomes = self
            .compile_blocks(&[(&plan, params)])?
            .pop()
            .expect("one plan in, one out");
        Ok(self.compiler.assemble(&plan, outcomes))
    }

    /// Compiles a batch of jobs against the shared cache.
    ///
    /// All blocks of all jobs form one task pool, so the worker threads stay busy
    /// across job boundaries and identical blocks appearing in different jobs (the
    /// common case across variational iterations) are compiled once. Each job's
    /// result is reported independently: one failing job does not poison the rest.
    pub fn compile_batch(
        &self,
        jobs: &[CompileJob],
    ) -> Vec<Result<CompilationReport, CompileError>> {
        let plans: Vec<Result<CompilationPlan, CompileError>> = jobs
            .iter()
            .map(|job| self.compiler.plan(&job.circuit, &job.params, job.strategy))
            .collect();

        let planned: Vec<(&CompilationPlan, &[f64])> = plans
            .iter()
            .zip(jobs)
            .filter_map(|(plan, job)| plan.as_ref().ok().map(|p| (p, job.params.as_slice())))
            .collect();
        let mut compiled = match self.compile_blocks(&planned) {
            Ok(outcomes) => outcomes.into_iter(),
            Err(error) => {
                // A block failure fails every job that was scheduled with it; per-job
                // attribution is not worth tracking because block errors are
                // deterministic per circuit and re-submitting individually recovers.
                return plans
                    .into_iter()
                    .map(|plan| plan.and(Err(error.clone())))
                    .collect();
            }
        };

        plans
            .into_iter()
            .map(|plan| {
                plan.map(|plan| {
                    let outcomes = compiled.next().expect("one outcome set per planned job");
                    self.compiler.assemble(&plan, outcomes)
                })
            })
            .collect()
    }

    /// Compiles one circuit at many parameter bindings (a sequence of variational
    /// iterations) under one strategy — the paper's central workload.
    ///
    /// The circuit is prepared and blocked once; the resulting plan is shared by all
    /// bindings (blocking is structural and does not depend on parameter values), so
    /// N iterations pay one transpiler pass rather than N.
    pub fn compile_iterations(
        &self,
        circuit: &Circuit,
        parameter_sets: &[Vec<f64>],
        strategy: Strategy,
    ) -> Vec<Result<CompilationReport, CompileError>> {
        let required = circuit
            .parameter_indices()
            .into_iter()
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        // Planning only consults params for the length check, which is re-done per
        // binding below; a zero vector of the required length stands in here.
        let plan = match self.compiler.plan(circuit, &vec![0.0; required], strategy) {
            Ok(plan) => plan,
            Err(error) => return parameter_sets.iter().map(|_| Err(error.clone())).collect(),
        };

        let valid: Vec<(&CompilationPlan, &[f64])> = parameter_sets
            .iter()
            .filter(|params| params.len() >= required)
            .map(|params| (&plan, params.as_slice()))
            .collect();
        let mut compiled = match self.compile_blocks(&valid) {
            Ok(outcomes) => outcomes.into_iter(),
            Err(error) => {
                return parameter_sets
                    .iter()
                    .map(|params| {
                        if params.len() < required {
                            Err(CompileError::MissingParameters {
                                supplied: params.len(),
                                required,
                            })
                        } else {
                            Err(error.clone())
                        }
                    })
                    .collect();
            }
        };

        parameter_sets
            .iter()
            .map(|params| {
                if params.len() < required {
                    Err(CompileError::MissingParameters {
                        supplied: params.len(),
                        required,
                    })
                } else {
                    let outcomes = compiled.next().expect("one outcome set per valid binding");
                    Ok(self.compiler.assemble(&plan, outcomes))
                }
            })
            .collect()
    }

    /// Runs every block of every plan on the worker pool; returns per-plan outcome
    /// vectors in plan order, or the first error encountered.
    fn compile_blocks(
        &self,
        plans: &[(&CompilationPlan, &[f64])],
    ) -> Result<Vec<Vec<BlockOutcome>>, CompileError> {
        // Flatten all blocks into one task list so workers drain jobs collectively.
        let mut tasks: Vec<(usize, usize)> = plans
            .iter()
            .enumerate()
            .flat_map(|(plan_index, (plan, _))| {
                (0..plan.blocks.len()).map(move |block_index| (plan_index, block_index))
            })
            .collect();
        if self.schedule == SchedulePolicy::Lpt && tasks.len() > 1 {
            // Longest-processing-time-first: start the most expensive GRAPE blocks
            // before the cheap ones so no worker is left finishing a minutes-scale
            // block alone after its peers drained the rest. Costs are estimates
            // (width, search window, iteration budget), which is all LPT needs; the
            // sort is stable so equal-cost tasks keep plan order, and the result
            // slots below make outcome order independent of execution order.
            //
            // Estimates are memoized per (plan, block), so every parameter binding
            // of one plan (the `compile_iterations` workload) shares one estimate
            // instead of paying a per-binding circuit walk before any worker
            // starts. That sharing is sound for both estimator paths: the model
            // fallback depends only on gate structure (durations never depend on
            // θ), and an *observed* cost recorded for one θ binding of a block is
            // a better processing-time proxy for its sibling bindings than the
            // paper-scale model — different bindings of the same block do
            // structurally identical GRAPE work.
            let mut memo: std::collections::HashMap<(usize, usize), f64> =
                std::collections::HashMap::new();
            let mut costs: Vec<f64> = Vec::with_capacity(tasks.len());
            for &(plan_index, block_index) in &tasks {
                let (plan, params) = plans[plan_index];
                let plan_addr = std::ptr::from_ref(plan) as usize;
                let cost = *memo.entry((plan_addr, block_index)).or_insert_with(|| {
                    self.compiler.estimate_block_cost_seconds(
                        plan,
                        &plan.blocks[block_index],
                        params,
                    )
                });
                costs.push(cost);
            }
            let mut order: Vec<usize> = (0..tasks.len()).collect();
            order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]));
            tasks = order.into_iter().map(|index| tasks[index]).collect();
        }

        let slots: Vec<OutcomeSlots> = plans
            .iter()
            .map(|(plan, _)| Mutex::new((0..plan.blocks.len()).map(|_| None).collect()))
            .collect();
        let next_task = AtomicUsize::new(0);
        let worker_count = self.workers.min(tasks.len().max(1));

        std::thread::scope(|scope| {
            for _ in 0..worker_count {
                scope.spawn(|| loop {
                    let index = next_task.fetch_add(1, Ordering::Relaxed);
                    let Some(&(plan_index, block_index)) = tasks.get(index) else {
                        break;
                    };
                    let (plan, params) = plans[plan_index];
                    let outcome = self.compile_block_deduped(plan, block_index, params);
                    slots[plan_index].lock().unwrap_or_else(|e| e.into_inner())[block_index] =
                        Some(outcome);
                });
            }
        });

        let mut results = Vec::with_capacity(plans.len());
        for slot in slots {
            let outcomes = slot.into_inner().unwrap_or_else(|e| e.into_inner());
            let mut plan_outcomes = Vec::with_capacity(outcomes.len());
            for outcome in outcomes {
                plan_outcomes.push(outcome.expect("every task ran")?);
            }
            results.push(plan_outcomes);
        }
        Ok(results)
    }

    /// Compiles one block with in-flight deduplication on its cache key.
    fn compile_block_deduped(
        &self,
        plan: &CompilationPlan,
        block_index: usize,
        params: &[f64],
    ) -> Result<BlockOutcome, CompileError> {
        let block = &plan.blocks[block_index];
        let Some(key) = plan.dedup_key(block, params) else {
            // Lookup-table blocks do no pulse-level work; nothing to deduplicate.
            return self.compiler.compile_block_outcome(plan, block, params);
        };
        let outcome = match self.inflight.begin(key.clone()) {
            Ticket::Leader(flight) => {
                // The guard completes the flight even if the compile panics, so
                // followers wake instead of deadlocking inside the thread scope.
                let _guard = self.inflight.complete_on_drop(key, flight);
                self.compiler.compile_block_outcome(plan, block, params)
            }
            Ticket::Follower(flight) => {
                self.inflight.wait(&flight);
                // The leader populated the shared cache (or failed); compiling now is
                // a cache lookup in the success case and an honest retry otherwise.
                self.compiler.compile_block_outcome(plan, block, params)
            }
        };
        // Count every compilation that actually ran GRAPE / tuning, whichever ticket
        // held it. A follower is not automatically free: when its leader failed, or
        // when a bounded cache already evicted the leader's entry, the follower's
        // "lookup" misses and performs the real work.
        if let Ok(outcome) = &outcome {
            if !outcome.report.cached {
                self.compilations.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqc_circuit::ParamExpr;

    fn fast_options() -> CompilerOptions {
        let mut options = CompilerOptions::fast();
        options.grape.max_iterations = 80;
        options.grape.target_infidelity = 5e-2;
        options.search_precision_ns = 2.0;
        options
    }

    fn variational_circuit() -> Circuit {
        let mut circuit = Circuit::new(2);
        circuit.h(0);
        circuit.h(1);
        circuit.cx(0, 1);
        circuit.rz_expr(1, ParamExpr::theta(0));
        circuit.cx(0, 1);
        circuit.h(0);
        circuit.h(1);
        circuit
    }

    /// Deterministic regression for the follower-path `unique_compilations`
    /// undercount: a follower that wakes to find no cache entry (its leader failed,
    /// or a bounded cache evicted the entry before the follower looked) performs
    /// the real compilation and must be counted. The leader here is simulated by
    /// claiming the in-flight key directly and completing the flight *without*
    /// populating the cache — exactly the state a real follower observes after
    /// leader failure or eviction, with no races.
    #[test]
    fn follower_compiling_after_a_vanished_leader_entry_is_counted() {
        let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(2));
        let params = [0.7];
        let plan = runtime
            .compiler
            .plan(&variational_circuit(), &params, Strategy::StrictPartial)
            .unwrap();
        let block_index = (0..plan.blocks.len())
            .find(|&i| plan.dedup_key(&plan.blocks[i], &params).is_some())
            .expect("plan has a GRAPE block");
        let key = plan
            .dedup_key(&plan.blocks[block_index], &params)
            .expect("chosen block has a dedup key");

        let Ticket::Leader(flight) = runtime.inflight.begin(key.clone()) else {
            panic!("fresh key must lead");
        };
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                runtime
                    .compile_block_deduped(&plan, block_index, &params)
                    .unwrap()
            });
            // The worker is a follower of our flight; wait for it to register
            // (coalesced is incremented inside `begin`, before it blocks).
            while runtime.inflight.coalesced() == 0 {
                std::thread::yield_now();
            }
            assert_eq!(runtime.metrics().unique_compilations, 0);
            // Complete the flight without inserting anything into the cache: the
            // woken follower's lookup misses and it compiles for real.
            runtime.inflight.complete(&key, flight);
            let outcome = worker.join().unwrap();
            assert!(!outcome.report.cached, "follower did the real work");
        });
        let metrics = runtime.metrics();
        assert_eq!(
            metrics.unique_compilations, 1,
            "the follower's real compilation must be counted"
        );
        assert_eq!(metrics.coalesced_waits, 1);
    }

    #[test]
    fn parallel_compile_matches_sequential_compile() {
        let circuit = variational_circuit();
        let params = [0.7];
        let sequential = PartialCompiler::new(fast_options())
            .compile(&circuit, &params, Strategy::StrictPartial)
            .unwrap();
        let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(4));
        let parallel = runtime
            .compile(&circuit, &params, Strategy::StrictPartial)
            .unwrap();
        assert_eq!(parallel.pulse_duration_ns, sequential.pulse_duration_ns);
        assert_eq!(parallel.num_blocks, sequential.num_blocks);
        assert_eq!(parallel.blocks.len(), sequential.blocks.len());
    }

    #[test]
    fn batch_shares_fixed_blocks_across_iterations() {
        let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(4));
        let circuit = variational_circuit();
        let iterations = vec![vec![0.3], vec![1.1], vec![2.6]];
        let reports = runtime.compile_iterations(&circuit, &iterations, Strategy::StrictPartial);
        assert_eq!(reports.len(), 3);
        for report in &reports {
            assert!(report.is_ok());
        }
        // Strict partial compilation's Fixed blocks are θ-independent, so later
        // iterations must pay zero additional pre-compute latency in aggregate:
        // exactly one iteration's worth of GRAPE was led.
        let total_grape: usize = reports
            .iter()
            .map(|r| r.as_ref().unwrap().precompute.grape_iterations)
            .sum();
        let first_grape = reports[0].as_ref().unwrap().precompute.grape_iterations;
        let single = PartialCompiler::new(fast_options())
            .compile(&circuit, &[0.3], Strategy::StrictPartial)
            .unwrap();
        assert_eq!(
            total_grape,
            first_grape.max(single.precompute.grape_iterations)
        );
    }

    #[test]
    fn iterations_report_short_bindings_individually() {
        let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(2));
        let circuit = variational_circuit();
        let results = runtime.compile_iterations(
            &circuit,
            &[vec![0.4], vec![], vec![1.9]],
            Strategy::GateBased,
        );
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(CompileError::MissingParameters {
                supplied: 0,
                required: 1
            })
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn batch_reports_planning_errors_per_job() {
        let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(2));
        let good = CompileJob::new(variational_circuit(), vec![0.4], Strategy::GateBased);
        let bad = CompileJob::new(variational_circuit(), vec![], Strategy::GateBased);
        let results = runtime.compile_batch(&[good, bad]);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(CompileError::MissingParameters {
                supplied: 0,
                required: 1
            })
        ));
    }
}
