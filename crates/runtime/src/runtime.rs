//! The compilation runtime: a request-scheduling service behind a synchronous API.
//!
//! [`CompilationRuntime`] owns a [`PartialCompiler`] whose [`vqc_core::PulseCache`]
//! is a [`ShardedPulseCache`], plus the [`crate::service`] machinery built around
//! them: a channel-based accept loop, a scheduler that expands every admitted
//! [`Submission`] into block tasks via [`PartialCompiler::plan`], and a persistent
//! worker pool that drains one merged, priority-ordered task queue for all
//! outstanding requests. Identical blocks are deduplicated across requests — each
//! unique [`vqc_core::BlockKey`] is GRAPE-optimized at most once per process and its
//! result fans out to every waiting job, no matter how many circuits, parameter
//! bindings, clients, or worker threads are involved.
//!
//! [`CompilationRuntime::submit`] is the service front door ([`Submission`] in,
//! [`JobHandle`] out). [`CompilationRuntime::compile`],
//! [`CompilationRuntime::compile_batch`], and
//! [`CompilationRuntime::compile_iterations`] are thin synchronous wrappers — they
//! submit with blocking admission and wait on the handle, which is the paper's
//! cross-iteration reuse turned cross-request: a variational optimizer (or many
//! concurrent clients) submits whole iterations of circuits, and every Fixed block
//! compiled for any of them is reused by all.

use crate::cache::{CacheConfig, CacheMetrics, CompactionPolicy, ShardedPulseCache};
use crate::persist::{self, PersistError};
use crate::service::{
    Backpressure, ClientMetrics, CompileService, JobHandle, ServiceOptions, Submission, SubmitError,
};
use crate::telemetry::{MetricsSnapshot, TelemetryOptions, TraceEvent};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use vqc_circuit::Circuit;
use vqc_core::{CompilationReport, CompileError, CompilerOptions, PartialCompiler, Strategy};

/// In which order the worker pool drains ready block tasks of equal priority and
/// fair-share stamp.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Longest-processing-time-first: tasks are ordered by estimated GRAPE cost
    /// (descending). The classic LPT bound keeps the makespan within 4/3 of optimal
    /// on heterogeneous plans, where submission order can strand one worker on a
    /// minutes-scale block while the rest sit idle.
    #[default]
    Lpt,
    /// Plan/submission order, as the seed runtime drained tasks. Kept for
    /// benchmarking the scheduling win and for bit-faithful replay of old runs.
    Unsorted,
}

/// Configuration of a [`CompilationRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// Number of worker threads block compilation may use (minimum 1).
    pub workers: usize,
    /// Configuration of the shared sharded cache.
    pub cache: CacheConfig,
    /// Order in which the worker pool drains block tasks.
    pub schedule: SchedulePolicy,
    /// Admission-queue depth and backpressure policy of the service front-end.
    pub service: ServiceOptions,
    /// Telemetry configuration: latency histograms, lifecycle tracing, and the
    /// periodic metrics-snapshot aggregator.
    pub telemetry: TelemetryOptions,
}

impl Default for RuntimeOptions {
    /// Defaults to one worker per available core (capped at 8); the `VQC_WORKERS`
    /// environment variable overrides the worker count (garbage values are ignored,
    /// `0` clamps to 1). The service front-end honors `VQC_QUEUE_DEPTH` and
    /// `VQC_BACKPRESSURE` the same way (see [`ServiceOptions::default`]).
    fn default() -> Self {
        let workers = std::env::var("VQC_WORKERS")
            .ok()
            .and_then(|raw| raw.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
                    .min(8)
            });
        RuntimeOptions {
            workers: workers.max(1),
            cache: CacheConfig::default(),
            schedule: SchedulePolicy::default(),
            service: ServiceOptions::default(),
            telemetry: TelemetryOptions::default(),
        }
    }
}

impl RuntimeOptions {
    /// Options with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        RuntimeOptions {
            workers: workers.max(1),
            ..RuntimeOptions::default()
        }
    }

    /// Replaces the schedule policy.
    pub fn with_schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }

    /// Replaces the service (admission) options.
    pub fn with_service(mut self, service: ServiceOptions) -> Self {
        self.service = service;
        self
    }

    /// Replaces the telemetry options.
    pub fn with_telemetry(mut self, telemetry: TelemetryOptions) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// One compilation request of a batch: a circuit at a parameter binding under a
/// strategy.
#[derive(Debug, Clone)]
pub struct CompileJob {
    /// The (possibly parameterized) circuit to compile.
    pub circuit: Circuit,
    /// Parameter binding for this request.
    pub params: Vec<f64>,
    /// Compilation strategy.
    pub strategy: Strategy,
}

impl CompileJob {
    /// Convenience constructor.
    pub fn new(circuit: Circuit, params: impl Into<Vec<f64>>, strategy: Strategy) -> Self {
        CompileJob {
            circuit,
            params: params.into(),
            strategy,
        }
    }
}

/// Counters describing what a runtime has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RuntimeMetrics {
    /// Shared-cache counters (hits/misses/insertions/evictions).
    pub cache: CacheMetrics,
    /// Block compilations whose pulse-level work this runtime actually performed —
    /// any path (a scheduled task *or* a fan-out waiter whose leader failed or
    /// whose entry was already evicted) that missed the cache and ran GRAPE /
    /// tuning. Cache hits and cleanly fanned-out waiters do not count.
    pub unique_compilations: u64,
    /// Block requests coalesced onto an already-scheduled task of another request
    /// (served by fan-out when that task completes).
    pub coalesced_waits: u64,
    /// Submissions admitted by the service (wrappers included).
    pub submissions: u64,
    /// Submissions that completed (their reports are available).
    pub completed_submissions: u64,
    /// Submissions dropped by [`Backpressure::Shed`].
    pub shed_submissions: u64,
    /// Submissions refused by [`Backpressure::Reject`].
    pub rejected_submissions: u64,
    /// Submissions canceled via [`JobHandle`]`::cancel` (client request or a
    /// transport front-end canceling on disconnect).
    pub canceled_submissions: u64,
    /// Worker threads the runtime schedules onto.
    pub workers: usize,
}

/// The concurrent compilation runtime — a request-scheduling service core.
#[derive(Debug)]
pub struct CompilationRuntime {
    service: CompileService,
}

impl CompilationRuntime {
    /// Creates a runtime with a fresh empty cache and starts its accept loop and
    /// worker pool.
    pub fn new(options: CompilerOptions, runtime_options: RuntimeOptions) -> Self {
        let cache = Arc::new(ShardedPulseCache::new(runtime_options.cache));
        let compiler =
            PartialCompiler::with_cache(options, Arc::<ShardedPulseCache>::clone(&cache));
        CompilationRuntime {
            service: CompileService::start(
                compiler,
                cache,
                runtime_options.workers,
                runtime_options.schedule,
                runtime_options.service,
                runtime_options.telemetry,
            ),
        }
    }

    /// Creates a runtime warm-started from a cache snapshot on disk.
    ///
    /// # Errors
    ///
    /// Fails if the snapshot cannot be read or does not parse.
    pub fn with_warm_start(
        options: CompilerOptions,
        runtime_options: RuntimeOptions,
        snapshot_path: impl AsRef<Path>,
    ) -> Result<Self, PersistError> {
        let snapshot = persist::load_snapshot(snapshot_path)?;
        let runtime = CompilationRuntime::new(options, runtime_options);
        runtime.service.core.cache.absorb(snapshot);
        Ok(runtime)
    }

    /// The underlying compiler (shared cache included).
    pub fn compiler(&self) -> &PartialCompiler {
        &self.service.core.compiler
    }

    /// The shared sharded cache.
    pub fn cache(&self) -> &ShardedPulseCache {
        &self.service.core.cache
    }

    /// Number of worker threads used for block compilation.
    pub fn workers(&self) -> usize {
        self.service.workers
    }

    /// Current runtime counters.
    pub fn metrics(&self) -> RuntimeMetrics {
        let core = &self.service.core;
        RuntimeMetrics {
            cache: core.cache.metrics(),
            unique_compilations: core.compilations.load(Ordering::Relaxed),
            coalesced_waits: core.coalesced.load(Ordering::Relaxed),
            submissions: core.submissions.load(Ordering::Relaxed),
            completed_submissions: core.completed_submissions.load(Ordering::Relaxed),
            shed_submissions: core.shed_submissions.load(Ordering::Relaxed),
            rejected_submissions: core.rejected_submissions.load(Ordering::Relaxed),
            canceled_submissions: core.canceled_submissions.load(Ordering::Relaxed),
            workers: self.service.workers,
        }
    }

    /// This client's slice of the runtime counters (zeroes for an unseen id) —
    /// the fairness-observability counterpart of the global
    /// [`CompilationRuntime::metrics`]. Only submissions attributed via
    /// [`Submission::with_client`] are sliced.
    pub fn client_metrics(&self, client: u64) -> ClientMetrics {
        self.service.core.client_metrics(client)
    }

    /// Every client id seen so far with its metrics slice, sorted by id.
    pub fn client_metrics_snapshot(&self) -> Vec<(u64, ClientMetrics)> {
        self.service.core.client_metrics_snapshot()
    }

    /// Assembles a [`MetricsSnapshot`] of the whole service right now (queue
    /// depths, worker utilization, rates, cache economics, per-class latency
    /// histograms), allocating the next snapshot sequence number. On-demand
    /// snapshots and the periodic aggregator draw from the same sequence, so
    /// `seq` is globally monotonic however snapshots are produced.
    pub fn telemetry_snapshot(&self) -> MetricsSnapshot {
        self.service.core.build_snapshot()
    }

    /// Subscribes to the periodic metrics-snapshot stream. Every aggregator tick
    /// sends one [`MetricsSnapshot`] until the runtime shuts down; after the
    /// graceful-shutdown drain the subscriber receives one final snapshot
    /// reflecting the drained state, then the channel disconnects. With
    /// telemetry disabled the returned receiver is already disconnected.
    pub fn watch_metrics(&self) -> std::sync::mpsc::Receiver<MetricsSnapshot> {
        self.service.core.telemetry.subscribe()
    }

    /// The buffered lifecycle trace events, oldest first (the ring keeps the
    /// most recent [`TelemetryOptions::trace_capacity`] events). Render with
    /// [`crate::chrome_trace_json`] for `chrome://tracing` / Perfetto.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.service.core.telemetry.trace_events()
    }

    /// Seconds since the runtime's service core started.
    pub fn uptime_seconds(&self) -> f64 {
        self.service.core.telemetry.uptime_seconds()
    }

    /// `(seq, uptime_seconds)` of the most recently assembled metrics snapshot
    /// (zeros before the first) — what the wire `Stats` response reports so
    /// pollers can detect restarts and stale reads without subscribing.
    pub fn last_snapshot_meta(&self) -> (u64, f64) {
        self.service.core.telemetry.last_snapshot()
    }

    /// Forgets a client id: drops its metrics slice and its fair-share virtual
    /// clock. Call when the id is retired for good (the network transport does
    /// this as connections close — client ids are never reused), so per-client
    /// state stays proportional to *live* clients, not to every client ever
    /// seen.
    pub fn release_client(&self, client: u64) {
        self.service.core.release_client(client);
    }

    /// Writes the cache contents to disk for a later warm start.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        self.save_snapshot_compacted(path, &CompactionPolicy::default())
    }

    /// Writes the cache contents to disk, compacted: entries below the policy's cost
    /// floor or beyond its size budget are dropped at save time (the costliest
    /// entries survive), so a long-lived process does not grow its snapshot file with
    /// entries that are cheaper to recompute than to carry.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn save_snapshot_compacted(
        &self,
        path: impl AsRef<Path>,
        policy: &CompactionPolicy,
    ) -> Result<(), PersistError> {
        let mut snapshot = self.cache().snapshot();
        snapshot.compact(policy);
        persist::save_snapshot(path, &snapshot)
    }

    /// Submits a request to the service under its configured backpressure policy
    /// and returns immediately with a handle.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::QueueFull`] under [`Backpressure::Reject`] when the
    /// admission queue is at depth, [`SubmitError::Shed`] under
    /// [`Backpressure::Shed`] when everything queued outranks the submission, and
    /// [`SubmitError::ShuttingDown`] once the runtime is being dropped.
    pub fn submit(&self, submission: Submission) -> Result<JobHandle, SubmitError> {
        self.service.submit(submission)
    }

    /// Stops dispatching new block tasks (tasks already running finish). Queued
    /// work and new submissions accumulate until [`CompilationRuntime::resume`] —
    /// a quiesce switch for maintenance windows and deterministic tests.
    pub fn pause(&self) {
        self.service.pause();
    }

    /// Resumes dispatching after [`CompilationRuntime::pause`].
    pub fn resume(&self) {
        self.service.resume();
    }

    /// Stops the accept loop from expanding admitted submissions; they buffer in
    /// the priority-ordered intake heap until
    /// [`CompilationRuntime::resume_intake`]. Unlike [`CompilationRuntime::pause`]
    /// (which stops the *workers* while expansion continues), this holds
    /// submissions in the `Queued` stage — a quiesce switch for the planning
    /// layer, and the deterministic way to observe priority-ordered expansion.
    pub fn pause_intake(&self) {
        self.service.pause_intake();
    }

    /// Resumes expansion of buffered submissions, highest priority first.
    pub fn resume_intake(&self) {
        self.service.resume_intake();
    }

    /// Submits synchronously: blocking admission, not sheddable (the caller's
    /// blocked thread is already backpressure), wait for the result.
    fn submit_and_wait(
        &self,
        submission: Submission,
    ) -> Vec<Result<CompilationReport, CompileError>> {
        self.service
            .submit_with(submission, Backpressure::Block, false)
            .and_then(|handle| handle.wait())
            // audit:allow(unwrap): Block-mode admission cannot reject, shed, or cancel
            .expect("synchronous submissions block admission and are never shed")
    }

    /// Compiles one circuit, running its independent blocks on the worker pool.
    ///
    /// Produces the same [`CompilationReport`] as [`PartialCompiler::compile`]
    /// (block order, durations, and latency accounting included); only the wall-clock
    /// schedule differs. This is a synchronous wrapper over
    /// [`CompilationRuntime::submit`].
    ///
    /// # Errors
    ///
    /// Propagates planning and block-compilation errors.
    pub fn compile(
        &self,
        circuit: &Circuit,
        params: &[f64],
        strategy: Strategy,
    ) -> Result<CompilationReport, CompileError> {
        self.submit_and_wait(Submission::single(circuit.clone(), params, strategy))
            .into_iter()
            .next()
            // audit:allow(unwrap): a single-job submission yields exactly one result
            .expect("one job in, one result out")
    }

    /// Compiles a batch of jobs against the shared cache.
    ///
    /// All blocks of all jobs form one task pool, so the worker threads stay busy
    /// across job boundaries and identical blocks appearing in different jobs (the
    /// common case across variational iterations) are compiled once. Each job's
    /// result is reported independently: one failing job does not poison the rest.
    /// This is a synchronous wrapper over [`CompilationRuntime::submit`].
    pub fn compile_batch(
        &self,
        jobs: &[CompileJob],
    ) -> Vec<Result<CompilationReport, CompileError>> {
        self.submit_and_wait(Submission::batch(jobs.to_vec()))
    }

    /// Compiles one circuit at many parameter bindings (a sequence of variational
    /// iterations) under one strategy — the paper's central workload.
    ///
    /// The circuit is prepared and blocked once; the resulting plan is shared by all
    /// bindings (blocking is structural and does not depend on parameter values), so
    /// N iterations pay one transpiler pass rather than N. This is a synchronous
    /// wrapper over [`CompilationRuntime::submit`].
    pub fn compile_iterations(
        &self,
        circuit: &Circuit,
        parameter_sets: &[Vec<f64>],
        strategy: Strategy,
    ) -> Vec<Result<CompilationReport, CompileError>> {
        self.submit_and_wait(Submission::iterations(
            circuit.clone(),
            parameter_sets.to_vec(),
            strategy,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqc_circuit::ParamExpr;

    fn fast_options() -> CompilerOptions {
        let mut options = CompilerOptions::fast();
        options.grape.max_iterations = 80;
        options.grape.target_infidelity = 5e-2;
        options.search_precision_ns = 2.0;
        options
    }

    fn variational_circuit() -> Circuit {
        let mut circuit = Circuit::new(2);
        circuit.h(0);
        circuit.h(1);
        circuit.cx(0, 1);
        circuit.rz_expr(1, ParamExpr::theta(0));
        circuit.cx(0, 1);
        circuit.h(0);
        circuit.h(1);
        circuit
    }

    #[test]
    fn parallel_compile_matches_sequential_compile() {
        let circuit = variational_circuit();
        let params = [0.7];
        let sequential = PartialCompiler::new(fast_options())
            .compile(&circuit, &params, Strategy::StrictPartial)
            .unwrap();
        let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(4));
        let parallel = runtime
            .compile(&circuit, &params, Strategy::StrictPartial)
            .unwrap();
        assert_eq!(parallel.pulse_duration_ns, sequential.pulse_duration_ns);
        assert_eq!(parallel.num_blocks, sequential.num_blocks);
        assert_eq!(parallel.blocks.len(), sequential.blocks.len());
    }

    #[test]
    fn batch_shares_fixed_blocks_across_iterations() {
        let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(4));
        let circuit = variational_circuit();
        let iterations = vec![vec![0.3], vec![1.1], vec![2.6]];
        let reports = runtime.compile_iterations(&circuit, &iterations, Strategy::StrictPartial);
        assert_eq!(reports.len(), 3);
        for report in &reports {
            assert!(report.is_ok());
        }
        // Strict partial compilation's Fixed blocks are θ-independent, so later
        // iterations must pay zero additional pre-compute latency in aggregate:
        // exactly one iteration's worth of GRAPE was led.
        let total_grape: usize = reports
            .iter()
            .map(|r| r.as_ref().unwrap().precompute.grape_iterations)
            .sum();
        let first_grape = reports[0].as_ref().unwrap().precompute.grape_iterations;
        let single = PartialCompiler::new(fast_options())
            .compile(&circuit, &[0.3], Strategy::StrictPartial)
            .unwrap();
        assert_eq!(
            total_grape,
            first_grape.max(single.precompute.grape_iterations)
        );
    }

    #[test]
    fn iterations_report_short_bindings_individually() {
        let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(2));
        let circuit = variational_circuit();
        let results = runtime.compile_iterations(
            &circuit,
            &[vec![0.4], vec![], vec![1.9]],
            Strategy::GateBased,
        );
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(CompileError::MissingParameters {
                supplied: 0,
                required: 1
            })
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn batch_reports_planning_errors_per_job() {
        let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(2));
        let good = CompileJob::new(variational_circuit(), vec![0.4], Strategy::GateBased);
        let bad = CompileJob::new(variational_circuit(), vec![], Strategy::GateBased);
        let results = runtime.compile_batch(&[good, bad]);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(CompileError::MissingParameters {
                supplied: 0,
                required: 1
            })
        ));
    }

    #[test]
    fn empty_batches_and_empty_iterations_complete_immediately() {
        let runtime = CompilationRuntime::new(fast_options(), RuntimeOptions::with_workers(2));
        assert!(runtime.compile_batch(&[]).is_empty());
        assert!(runtime
            .compile_iterations(&variational_circuit(), &[], Strategy::StrictPartial)
            .is_empty());
    }
}
