//! On-disk persistence of cache snapshots for warm-start across runs.
//!
//! A snapshot file is a small header (magic bytes + format version) followed by the
//! bincode encoding of a [`CacheSnapshot`]. The header keeps a future format change
//! from being misparsed as data, and snapshots are written via a temporary file +
//! rename so a crash mid-write never leaves a truncated snapshot at the target path.

use crate::cache::CacheSnapshot;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Leading bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"VQCPULSE";
/// Version of the snapshot layout this build writes and accepts.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Error loading or saving a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file exists but is not a snapshot this build understands.
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot io error: {e}"),
            PersistError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Writes a snapshot to `path` atomically (temp file + rename).
///
/// # Errors
///
/// Fails on I/O errors; the target path is left untouched in that case.
pub fn save_snapshot(path: impl AsRef<Path>, snapshot: &CacheSnapshot) -> Result<(), PersistError> {
    let path = path.as_ref();
    let payload = bincode::serialize(snapshot)
        .map_err(|e| PersistError::Corrupt(format!("encoding failed: {e}")))?;
    // The temp name must be unique per target file AND per process: appending to the
    // full file name (rather than replacing the extension) keeps `a.blocks` and
    // `a.tunings` from sharing a temp file, and the pid keeps two processes saving
    // to the same path from interleaving writes.
    let file_name = path
        .file_name()
        .ok_or_else(|| PersistError::Corrupt("snapshot path has no file name".into()))?
        .to_string_lossy()
        .into_owned();
    let tmp_path = path.with_file_name(format!("{file_name}.{}.tmp", std::process::id()));
    {
        let mut file = fs::File::create(&tmp_path)?;
        file.write_all(SNAPSHOT_MAGIC)?;
        file.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        file.write_all(&payload)?;
        file.sync_all()?;
    }
    fs::rename(&tmp_path, path)?;
    Ok(())
}

/// Reads a snapshot from `path`.
///
/// # Errors
///
/// Fails if the file is unreadable, has the wrong magic/version, or does not decode.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<CacheSnapshot, PersistError> {
    let bytes = fs::read(path)?;
    let header_len = SNAPSHOT_MAGIC.len() + 4;
    if bytes.len() < header_len || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(PersistError::Corrupt("missing snapshot magic".into()));
    }
    let version = u32::from_le_bytes(
        bytes[SNAPSHOT_MAGIC.len()..header_len]
            .try_into()
            .expect("four version bytes"),
    );
    if version != SNAPSHOT_VERSION {
        return Err(PersistError::Corrupt(format!(
            "snapshot version {version} (this build reads {SNAPSHOT_VERSION})"
        )));
    }
    bincode::deserialize(&bytes[header_len..])
        .map_err(|e| PersistError::Corrupt(format!("payload does not decode: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqc_circuit::Circuit;
    use vqc_core::{BlockKey, CachedBlock};

    fn sample_snapshot() -> CacheSnapshot {
        let mut circuit = Circuit::new(2);
        circuit.cx(0, 1);
        circuit.rz(1, 0.5);
        CacheSnapshot {
            blocks: vec![(
                BlockKey::from_bound_circuit(&circuit),
                CachedBlock {
                    duration_ns: 4.25,
                    converged: true,
                    grape_iterations: 310,
                },
            )],
            tunings: Vec::new(),
        }
    }

    #[test]
    fn snapshot_file_round_trips() {
        let dir = std::env::temp_dir().join("vqc_persist_test_roundtrip");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snapshot");
        let snapshot = sample_snapshot();
        save_snapshot(&path, &snapshot).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), snapshot);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_and_truncation_are_rejected() {
        let dir = std::env::temp_dir().join("vqc_persist_test_corrupt");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snapshot");

        fs::write(&path, b"NOTASNAP").unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(PersistError::Corrupt(_))
        ));

        save_snapshot(&path, &sample_snapshot()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(PersistError::Corrupt(_))
        ));

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn future_versions_are_rejected() {
        let dir = std::env::temp_dir().join("vqc_persist_test_version");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snapshot");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(PersistError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }
}
