//! On-disk persistence of cache snapshots for warm-start across runs.
//!
//! A snapshot file is a small header (magic bytes + format version) followed by the
//! bincode encoding of a [`CacheSnapshot`]. The header keeps a future format change
//! from being misparsed as data, and snapshots are written via a temporary file +
//! rename so a crash mid-write never leaves a truncated snapshot at the target path.
//!
//! Format history:
//!
//! * **v1** — `(key, entry)` pairs. Still readable: entries are migrated on load by
//!   recomputing their cost metadata from the recorded GRAPE iterations.
//! * **v2** — `(key, entry, recompute_cost_seconds)` triples, so a restored
//!   cache ranks restored and freshly compiled entries on the same eviction scale
//!   without re-deriving costs, and snapshot compaction can filter on cost at save
//!   time. Still readable: migration fills an empty warm-start section.
//! * **v3** (current) — adds the transposition-table warm-start seeds
//!   (`(structural key, SeedEntry)` pairs), so a restarted service opens its
//!   duration searches at the predecessor's converged windows.

use crate::cache::CacheSnapshot;
use serde::Deserialize;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;
use vqc_core::{BlockKey, CachedBlock, CachedTuning, LatencyModel};

/// Leading bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"VQCPULSE";
/// Version of the snapshot layout this build writes.
pub const SNAPSHOT_VERSION: u32 = 3;
/// Oldest snapshot layout this build still reads (migrating on load).
pub const SNAPSHOT_MIN_VERSION: u32 = 1;

/// Error loading or saving a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file exists but is not a snapshot this build understands.
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot io error: {e}"),
            PersistError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// The v1 payload layout, kept for read-only migration.
#[derive(Debug, Default, Deserialize)]
struct SnapshotV1 {
    blocks: Vec<(BlockKey, CachedBlock)>,
    tunings: Vec<(BlockKey, CachedTuning)>,
}

impl SnapshotV1 {
    /// Upgrades to the current layout by deriving the cost metadata v1 lacked.
    /// Pre-v3 snapshots have no warm-start section; the seeds load empty.
    fn migrate(self) -> CacheSnapshot {
        let model = LatencyModel::default();
        CacheSnapshot {
            blocks: self
                .blocks
                .into_iter()
                .map(|(key, entry)| {
                    let cost = model.block_recompute_seconds(&key, &entry);
                    (key, entry, cost)
                })
                .collect(),
            tunings: self
                .tunings
                .into_iter()
                .map(|(key, entry)| {
                    let cost = model.tuning_recompute_seconds(&key, &entry);
                    (key, entry, cost)
                })
                .collect(),
            seeds: Vec::new(),
        }
    }
}

/// The v2 payload layout (cost triples, no warm-start section), kept for
/// read-only migration.
#[derive(Debug, Default, Deserialize)]
struct SnapshotV2 {
    blocks: Vec<(BlockKey, CachedBlock, f64)>,
    tunings: Vec<(BlockKey, CachedTuning, f64)>,
}

impl SnapshotV2 {
    /// Upgrades to the current layout: everything carries over, the warm-start
    /// seeds (which v2 never recorded) load empty.
    fn migrate(self) -> CacheSnapshot {
        CacheSnapshot {
            blocks: self.blocks,
            tunings: self.tunings,
            seeds: Vec::new(),
        }
    }
}

/// Writes a snapshot to `path` atomically (temp file + rename).
///
/// # Errors
///
/// Fails on I/O errors; the target path is left untouched and the temporary file is
/// removed in that case.
pub fn save_snapshot(path: impl AsRef<Path>, snapshot: &CacheSnapshot) -> Result<(), PersistError> {
    let path = path.as_ref();
    let payload = bincode::serialize(snapshot)
        .map_err(|e| PersistError::Corrupt(format!("encoding failed: {e}")))?;
    // The temp name must be unique per target file AND per process: appending to the
    // full file name (rather than replacing the extension) keeps `a.blocks` and
    // `a.tunings` from sharing a temp file, and the pid keeps two processes saving
    // to the same path from interleaving writes.
    let file_name = path
        .file_name()
        .ok_or_else(|| PersistError::Corrupt("snapshot path has no file name".into()))?
        .to_string_lossy()
        .into_owned();
    let tmp_path = path.with_file_name(format!("{file_name}.{}.tmp", std::process::id()));
    let write = || -> Result<(), PersistError> {
        {
            let mut file = fs::File::create(&tmp_path)?;
            file.write_all(SNAPSHOT_MAGIC)?;
            file.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
            file.write_all(&payload)?;
            file.sync_all()?;
        }
        fs::rename(&tmp_path, path)?;
        Ok(())
    };
    let result = write();
    if result.is_err() {
        // Any failure past File::create leaves the temp file behind; a process that
        // keeps retrying saves would otherwise litter the snapshot directory.
        fs::remove_file(&tmp_path).ok();
    }
    result
}

/// Reads a snapshot from `path`, migrating older supported versions to the current
/// layout.
///
/// # Errors
///
/// Fails if the file is unreadable, has the wrong magic/version, or does not decode.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<CacheSnapshot, PersistError> {
    let bytes = fs::read(path)?;
    let header_len = SNAPSHOT_MAGIC.len() + 4;
    if bytes.len() < header_len || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(PersistError::Corrupt("missing snapshot magic".into()));
    }
    let version = match bytes[SNAPSHOT_MAGIC.len()..header_len].try_into() {
        Ok(raw) => u32::from_le_bytes(raw),
        Err(_) => return Err(PersistError::Corrupt("truncated version field".into())),
    };
    let payload = &bytes[header_len..];
    match version {
        // Guarded by the same constant the rejection message advertises, so
        // raising SNAPSHOT_MIN_VERSION retires this migration arm automatically.
        1 if SNAPSHOT_MIN_VERSION <= 1 => bincode::deserialize::<SnapshotV1>(payload)
            .map(SnapshotV1::migrate)
            .map_err(|e| PersistError::Corrupt(format!("v1 payload does not decode: {e}"))),
        2 if SNAPSHOT_MIN_VERSION <= 2 => bincode::deserialize::<SnapshotV2>(payload)
            .map(SnapshotV2::migrate)
            .map_err(|e| PersistError::Corrupt(format!("v2 payload does not decode: {e}"))),
        SNAPSHOT_VERSION => bincode::deserialize(payload)
            .map_err(|e| PersistError::Corrupt(format!("payload does not decode: {e}"))),
        other => Err(PersistError::Corrupt(format!(
            "snapshot version {other} (this build reads {SNAPSHOT_MIN_VERSION}..={SNAPSHOT_VERSION})"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqc_circuit::Circuit;

    fn sample_key() -> BlockKey {
        let mut circuit = Circuit::new(2);
        circuit.cx(0, 1);
        circuit.rz(1, 0.5);
        BlockKey::from_bound_circuit(&circuit)
    }

    fn sample_entry() -> CachedBlock {
        CachedBlock {
            duration_ns: 4.25,
            converged: true,
            grape_iterations: 310,
        }
    }

    fn sample_seed() -> (BlockKey, vqc_core::SeedEntry) {
        let mut structural = Circuit::new(2);
        structural.cx(0, 1);
        (
            BlockKey::structural(&structural),
            vqc_core::SeedEntry {
                learning_rate: 0.15,
                decay_rate: 0.995,
                tuned: true,
                converged_duration_ns: Some(3.75),
                failed_below_ns: 3.0,
                probe_iterations: vec![(4.25, 120), (3.75, 80)],
                pulse: Some(vqc_core::PulseSequence::zeros(3, 16, 0.25)),
            },
        )
    }

    fn sample_snapshot() -> CacheSnapshot {
        let key = sample_key();
        let entry = sample_entry();
        let cost = LatencyModel::default().block_recompute_seconds(&key, &entry);
        CacheSnapshot {
            blocks: vec![(key, entry, cost)],
            tunings: Vec::new(),
            seeds: vec![sample_seed()],
        }
    }

    #[test]
    fn snapshot_file_round_trips_with_cost_metadata() {
        let dir = std::env::temp_dir().join("vqc_persist_test_roundtrip");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snapshot");
        let snapshot = sample_snapshot();
        save_snapshot(&path, &snapshot).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded, snapshot);
        assert!(loaded.blocks[0].2 > 0.0, "cost metadata must round-trip");
        // v3: the warm-start section round-trips, pulse payload included.
        assert_eq!(loaded.seeds, snapshot.seeds);
        assert!(loaded.seeds[0].1.pulse.is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_snapshots_still_load_with_empty_seeds() {
        let dir = std::env::temp_dir().join("vqc_persist_test_v2");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snapshot");

        // A v2 file: cost triples, no warm-start section. The v2 struct
        // serialized field-by-field is byte-identical to the tuple of its two
        // vectors.
        let key = sample_key();
        let entry = sample_entry();
        let cost = LatencyModel::default().block_recompute_seconds(&key, &entry);
        let v2_payload = bincode::serialize(&(
            vec![(key.clone(), entry.clone(), cost)],
            Vec::<(BlockKey, CachedTuning, f64)>::new(),
        ))
        .unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&v2_payload);
        fs::write(&path, &bytes).unwrap();

        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded.blocks, vec![(key, entry, cost)]);
        assert!(loaded.tunings.is_empty());
        assert!(
            loaded.seeds.is_empty(),
            "v2 predates the warm-start index; migration must leave it empty"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_snapshots_still_load_with_derived_costs() {
        let dir = std::env::temp_dir().join("vqc_persist_test_v1");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snapshot");

        // A v1 file: (key, entry) pairs without costs. The v1 struct serialized
        // field-by-field is byte-identical to the tuple of its two vectors.
        let v1_payload = bincode::serialize(&(
            vec![(sample_key(), sample_entry())],
            Vec::<(BlockKey, CachedTuning)>::new(),
        ))
        .unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&v1_payload);
        fs::write(&path, &bytes).unwrap();

        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded.blocks.len(), 1);
        assert_eq!(loaded.blocks[0].0, sample_key());
        assert_eq!(loaded.blocks[0].1, sample_entry());
        assert_eq!(
            loaded.blocks[0].2,
            LatencyModel::default().block_recompute_seconds(&sample_key(), &sample_entry()),
            "migration derives the cost v1 lacked"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_and_truncation_are_rejected() {
        let dir = std::env::temp_dir().join("vqc_persist_test_corrupt");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snapshot");

        fs::write(&path, b"NOTASNAP").unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(PersistError::Corrupt(_))
        ));

        save_snapshot(&path, &sample_snapshot()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(PersistError::Corrupt(_))
        ));

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn future_versions_are_rejected() {
        let dir = std::env::temp_dir().join("vqc_persist_test_version");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snapshot");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(PersistError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_save_leaves_no_temp_files_behind() {
        let dir = std::env::temp_dir().join("vqc_persist_test_tmp_leak");
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        // The target path is an existing directory, so the final rename of the temp
        // file onto it must fail after the temp file was fully written.
        let target = dir.join("occupied");
        fs::create_dir_all(&target).unwrap();
        assert!(matches!(
            save_snapshot(&target, &sample_snapshot()),
            Err(PersistError::Io(_))
        ));
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|entry| entry.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|name| name.ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "failed save left temp files: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }
}
