//! The lock-striped, sharded pulse cache.
//!
//! The seed's [`vqc_core::PulseLibrary`] guards its whole map with one mutex, which
//! serializes every lookup once block compilation runs on a worker pool. This cache
//! stripes the key space over independent shards, each guarded by its own mutex, so
//! lookups of different blocks proceed without contention. (A per-shard
//! reader-writer lock was measured slower here: the critical sections are a few
//! nanoseconds, so lock acquisition dominates, and a mutex acquire is cheaper than a
//! read-lock acquire once the key space is striped.) Keys are content-addressed: a
//! [`BlockKey`] is a canonical fingerprint of the block circuit, so two requests
//! compiling the same subcircuit hit the same shard slot regardless of which circuit
//! or which variational iteration they came from.
//!
//! # Eviction
//!
//! Bounded shards evict by *recompute cost*: every entry carries the GRAPE seconds
//! it would take to reproduce — the wall time its compilation was *observed* to
//! cost when the compiler recorded one (via
//! [`vqc_core::PulseCache::record_observed_cost`], which it does for every real
//! compilation), or an estimate derived from its recorded iterations via
//! [`vqc_core::LatencyModel`] otherwise — and a full shard drops the
//! cheapest-to-recompute entry first, breaking ties by insertion order. That is the
//! economics of the paper's pulse library made explicit — a cached 4-qubit block
//! stands for minutes of GRAPE, a 2-qubit block for a fraction of a second, and a
//! bounded cache should spend its capacity on the former. [`EvictionPolicy::Fifo`]
//! retains the plain oldest-first bound for comparison.
//!
//! Observed costs are *host* seconds while model estimates are paper-scale
//! seconds; within one process every real compilation records an observation
//! before its insert, and [`ShardedPulseCache::absorb`] seeds the feedback table
//! from the snapshot's persisted costs. For entries that never ran anywhere
//! (hand-inserted or pre-feedback snapshots), the model estimate is multiplied by
//! the [`vqc_core::CostCalibration`] scale — a least-squares fit over every real
//! compilation's (estimate, observation) pair — so even never-observed entries
//! rank on (approximately) the host-seconds axis once a few blocks have run.
//!
//! [`EvictionPolicy::HitWeighted`] additionally multiplies each entry's recompute
//! cost by `1 + hits`: what a bounded cache really protects is cost × expected
//! reuse, and observed hit frequency is the best available estimate of reuse.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use vqc_core::{
    BlockKey, CachedBlock, CachedTuning, LatencyModel, PulseCache, SeedEntry, TableConfig,
    TranspositionTable, WarmStartStats,
};

/// Which entry a full shard evicts on insert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Evict the entry with the smallest estimated recompute cost first; entries of
    /// equal cost leave in insertion order.
    #[default]
    CostAware,
    /// Evict the entry with the smallest `recompute cost × (1 + observed hits)`
    /// first. Weighting cost by reuse approximates Belady on skewed workloads: a
    /// cheap block hit on every iteration protects more total recompute seconds
    /// than an expensive block nobody asks for twice. Hit counters are per-process
    /// (they are not persisted in snapshots), so a warm-started cache initially
    /// ranks by cost alone and sharpens as traffic arrives.
    HitWeighted,
    /// Evict the entry least recently inserted (or overwritten) first.
    Fifo,
}

impl EvictionPolicy {
    /// Parses the `VQC_EVICTION` spelling of a policy (`"fifo"`, `"cost"` /
    /// `"cost-aware"`, or `"hit"` / `"hit-weighted"`, case-insensitive); anything
    /// else is `None`.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "fifo" => Some(EvictionPolicy::Fifo),
            "cost" | "cost-aware" | "cost_aware" => Some(EvictionPolicy::CostAware),
            "hit" | "hits" | "hit-weighted" | "hit_weighted" => Some(EvictionPolicy::HitWeighted),
            _ => None,
        }
    }
}

/// Configuration of a [`ShardedPulseCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of independent shards (rounded up to a power of two, minimum 1).
    pub shards: usize,
    /// Maximum number of block entries per shard; a full shard evicts per the
    /// [`EvictionPolicy`] on insert. `None` disables eviction (the seed behavior).
    pub max_blocks_per_shard: Option<usize>,
    /// Maximum number of tuning entries per shard, as for `max_blocks_per_shard`.
    pub max_tunings_per_shard: Option<usize>,
    /// Which entry a full shard evicts.
    pub eviction: EvictionPolicy,
    /// Configuration of the transposition-table warm-start index (capacity,
    /// shard count, and the `VQC_CACHE_BYTES` byte budget).
    pub seeds: TableConfig,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            max_blocks_per_shard: None,
            max_tunings_per_shard: None,
            eviction: EvictionPolicy::default(),
            // Like `TranspositionTable::default()`, the default honors the
            // `VQC_TT` / `VQC_TT_CAPACITY` / `VQC_CACHE_BYTES` knobs.
            seeds: TableConfig::from_env(),
        }
    }
}

/// Point-in-time cache counters.
///
/// `hits`/`misses` count lookups of both block and tuning entries; `evictions`
/// counts entries displaced by the per-shard capacity bound (on any write path,
/// including a bounded warm start). `restored` counts entries absorbed from a
/// snapshot, which deliberately do **not** contribute to `insertions` — a warm
/// start is not compile-time work, and polluting the compile-time counters with it
/// would make the first post-restart metrics read look like a compilation storm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheMetrics {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written (first insert or overwrite) by compilation.
    pub insertions: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Entries restored from a snapshot by [`ShardedPulseCache::absorb`].
    pub restored: u64,
}

/// Per-shard counters. Keeping one `Counters` inside every shard (rather than one
/// global set) spreads the atomic increments across as many cache lines as there are
/// shards, so metrics do not re-introduce the very contention the striping removes.
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    restored: AtomicU64,
}

impl Counters {
    fn record_lookup(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One stored value plus its eviction metadata.
#[derive(Debug)]
struct Slot<V> {
    value: V,
    /// Estimated seconds of GRAPE work to reproduce the value if evicted.
    cost: f64,
    /// Monotone write stamp. Overwriting a key refreshes its stamp, so an entry's
    /// age reflects its latest write — the seed's FIFO queue kept the *original*
    /// position, wrongly evicting a just-refreshed entry as "oldest".
    seq: u64,
    /// Lookups this key has answered since it first entered the shard (overwrites
    /// keep the count — recompiling a block does not erase its popularity). Under
    /// [`EvictionPolicy::HitWeighted`] this multiplies into the eviction rank.
    hits: u64,
}

/// Maps a cost to a key that sorts exactly like [`f64::total_cmp`] (the standard
/// sign-flip trick), so the victim index below can order entries without floats.
fn cost_order_bits(cost: f64) -> u64 {
    let bits = cost.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// One capacity-bounded key→value map with per-entry recompute costs.
#[derive(Debug)]
struct BoundedMap<V> {
    entries: HashMap<BlockKey, Slot<V>>,
    /// Eviction order index: the map's first entry is the next victim. Keys are
    /// `(policy order bits, seq)` — unique because `seq` is — so picking a victim
    /// and maintaining the index on insert/overwrite are both O(log n), where the
    /// seed's plain scan would make every insert into a full shard O(n) under the
    /// shard mutex.
    victims: BTreeMap<(u64, u64), BlockKey>,
    capacity: Option<usize>,
    policy: EvictionPolicy,
    next_seq: u64,
}

impl<V> BoundedMap<V> {
    fn new(capacity: Option<usize>, policy: EvictionPolicy) -> Self {
        BoundedMap {
            entries: HashMap::new(),
            victims: BTreeMap::new(),
            capacity,
            policy,
            next_seq: 0,
        }
    }

    /// Where an entry sorts in the eviction order under a policy. An associated
    /// function (not a method) so [`BoundedMap::get`] can reposition an entry while
    /// it holds a mutable borrow into `entries`.
    fn order_of(policy: EvictionPolicy, cost: f64, hits: u64, seq: u64) -> (u64, u64) {
        match policy {
            EvictionPolicy::Fifo => (0, seq),
            EvictionPolicy::CostAware => (cost_order_bits(cost), seq),
            EvictionPolicy::HitWeighted => (cost_order_bits(cost * (1 + hits) as f64), seq),
        }
    }

    /// Looks up a key, counting the hit. Under [`EvictionPolicy::HitWeighted`] the
    /// hit also promotes the entry in the eviction order (its protected value just
    /// grew by one recompute), which is an O(log n) reindex.
    fn get(&mut self, key: &BlockKey) -> Option<&V> {
        let policy = self.policy;
        let bounded = self.capacity.is_some();
        let slot = self.entries.get_mut(key)?;
        slot.hits += 1;
        if bounded && policy == EvictionPolicy::HitWeighted {
            self.victims
                .remove(&Self::order_of(policy, slot.cost, slot.hits - 1, slot.seq));
            self.victims.insert(
                Self::order_of(policy, slot.cost, slot.hits, slot.seq),
                key.clone(),
            );
        }
        Some(&slot.value)
    }

    /// Hits the key has answered so far, if resident.
    fn hits(&self, key: &BlockKey) -> Option<u64> {
        self.entries.get(key).map(|slot| slot.hits)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.victims.clear();
    }

    /// Sum of the recompute-cost estimates of all retained entries (seconds).
    fn total_cost(&self) -> f64 {
        self.entries.values().map(|slot| slot.cost).sum()
    }

    /// Inserts, returning the number of entries evicted to make room. The entry
    /// inserted by this very call is never its own victim, even when it is the
    /// cheapest in the shard — evicting what the caller is about to rely on would
    /// guarantee an immediate recompute.
    fn insert(&mut self, key: BlockKey, value: V, cost: f64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        // An overwrite keeps the key's accumulated hit count: recompiling a block
        // does not erase the demand history that hit-weighted eviction ranks by.
        let hits = self.entries.get(&key).map(|slot| slot.hits).unwrap_or(0);
        let slot = Slot {
            value,
            cost,
            seq,
            hits,
        };
        let Some(capacity) = self.capacity else {
            // Unbounded maps (the default config) never evict, so they skip the
            // victim index entirely rather than mirror every key into it.
            self.entries.insert(key, slot);
            return 0;
        };
        if let Some(old) = self.entries.insert(key.clone(), slot) {
            self.victims
                .remove(&Self::order_of(self.policy, old.cost, old.hits, old.seq));
        }
        self.victims
            .insert(Self::order_of(self.policy, cost, hits, seq), key.clone());
        let mut evicted = 0;
        while self.entries.len() > capacity.max(1) {
            // The just-inserted key is at most one of the first two index
            // entries away from the front, so this scan inspects ≤ 2 entries.
            let victim = self
                .victims
                .iter()
                .find(|(_, candidate)| **candidate != key)
                .map(|(order, candidate)| (*order, candidate.clone()));
            match victim {
                Some((order, victim)) => {
                    self.victims.remove(&order);
                    self.entries.remove(&victim);
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }
}

/// Cap on per-shard observed-cost entries. Observed costs deliberately outlive the
/// bounded entry maps, but they must not leak without bound under parameter churn
/// (every new θ binding of a bound block is a distinct key), so the feedback table
/// is itself FIFO-bounded. Losing an old observation merely falls back to the
/// latency model — graceful, not wrong.
const OBSERVED_CAPACITY_PER_SHARD: usize = 4096;

/// FIFO-bounded key → measured-seconds map for observed compile costs.
///
/// Overwriting an existing key keeps its original queue position: the bound exists
/// to cap memory, not to implement recency semantics.
#[derive(Debug, Default)]
struct ObservedCosts {
    costs: HashMap<BlockKey, f64>,
    order: std::collections::VecDeque<BlockKey>,
}

impl ObservedCosts {
    fn record(&mut self, key: &BlockKey, seconds: f64) {
        if self.costs.insert(key.clone(), seconds).is_none() {
            self.order.push_back(key.clone());
            while self.order.len() > OBSERVED_CAPACITY_PER_SHARD {
                if let Some(evicted) = self.order.pop_front() {
                    self.costs.remove(&evicted);
                }
            }
        }
    }

    fn get(&self, key: &BlockKey) -> Option<f64> {
        self.costs.get(key).copied()
    }
}

#[derive(Debug)]
struct Shard {
    blocks: Mutex<BoundedMap<CachedBlock>>,
    tunings: Mutex<BoundedMap<CachedTuning>>,
    /// Measured wall-clock compile seconds per key. Deliberately *outside* the
    /// bounded entry maps: evicting a result does not un-learn what it cost to
    /// produce, so re-compilations and LPT scheduling keep the observation (up to
    /// the [`OBSERVED_CAPACITY_PER_SHARD`] feedback bound).
    observed: Mutex<ObservedCosts>,
    counters: Counters,
}

/// Serializable image of a cache's contents, for warm-start persistence. Each entry
/// carries its recompute-cost estimate (seconds), so a restored cache ranks restored
/// and freshly compiled entries on the same eviction scale.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// All cached block compilations, with per-entry recompute costs.
    pub blocks: Vec<(BlockKey, CachedBlock, f64)>,
    /// All cached flexible-compilation tunings, with per-entry recompute costs.
    pub tunings: Vec<(BlockKey, CachedTuning, f64)>,
    /// The transposition-table warm-start entries (snapshot format v3; v2
    /// snapshots load with this empty).
    pub seeds: Vec<(BlockKey, SeedEntry)>,
}

/// What snapshot compaction drops at save time. The default drops nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CompactionPolicy {
    /// Drop entries whose recompute cost (seconds) is below this floor — entries so
    /// cheap that re-deriving them costs less than carrying them across restarts.
    pub cost_floor_seconds: Option<f64>,
    /// Keep at most this many block entries and this many tuning entries; the
    /// costliest-to-recompute survive.
    pub max_entries: Option<usize>,
}

impl CacheSnapshot {
    /// Applies a [`CompactionPolicy`] in place: entries below the cost floor are
    /// dropped, then each section is truncated to the size budget keeping the
    /// costliest entries (ties keep their snapshot order). Warm-start seeds are
    /// left alone — the transposition table is fixed-capacity by construction,
    /// so its snapshot section is already bounded.
    pub fn compact(&mut self, policy: &CompactionPolicy) {
        fn apply<V>(entries: &mut Vec<(BlockKey, V, f64)>, policy: &CompactionPolicy) {
            if let Some(floor) = policy.cost_floor_seconds {
                entries.retain(|(_, _, cost)| *cost >= floor);
            }
            if let Some(max) = policy.max_entries {
                if entries.len() > max {
                    entries.sort_by(|a, b| b.2.total_cmp(&a.2));
                    entries.truncate(max);
                }
            }
        }
        apply(&mut self.blocks, policy);
        apply(&mut self.tunings, policy);
    }

    /// Total estimated GRAPE seconds the snapshot's entries stand for.
    pub fn total_cost_seconds(&self) -> f64 {
        self.blocks.iter().map(|(_, _, cost)| cost).sum::<f64>()
            + self.tunings.iter().map(|(_, _, cost)| cost).sum::<f64>()
    }
}

/// A lock-striped, sharded, content-addressed implementation of [`PulseCache`].
#[derive(Debug)]
pub struct ShardedPulseCache {
    shards: Vec<Shard>,
    /// `shards.len() - 1`; shard count is a power of two so this masks a hash.
    mask: usize,
    /// Converts an entry's recorded GRAPE iterations into its recompute cost.
    latency: LatencyModel,
    /// The transposition-table warm-start index: structural key → tuned
    /// hyperparameters, converged duration window, and best-so-far amplitudes.
    /// Sharded and bounded on its own (entry capacity plus the optional
    /// `VQC_CACHE_BYTES` byte budget), independent of the block/tuning shards.
    seeds: TranspositionTable<BlockKey>,
    /// Model→host scale fit from every real compilation's (estimate, observation)
    /// pair. One global accumulator (not per-shard): it is written once per *real*
    /// GRAPE compilation — milliseconds apart at best — so contention is nil, and a
    /// single fit sees every sample instead of sixteen starved ones.
    calibration: Mutex<vqc_core::CostCalibration>,
}

impl Default for ShardedPulseCache {
    fn default() -> Self {
        ShardedPulseCache::new(CacheConfig::default())
    }
}

impl ShardedPulseCache {
    /// Creates an empty cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        ShardedPulseCache {
            shards: (0..shards)
                .map(|_| Shard {
                    blocks: Mutex::new(BoundedMap::new(
                        config.max_blocks_per_shard,
                        config.eviction,
                    )),
                    tunings: Mutex::new(BoundedMap::new(
                        config.max_tunings_per_shard,
                        config.eviction,
                    )),
                    observed: Mutex::new(ObservedCosts::default()),
                    counters: Counters::default(),
                })
                .collect(),
            mask: shards - 1,
            latency: LatencyModel::default(),
            seeds: TranspositionTable::new(config.seeds),
            calibration: Mutex::new(vqc_core::CostCalibration::new()),
        }
    }

    /// The warm-start index's current entry count.
    pub fn num_seeds(&self) -> usize {
        self.seeds.len()
    }

    /// Approximate bytes held by the warm-start index's waveform payloads —
    /// the quantity the `VQC_CACHE_BYTES` budget bounds.
    pub fn seed_bytes(&self) -> usize {
        self.seeds.approx_bytes()
    }

    /// Lookups the given block key has answered since entering its shard, if it is
    /// currently resident. Hit counters survive overwrites but not eviction (unlike
    /// observed costs, which describe the work rather than the entry).
    pub fn block_hit_count(&self, key: &BlockKey) -> Option<u64> {
        self.shard(key).blocks.lock().hits(key)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &BlockKey) -> &Shard {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & self.mask]
    }

    /// Current counter values, aggregated over all shards.
    pub fn metrics(&self) -> CacheMetrics {
        let mut metrics = CacheMetrics::default();
        for shard in &self.shards {
            metrics.hits += shard.counters.hits.load(Ordering::Relaxed);
            metrics.misses += shard.counters.misses.load(Ordering::Relaxed);
            metrics.insertions += shard.counters.insertions.load(Ordering::Relaxed);
            metrics.evictions += shard.counters.evictions.load(Ordering::Relaxed);
            metrics.restored += shard.counters.restored.load(Ordering::Relaxed);
        }
        metrics
    }

    /// Sum of the recompute-cost estimates of all retained block entries, in
    /// seconds — the estimated GRAPE work the cache is currently protecting. This is
    /// the quantity cost-aware eviction maximizes at a given capacity.
    pub fn retained_block_cost_seconds(&self) -> f64 {
        self.shards
            .iter()
            .map(|shard| shard.blocks.lock().total_cost())
            .sum()
    }

    /// Copies the full cache contents into a serializable snapshot.
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut snapshot = CacheSnapshot::default();
        for shard in &self.shards {
            let blocks = shard.blocks.lock();
            snapshot.blocks.extend(
                blocks
                    .entries
                    .iter()
                    .map(|(k, slot)| (k.clone(), slot.value.clone(), slot.cost)),
            );
            let tunings = shard.tunings.lock();
            snapshot.tunings.extend(
                tunings
                    .entries
                    .iter()
                    .map(|(k, slot)| (k.clone(), slot.value.clone(), slot.cost)),
            );
        }
        snapshot.seeds = self.seeds.entries();
        snapshot
    }

    /// Restores every entry of a snapshot (e.g. one loaded from disk) without
    /// fabricating compile-time activity: `restored` counts the entries read from
    /// the snapshot (never `insertions`), so metrics read zero compilation after a
    /// warm start. Capacity bounds still apply — a snapshot larger than the cache
    /// keeps only what fits under the eviction policy, and entries displaced that
    /// way are real displacements and do count in `evictions` (so
    /// `restored - evictions` reconciles with the entry count after a bounded warm
    /// start).
    pub fn absorb(&self, snapshot: CacheSnapshot) {
        // Each entry's persisted cost doubles as its observed compile cost: a
        // warm-started process then schedules (LPT) and evicts by what its
        // predecessor measured, instead of silently reverting to the a-priori
        // model for every restored key.
        for (key, value, cost) in snapshot.blocks {
            let shard = self.shard(&key);
            shard.observed.lock().record(&key, cost);
            let evicted = shard.blocks.lock().insert(key, value, cost);
            shard.counters.restored.fetch_add(1, Ordering::Relaxed);
            shard
                .counters
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
        for (key, value, cost) in snapshot.tunings {
            let shard = self.shard(&key);
            shard.observed.lock().record(&key, cost);
            let evicted = shard.tunings.lock().insert(key, value, cost);
            shard.counters.restored.fetch_add(1, Ordering::Relaxed);
            shard
                .counters
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
        // Seeds replay through the table's own record path, so depth-preferred
        // replacement and the capacity/byte bounds apply to restored entries
        // exactly as they do to live ones.
        self.seeds.absorb(snapshot.seeds);
    }
}

impl PulseCache for ShardedPulseCache {
    fn block(&self, key: &BlockKey) -> Option<CachedBlock> {
        let shard = self.shard(key);
        let found = shard.blocks.lock().get(key).cloned();
        shard.counters.record_lookup(found.is_some());
        found
    }

    fn insert_block(&self, key: BlockKey, value: CachedBlock) {
        let shard = self.shard(&key);
        // Once the key has a measured compile time, that observation *is* the
        // recompute cost the cache protects; the latency model only covers
        // never-observed entries (e.g. hand-inserted or migrated ones), scaled by
        // the fitted model→host factor once enough compilations calibrated it so
        // modeled and observed costs rank on one axis.
        let cost = shard
            .observed
            .lock()
            .get(&key)
            .filter(|seconds| *seconds > 0.0)
            .unwrap_or_else(|| {
                self.latency.block_recompute_seconds(&key, &value)
                    * self.calibration.lock().scale().unwrap_or(1.0)
            });
        let evicted = shard.blocks.lock().insert(key, value, cost);
        shard.counters.insertions.fetch_add(1, Ordering::Relaxed);
        shard
            .counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
    }

    fn tuning(&self, key: &BlockKey) -> Option<CachedTuning> {
        let shard = self.shard(key);
        let found = shard.tunings.lock().get(key).cloned();
        shard.counters.record_lookup(found.is_some());
        found
    }

    fn insert_tuning(&self, key: BlockKey, value: CachedTuning) {
        let shard = self.shard(&key);
        let cost = shard
            .observed
            .lock()
            .get(&key)
            .filter(|seconds| *seconds > 0.0)
            .unwrap_or_else(|| {
                self.latency.tuning_recompute_seconds(&key, &value)
                    * self.calibration.lock().scale().unwrap_or(1.0)
            });
        let evicted = shard.tunings.lock().insert(key, value, cost);
        shard.counters.insertions.fetch_add(1, Ordering::Relaxed);
        shard
            .counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
    }

    fn num_blocks(&self) -> usize {
        self.shards.iter().map(|s| s.blocks.lock().len()).sum()
    }

    fn num_tunings(&self) -> usize {
        self.shards.iter().map(|s| s.tunings.lock().len()).sum()
    }

    fn clear(&self) {
        // Observed compile times and warm-start seeds survive on purpose:
        // clearing stored results changes neither what the work costs to redo
        // nor what was learned about how to redo it faster.
        for shard in &self.shards {
            shard.blocks.lock().clear();
            shard.tunings.lock().clear();
        }
    }

    fn record_observed_cost(&self, key: &BlockKey, seconds: f64) {
        self.shard(key).observed.lock().record(key, seconds);
    }

    fn observed_cost(&self, key: &BlockKey) -> Option<f64> {
        self.shard(key).observed.lock().get(key)
    }

    fn record_cost_sample(&self, estimated_seconds: f64, observed_seconds: f64) {
        self.calibration
            .lock()
            .record(estimated_seconds, observed_seconds);
    }

    fn cost_model_scale(&self) -> Option<f64> {
        self.calibration.lock().scale()
    }

    fn seed(&self, key: &BlockKey) -> Option<SeedEntry> {
        self.seeds.probe(key)
    }

    fn record_seed(&self, key: &BlockKey, entry: SeedEntry) {
        self.seeds.record(key, entry);
    }

    fn record_search_outcome(&self, seeded: bool, grape_iterations: u64) {
        self.seeds.record_search_outcome(seeded, grape_iterations);
    }

    fn record_memo_outcome(&self, hits: u64, misses: u64, rejected: u64) {
        self.seeds.record_memo_outcome(hits, misses, rejected);
    }

    fn warm_start_stats(&self) -> WarmStartStats {
        self.seeds.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqc_circuit::Circuit;

    fn key(tag: usize) -> BlockKey {
        let mut circuit = Circuit::new(1);
        circuit.rz(0, tag as f64 * 0.1);
        BlockKey::from_bound_circuit(&circuit)
    }

    /// An entry whose recompute cost grows with `tag` (iterations and duration both
    /// scale with it).
    fn entry(tag: usize) -> CachedBlock {
        CachedBlock {
            duration_ns: tag as f64,
            converged: true,
            grape_iterations: tag,
        }
    }

    fn bounded(capacity: usize, eviction: EvictionPolicy) -> ShardedPulseCache {
        ShardedPulseCache::new(CacheConfig {
            shards: 1,
            max_blocks_per_shard: Some(capacity),
            max_tunings_per_shard: None,
            eviction,
            seeds: TableConfig::default(),
        })
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        let cache = ShardedPulseCache::new(CacheConfig {
            shards: 5,
            ..CacheConfig::default()
        });
        assert_eq!(cache.num_shards(), 8);
        assert_eq!(
            ShardedPulseCache::new(CacheConfig {
                shards: 0,
                ..CacheConfig::default()
            })
            .num_shards(),
            1
        );
    }

    #[test]
    fn lookups_count_hits_and_misses() {
        let cache = ShardedPulseCache::default();
        assert!(cache.block(&key(1)).is_none());
        cache.insert_block(key(1), entry(1));
        assert_eq!(cache.block(&key(1)).unwrap(), entry(1));
        let metrics = cache.metrics();
        assert_eq!(
            (metrics.hits, metrics.misses, metrics.insertions),
            (1, 1, 1)
        );
    }

    #[test]
    fn fifo_capacity_bound_evicts_oldest_first() {
        let cache = bounded(2, EvictionPolicy::Fifo);
        cache.insert_block(key(1), entry(1));
        cache.insert_block(key(2), entry(2));
        cache.insert_block(key(3), entry(3));
        assert_eq!(cache.num_blocks(), 2);
        assert_eq!(cache.metrics().evictions, 1);
        assert!(
            cache.block(&key(1)).is_none(),
            "oldest entry should be evicted"
        );
        assert!(cache.block(&key(3)).is_some());
    }

    #[test]
    fn fifo_overwrite_refreshes_the_entry_position() {
        let cache = bounded(2, EvictionPolicy::Fifo);
        cache.insert_block(key(1), entry(1));
        cache.insert_block(key(2), entry(2));
        // Overwriting key 1 makes key 2 the oldest write; the seed kept key 1's
        // original queue position and would wrongly evict the just-refreshed entry.
        cache.insert_block(key(1), entry(7));
        cache.insert_block(key(3), entry(3));
        assert!(
            cache.block(&key(1)).is_some(),
            "refreshed entry must survive"
        );
        assert!(cache.block(&key(2)).is_none(), "stalest entry is evicted");
        assert!(cache.block(&key(3)).is_some());
    }

    #[test]
    fn cost_aware_eviction_drops_cheapest_first_with_insertion_tiebreak() {
        let cache = bounded(2, EvictionPolicy::CostAware);
        // Expensive entry first, then a cheap one, then a medium one: the cheap
        // entry goes, not the oldest.
        cache.insert_block(key(1), entry(100));
        cache.insert_block(key(2), entry(1));
        cache.insert_block(key(3), entry(10));
        assert!(cache.block(&key(1)).is_some(), "costliest entry survives");
        assert!(cache.block(&key(2)).is_none(), "cheapest entry is evicted");
        assert!(cache.block(&key(3)).is_some());

        // Equal costs fall back to insertion order.
        let cache = bounded(2, EvictionPolicy::CostAware);
        cache.insert_block(key(1), entry(5));
        cache.insert_block(key(2), entry(5));
        cache.insert_block(key(3), entry(5));
        assert!(cache.block(&key(1)).is_none(), "tie evicts the oldest");
        assert!(cache.block(&key(2)).is_some());
        assert!(cache.block(&key(3)).is_some());
    }

    #[test]
    fn hit_weighted_eviction_keeps_the_hot_cheap_entry_over_the_cold_expensive_one() {
        // Pin exact costs through observations: key(1) costs 1 s but is hit five
        // times; key(2) costs 4 s and is never hit. Weighted value: 1×(1+5)=6 vs
        // 4×(1+0)=4 — the cold expensive entry is the victim.
        let cache = bounded(2, EvictionPolicy::HitWeighted);
        cache.record_observed_cost(&key(1), 1.0);
        cache.insert_block(key(1), entry(1));
        cache.record_observed_cost(&key(2), 4.0);
        cache.insert_block(key(2), entry(2));
        for _ in 0..5 {
            assert!(cache.block(&key(1)).is_some());
        }
        assert_eq!(cache.block_hit_count(&key(1)), Some(5));
        assert_eq!(cache.block_hit_count(&key(2)), Some(0));
        cache.record_observed_cost(&key(3), 2.0);
        cache.insert_block(key(3), entry(3));
        assert!(
            cache.block(&key(1)).is_some(),
            "hot cheap entry survives under hit weighting"
        );
        assert!(
            cache.block(&key(2)).is_none(),
            "cold expensive entry is the victim"
        );

        // Under plain cost-aware eviction the same traffic evicts the cheap entry
        // regardless of its popularity — the contrast hit weighting exists for.
        let cache = bounded(2, EvictionPolicy::CostAware);
        cache.record_observed_cost(&key(1), 1.0);
        cache.insert_block(key(1), entry(1));
        cache.record_observed_cost(&key(2), 4.0);
        cache.insert_block(key(2), entry(2));
        for _ in 0..5 {
            assert!(cache.block(&key(1)).is_some());
        }
        cache.record_observed_cost(&key(3), 2.0);
        cache.insert_block(key(3), entry(3));
        assert!(cache.block(&key(1)).is_none(), "cost-aware ignores hits");
        assert!(cache.block(&key(2)).is_some());
    }

    #[test]
    fn hit_counters_survive_overwrites() {
        let cache = bounded(4, EvictionPolicy::HitWeighted);
        cache.insert_block(key(1), entry(1));
        for _ in 0..3 {
            cache.block(&key(1));
        }
        assert_eq!(cache.block_hit_count(&key(1)), Some(3));
        // Recompiling (overwriting) the entry keeps its demand history.
        cache.insert_block(key(1), entry(7));
        assert_eq!(cache.block_hit_count(&key(1)), Some(3));
        // Eviction drops the counter with the entry.
        let tight = bounded(1, EvictionPolicy::Fifo);
        tight.insert_block(key(1), entry(1));
        tight.block(&key(1));
        tight.insert_block(key(2), entry(2));
        assert_eq!(tight.block_hit_count(&key(1)), None);
    }

    #[test]
    fn calibration_scales_model_costed_inserts() {
        let cache = ShardedPulseCache::new(CacheConfig {
            shards: 1,
            ..CacheConfig::default()
        });
        // Without samples the fallback is the raw model value.
        cache.insert_block(key(1), entry(10));
        let raw = cache
            .snapshot()
            .blocks
            .iter()
            .find(|(k, _, _)| *k == key(1))
            .map(|(_, _, cost)| *cost)
            .unwrap();
        assert_eq!(
            raw,
            LatencyModel::default().block_recompute_seconds(&key(1), &entry(10))
        );

        // Three samples at a consistent 0.01 host/model ratio calibrate the scale;
        // a later never-observed insert is costed at model × 0.01.
        for estimate in [10.0, 20.0, 40.0] {
            cache.record_cost_sample(estimate, estimate * 0.01);
        }
        let scale = cache.cost_model_scale().expect("calibrated");
        assert!((scale - 0.01).abs() < 1e-12);
        cache.insert_block(key(2), entry(10));
        let calibrated = cache
            .snapshot()
            .blocks
            .iter()
            .find(|(k, _, _)| *k == key(2))
            .map(|(_, _, cost)| *cost)
            .unwrap();
        let expected = LatencyModel::default().block_recompute_seconds(&key(2), &entry(10)) * scale;
        assert!((calibrated - expected).abs() <= 1e-15 + 1e-9 * expected);
    }

    #[test]
    fn observed_costs_override_the_model_in_eviction_metadata() {
        let cache = bounded(2, EvictionPolicy::CostAware);
        // key(1) is modeled cheap (1 iteration) but was observed to take 10 s;
        // key(2) is modeled expensive (100 iterations) but was observed at 1 ms;
        // key(3) has no observation and falls back to the model (~2.4 ms here).
        cache.record_observed_cost(&key(1), 10.0);
        cache.insert_block(key(1), entry(1));
        cache.record_observed_cost(&key(2), 1e-3);
        cache.insert_block(key(2), entry(100));
        cache.insert_block(key(3), entry(50));
        // Under the a-priori model key(1) would be the victim; with feedback the
        // observed-cheapest entry key(2) leaves instead.
        assert!(
            cache.block(&key(1)).is_some(),
            "observed-expensive survives"
        );
        assert!(cache.block(&key(2)).is_none(), "observed-cheap is evicted");
        assert!(cache.block(&key(3)).is_some());
        // The observation itself survives the eviction — a later re-insert of
        // key(2) still ranks by what the work actually cost.
        assert_eq!(cache.observed_cost(&key(2)), Some(1e-3));
        // And snapshots persist the observed cost as the entry's metadata.
        let snapshot = cache.snapshot();
        let persisted = snapshot
            .blocks
            .iter()
            .find(|(k, _, _)| *k == key(1))
            .map(|(_, _, cost)| *cost);
        assert_eq!(persisted, Some(10.0));
    }

    #[test]
    fn absorb_seeds_observed_costs_from_snapshot_metadata() {
        let source = ShardedPulseCache::default();
        source.record_observed_cost(&key(1), 7.5);
        source.insert_block(key(1), entry(1));
        source.insert_block(key(2), entry(2)); // never observed: model-costed

        let restored = ShardedPulseCache::default();
        restored.absorb(source.snapshot());
        // The persisted cost (observed where the source had an observation, model
        // otherwise) becomes the restored process's observation, so LPT and
        // eviction rank warm-started blocks by the predecessor's knowledge.
        assert_eq!(restored.observed_cost(&key(1)), Some(7.5));
        assert_eq!(
            restored.observed_cost(&key(2)),
            Some(LatencyModel::default().block_recompute_seconds(&key(2), &entry(2)))
        );
    }

    #[test]
    fn observed_cost_table_is_bounded_per_shard() {
        let cache = ShardedPulseCache::new(CacheConfig {
            shards: 1,
            ..CacheConfig::default()
        });
        let total = super::OBSERVED_CAPACITY_PER_SHARD + 8;
        for tag in 0..total {
            cache.record_observed_cost(&key(tag), tag as f64 + 1.0);
        }
        // The earliest observations age out; the newest survive.
        for tag in 0..8 {
            assert_eq!(cache.observed_cost(&key(tag)), None, "tag {tag} aged out");
        }
        for tag in (total - 8)..total {
            assert_eq!(cache.observed_cost(&key(tag)), Some(tag as f64 + 1.0));
        }
    }

    #[test]
    fn just_inserted_entry_is_never_its_own_victim() {
        let cache = bounded(1, EvictionPolicy::CostAware);
        cache.insert_block(key(1), entry(100));
        // Cheaper than the resident entry, but the insert call must still land it.
        cache.insert_block(key(2), entry(1));
        assert!(cache.block(&key(2)).is_some());
        assert!(cache.block(&key(1)).is_none());
    }

    #[test]
    fn cost_aware_retains_more_grape_seconds_than_fifo_at_equal_capacity() {
        // Repeated-block workload shape: a handful of expensive blocks compiled
        // early, then a churn of cheap single-purpose blocks. FIFO lets the churn
        // flush the expensive entries; cost-aware keeps them.
        let fifo = bounded(4, EvictionPolicy::Fifo);
        let cost_aware = bounded(4, EvictionPolicy::CostAware);
        for cache in [&fifo, &cost_aware] {
            for tag in 0..4 {
                cache.insert_block(key(1000 + tag), entry(500 + tag));
            }
            for tag in 0..16 {
                cache.insert_block(key(tag), entry(1 + tag % 3));
            }
        }
        assert_eq!(fifo.num_blocks(), 4);
        assert_eq!(cost_aware.num_blocks(), 4);
        assert!(
            cost_aware.retained_block_cost_seconds() > fifo.retained_block_cost_seconds(),
            "cost-aware must retain strictly more estimated GRAPE seconds: {} vs {}",
            cost_aware.retained_block_cost_seconds(),
            fifo.retained_block_cost_seconds(),
        );
        // The costliest entries specifically survived. (One of the four capacity
        // slots is always held by the most recent insert — an insert call never
        // evicts its own entry — so the steady state is the top `capacity - 1`
        // expensive entries plus the latest cheap one.)
        for tag in 1..4 {
            assert!(cost_aware.block(&key(1000 + tag)).is_some());
        }
    }

    #[test]
    fn concurrent_inserts_against_a_tight_bound_respect_capacity_and_balance_metrics() {
        for eviction in [EvictionPolicy::Fifo, EvictionPolicy::CostAware] {
            let capacity = 3;
            let cache = bounded(capacity, eviction);
            let threads = 8;
            let per_thread_ops = 200;
            let lookups_per_thread = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let cache = &cache;
                    let lookups = &lookups_per_thread;
                    scope.spawn(move || {
                        for i in 0..per_thread_ops {
                            let tag = (t * 31 + i * 7) % 24;
                            if i % 3 == 0 {
                                cache.block(&key(tag));
                                lookups.fetch_add(1, Ordering::Relaxed);
                            } else {
                                cache.insert_block(key(tag), entry(tag));
                            }
                            // The capacity bound must hold at every intermediate
                            // point, not just after the dust settles.
                            assert!(cache.num_blocks() <= capacity);
                        }
                    });
                }
            });
            let metrics = cache.metrics();
            assert!(cache.num_blocks() <= capacity, "{eviction:?}");
            assert_eq!(
                metrics.hits + metrics.misses,
                lookups_per_thread.load(Ordering::Relaxed),
                "{eviction:?}: every lookup is a hit or a miss"
            );
            let total_inserts = (threads * (per_thread_ops - per_thread_ops.div_ceil(3))) as u64;
            assert_eq!(metrics.insertions, total_inserts, "{eviction:?}");
            assert!(metrics.evictions > 0, "{eviction:?}: churn must evict");
        }
    }

    #[test]
    fn absorb_restores_without_perturbing_compile_time_counters() {
        let source = ShardedPulseCache::default();
        for tag in 0..10 {
            source.insert_block(key(tag), entry(tag));
        }
        let restored = ShardedPulseCache::default();
        restored.absorb(source.snapshot());
        let metrics = restored.metrics();
        assert_eq!(metrics.hits, 0);
        assert_eq!(metrics.misses, 0);
        assert_eq!(metrics.insertions, 0, "absorb must not count as insertions");
        assert_eq!(metrics.evictions, 0);
        assert_eq!(metrics.restored, 10);
        assert_eq!(restored.num_blocks(), 10);
    }

    #[test]
    fn bounded_absorb_reconciles_restored_against_evictions() {
        let source = ShardedPulseCache::default();
        for tag in 0..10 {
            source.insert_block(key(tag), entry(tag));
        }
        let bounded = bounded(3, EvictionPolicy::CostAware);
        bounded.absorb(source.snapshot());
        let metrics = bounded.metrics();
        assert_eq!(metrics.restored, 10);
        assert_eq!(metrics.insertions, 0);
        assert_eq!(metrics.evictions, 7, "capacity displacements stay visible");
        assert_eq!(
            (metrics.restored - metrics.evictions) as usize,
            bounded.num_blocks()
        );
    }

    #[test]
    fn snapshot_round_trips_through_absorb() {
        let cache = ShardedPulseCache::default();
        for tag in 0..20 {
            cache.insert_block(key(tag), entry(tag));
        }
        let snapshot = cache.snapshot();
        assert_eq!(snapshot.blocks.len(), 20);
        // Every snapshot entry carries the same cost the live cache computed.
        let model = LatencyModel::default();
        for (key, value, cost) in &snapshot.blocks {
            assert_eq!(*cost, model.block_recompute_seconds(key, value));
        }

        let restored = ShardedPulseCache::new(CacheConfig {
            shards: 4,
            ..CacheConfig::default()
        });
        restored.absorb(snapshot);
        assert_eq!(restored.num_blocks(), 20);
        for tag in 0..20 {
            assert_eq!(restored.block(&key(tag)).unwrap(), entry(tag));
        }
        // The multiset of retained costs is preserved exactly. (The *sums* can
        // differ in the last bits: shard layout and hash order change the f64
        // summation order, so comparing totals bitwise would be flaky.)
        let costs = |cache: &ShardedPulseCache| {
            let mut costs: Vec<f64> = cache.snapshot().blocks.iter().map(|(_, _, c)| *c).collect();
            costs.sort_by(f64::total_cmp);
            costs
        };
        assert_eq!(costs(&restored), costs(&cache));
        let drift =
            (restored.retained_block_cost_seconds() - cache.retained_block_cost_seconds()).abs();
        assert!(drift <= 1e-9 * cache.retained_block_cost_seconds().abs());
    }

    fn seed_entry(duration_ns: f64, iterations: usize) -> SeedEntry {
        SeedEntry {
            learning_rate: 0.1,
            decay_rate: 0.999,
            tuned: true,
            converged_duration_ns: Some(duration_ns),
            failed_below_ns: duration_ns * 0.5,
            probe_iterations: vec![(duration_ns, iterations)],
            pulse: Some(vqc_core::PulseSequence::zeros(2, 64, 0.5)),
        }
    }

    #[test]
    fn seeds_round_trip_through_snapshot_and_absorb() {
        let config = CacheConfig {
            seeds: TableConfig::default(),
            ..CacheConfig::default()
        };
        let source = ShardedPulseCache::new(config);
        PulseCache::record_seed(&source, &key(1), seed_entry(4.0, 30));
        PulseCache::record_seed(&source, &key(2), seed_entry(7.0, 90));
        assert_eq!(source.num_seeds(), 2);

        let restored = ShardedPulseCache::new(config);
        restored.absorb(source.snapshot());
        assert_eq!(restored.num_seeds(), 2);
        let found = PulseCache::seed(&restored, &key(2)).expect("seed restored");
        assert_eq!(found.converged_duration_ns, Some(7.0));
        assert_eq!(found.depth(), 90);
    }

    #[test]
    fn seed_byte_budget_evicts_waveform_payloads() {
        // A budget that fits roughly one pulse-carrying entry: inserting deeper
        // entries must displace shallower ones rather than grow without bound.
        let one_entry = seed_entry(4.0, 10).approx_bytes();
        let config = CacheConfig {
            seeds: TableConfig {
                enabled: true,
                capacity: 64,
                shards: 1,
                max_bytes: Some(one_entry + one_entry / 2),
            },
            ..CacheConfig::default()
        };
        let cache = ShardedPulseCache::new(config);
        for tag in 0..6 {
            PulseCache::record_seed(
                &cache,
                &key(tag),
                seed_entry(4.0 + tag as f64, 10 * (tag + 1)),
            );
        }
        assert!(
            cache.seed_bytes() <= one_entry + one_entry / 2,
            "byte budget must hold: {} > {}",
            cache.seed_bytes(),
            one_entry + one_entry / 2
        );
        assert!(cache.num_seeds() < 6, "budget must have evicted entries");
        assert!(PulseCache::warm_start_stats(&cache).table_evictions > 0);
    }

    #[test]
    fn compaction_drops_cheap_entries_and_respects_the_size_budget() {
        let cache = ShardedPulseCache::default();
        for tag in 0..10 {
            cache.insert_block(key(tag), entry(tag));
        }
        let full = cache.snapshot();

        // Cost floor: entry 0 does zero GRAPE work and is the only one below it.
        let mut floored = full.clone();
        let min_positive = full
            .blocks
            .iter()
            .map(|(_, _, c)| *c)
            .filter(|c| *c > 0.0)
            .fold(f64::INFINITY, f64::min);
        floored.compact(&CompactionPolicy {
            cost_floor_seconds: Some(min_positive),
            max_entries: None,
        });
        assert_eq!(floored.blocks.len(), 9);

        // Size budget: the 3 costliest entries survive.
        let mut budgeted = full.clone();
        budgeted.compact(&CompactionPolicy {
            cost_floor_seconds: None,
            max_entries: Some(3),
        });
        assert_eq!(budgeted.blocks.len(), 3);
        let kept_min = budgeted
            .blocks
            .iter()
            .map(|(_, _, c)| *c)
            .fold(f64::INFINITY, f64::min);
        let dropped_max = full
            .blocks
            .iter()
            .filter(|(k, _, _)| !budgeted.blocks.iter().any(|(bk, _, _)| bk == k))
            .map(|(_, _, c)| *c)
            .fold(0.0, f64::max);
        assert!(kept_min >= dropped_max);

        // The default policy is a no-op.
        let mut untouched = full.clone();
        untouched.compact(&CompactionPolicy::default());
        assert_eq!(untouched, full);
    }
}
