//! The lock-striped, sharded pulse cache.
//!
//! The seed's [`vqc_core::PulseLibrary`] guards its whole map with one mutex, which
//! serializes every lookup once block compilation runs on a worker pool. This cache
//! stripes the key space over independent shards, each guarded by its own mutex, so
//! lookups of different blocks proceed without contention. (A per-shard
//! reader-writer lock was measured slower here: the critical sections are a few
//! nanoseconds, so lock acquisition dominates, and a mutex acquire is cheaper than a
//! read-lock acquire once the key space is striped.) Keys are content-addressed: a
//! [`BlockKey`] is a canonical fingerprint of the block circuit, so two requests
//! compiling the same subcircuit hit the same shard slot regardless of which circuit
//! or which variational iteration they came from.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use vqc_core::{BlockKey, CachedBlock, CachedTuning, PulseCache};

/// Configuration of a [`ShardedPulseCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of independent shards (rounded up to a power of two, minimum 1).
    pub shards: usize,
    /// Maximum number of block entries per shard; the oldest entry of a full shard
    /// is evicted on insert. `None` disables eviction (the seed behavior).
    pub max_blocks_per_shard: Option<usize>,
    /// Maximum number of tuning entries per shard, as for `max_blocks_per_shard`.
    pub max_tunings_per_shard: Option<usize>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            max_blocks_per_shard: None,
            max_tunings_per_shard: None,
        }
    }
}

/// Point-in-time cache counters.
///
/// `hits`/`misses` count lookups of both block and tuning entries; `evictions`
/// counts entries displaced by the per-shard capacity bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheMetrics {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written (first insert or overwrite).
    pub insertions: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
}

/// Per-shard counters. Keeping one `Counters` inside every shard (rather than one
/// global set) spreads the atomic increments across as many cache lines as there are
/// shards, so metrics do not re-introduce the very contention the striping removes.
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl Counters {
    fn record_lookup(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One capacity-bounded key→value map; insertion order is tracked for FIFO eviction.
#[derive(Debug)]
struct BoundedMap<V> {
    entries: HashMap<BlockKey, V>,
    order: VecDeque<BlockKey>,
    capacity: Option<usize>,
}

impl<V> BoundedMap<V> {
    fn new(capacity: Option<usize>) -> Self {
        BoundedMap {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Inserts, returning the number of entries evicted to make room.
    fn insert(&mut self, key: BlockKey, value: V) -> u64 {
        if self.entries.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
        }
        let mut evicted = 0;
        if let Some(capacity) = self.capacity {
            while self.entries.len() > capacity.max(1) {
                // Entries overwritten rather than evicted keep their original queue
                // position; that is fine for a FIFO bound.
                if let Some(oldest) = self.order.pop_front() {
                    if self.entries.remove(&oldest).is_some() {
                        evicted += 1;
                    }
                } else {
                    break;
                }
            }
        }
        evicted
    }
}

#[derive(Debug)]
struct Shard {
    blocks: Mutex<BoundedMap<CachedBlock>>,
    tunings: Mutex<BoundedMap<CachedTuning>>,
    counters: Counters,
}

/// Serializable image of a cache's contents, for warm-start persistence.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// All cached block compilations.
    pub blocks: Vec<(BlockKey, CachedBlock)>,
    /// All cached flexible-compilation tunings.
    pub tunings: Vec<(BlockKey, CachedTuning)>,
}

/// A lock-striped, sharded, content-addressed implementation of [`PulseCache`].
#[derive(Debug)]
pub struct ShardedPulseCache {
    shards: Vec<Shard>,
    /// `shards.len() - 1`; shard count is a power of two so this masks a hash.
    mask: usize,
}

impl Default for ShardedPulseCache {
    fn default() -> Self {
        ShardedPulseCache::new(CacheConfig::default())
    }
}

impl ShardedPulseCache {
    /// Creates an empty cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        ShardedPulseCache {
            shards: (0..shards)
                .map(|_| Shard {
                    blocks: Mutex::new(BoundedMap::new(config.max_blocks_per_shard)),
                    tunings: Mutex::new(BoundedMap::new(config.max_tunings_per_shard)),
                    counters: Counters::default(),
                })
                .collect(),
            mask: shards - 1,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &BlockKey) -> &Shard {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & self.mask]
    }

    /// Current counter values, aggregated over all shards.
    pub fn metrics(&self) -> CacheMetrics {
        let mut metrics = CacheMetrics::default();
        for shard in &self.shards {
            metrics.hits += shard.counters.hits.load(Ordering::Relaxed);
            metrics.misses += shard.counters.misses.load(Ordering::Relaxed);
            metrics.insertions += shard.counters.insertions.load(Ordering::Relaxed);
            metrics.evictions += shard.counters.evictions.load(Ordering::Relaxed);
        }
        metrics
    }

    /// Copies the full cache contents into a serializable snapshot.
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut snapshot = CacheSnapshot::default();
        for shard in &self.shards {
            let blocks = shard.blocks.lock();
            snapshot
                .blocks
                .extend(blocks.entries.iter().map(|(k, v)| (k.clone(), v.clone())));
            let tunings = shard.tunings.lock();
            snapshot
                .tunings
                .extend(tunings.entries.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        snapshot
    }

    /// Inserts every entry of a snapshot (e.g. one loaded from disk).
    pub fn absorb(&self, snapshot: CacheSnapshot) {
        for (key, value) in snapshot.blocks {
            self.insert_block(key, value);
        }
        for (key, value) in snapshot.tunings {
            self.insert_tuning(key, value);
        }
    }
}

impl PulseCache for ShardedPulseCache {
    fn block(&self, key: &BlockKey) -> Option<CachedBlock> {
        let shard = self.shard(key);
        let found = shard.blocks.lock().entries.get(key).cloned();
        shard.counters.record_lookup(found.is_some());
        found
    }

    fn insert_block(&self, key: BlockKey, value: CachedBlock) {
        let shard = self.shard(&key);
        let evicted = shard.blocks.lock().insert(key, value);
        shard.counters.insertions.fetch_add(1, Ordering::Relaxed);
        shard
            .counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
    }

    fn tuning(&self, key: &BlockKey) -> Option<CachedTuning> {
        let shard = self.shard(key);
        let found = shard.tunings.lock().entries.get(key).cloned();
        shard.counters.record_lookup(found.is_some());
        found
    }

    fn insert_tuning(&self, key: BlockKey, value: CachedTuning) {
        let shard = self.shard(&key);
        let evicted = shard.tunings.lock().insert(key, value);
        shard.counters.insertions.fetch_add(1, Ordering::Relaxed);
        shard
            .counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
    }

    fn num_blocks(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.blocks.lock().entries.len())
            .sum()
    }

    fn num_tunings(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.tunings.lock().entries.len())
            .sum()
    }

    fn clear(&self) {
        for shard in &self.shards {
            let mut blocks = shard.blocks.lock();
            blocks.entries.clear();
            blocks.order.clear();
            let mut tunings = shard.tunings.lock();
            tunings.entries.clear();
            tunings.order.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqc_circuit::Circuit;

    fn key(tag: usize) -> BlockKey {
        let mut circuit = Circuit::new(1);
        circuit.rz(0, tag as f64 * 0.1);
        BlockKey::from_bound_circuit(&circuit)
    }

    fn entry(tag: usize) -> CachedBlock {
        CachedBlock {
            duration_ns: tag as f64,
            converged: true,
            grape_iterations: tag,
        }
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        let cache = ShardedPulseCache::new(CacheConfig {
            shards: 5,
            ..CacheConfig::default()
        });
        assert_eq!(cache.num_shards(), 8);
        assert_eq!(
            ShardedPulseCache::new(CacheConfig {
                shards: 0,
                ..CacheConfig::default()
            })
            .num_shards(),
            1
        );
    }

    #[test]
    fn lookups_count_hits_and_misses() {
        let cache = ShardedPulseCache::default();
        assert!(cache.block(&key(1)).is_none());
        cache.insert_block(key(1), entry(1));
        assert_eq!(cache.block(&key(1)).unwrap(), entry(1));
        let metrics = cache.metrics();
        assert_eq!(
            (metrics.hits, metrics.misses, metrics.insertions),
            (1, 1, 1)
        );
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let cache = ShardedPulseCache::new(CacheConfig {
            shards: 1,
            max_blocks_per_shard: Some(2),
            max_tunings_per_shard: None,
        });
        cache.insert_block(key(1), entry(1));
        cache.insert_block(key(2), entry(2));
        cache.insert_block(key(3), entry(3));
        assert_eq!(cache.num_blocks(), 2);
        assert_eq!(cache.metrics().evictions, 1);
        assert!(
            cache.block(&key(1)).is_none(),
            "oldest entry should be evicted"
        );
        assert!(cache.block(&key(3)).is_some());
    }

    #[test]
    fn snapshot_round_trips_through_absorb() {
        let cache = ShardedPulseCache::default();
        for tag in 0..20 {
            cache.insert_block(key(tag), entry(tag));
        }
        let snapshot = cache.snapshot();
        assert_eq!(snapshot.blocks.len(), 20);

        let restored = ShardedPulseCache::new(CacheConfig {
            shards: 4,
            ..CacheConfig::default()
        });
        restored.absorb(snapshot);
        assert_eq!(restored.num_blocks(), 20);
        for tag in 0..20 {
            assert_eq!(restored.block(&key(tag)).unwrap(), entry(tag));
        }
    }
}
