//! Live telemetry for the compilation service: latency histograms, lifecycle
//! tracing, and periodic metrics snapshots.
//!
//! The service core is instrumented at three altitudes, all cheap enough for the
//! scheduler hot path:
//!
//! * **Latency histograms** — [`LatencyHistogram`] is a hand-rolled log-bucketed
//!   histogram (one power-of-two bucket per latency octave, preallocated atomic
//!   counters, no allocation and no lock on record). The service keeps one pair
//!   per priority class: queue wait (admission → expansion) and end-to-end
//!   latency (submit → report). Percentiles come out of a [`HistogramSnapshot`].
//! * **Lifecycle tracing** — [`TraceRing`] is a bounded ring buffer of
//!   [`TraceEvent`]s (submitted → admitted → dispatched → compile-start →
//!   cache-hit/compiled → job-done → report, plus canceled/shed), each stamped
//!   with microseconds since the service started. [`chrome_trace_json`] renders
//!   the ring as Chrome `trace_event` JSON loadable in `chrome://tracing` or
//!   Perfetto, so "where did this slow job spend its time" is one dump away.
//! * **Metrics snapshots** — a background aggregator assembles a
//!   [`MetricsSnapshot`] (queue depths, worker utilization, rates, cache
//!   economics, per-class histograms) every [`TelemetryOptions::interval`],
//!   publishes it to every [`crate::CompilationRuntime::watch_metrics`]
//!   subscriber, and optionally appends it as a JSON line to
//!   [`TelemetryOptions::dump_path`] — the stream `vqc-top` renders and the
//!   `Watch` wire request forwards to remote operators.
//!
//! Instrumentation is gated on [`TelemetryOptions::enabled`]: a disabled
//! telemetry reduces every record call to one branch, which is what the
//! `telemetry_overhead` bench group compares against.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::time::{Duration, Instant};
use vqc_core::{CompileProfile, PHASE_COUNT};

use crate::service::Priority;

/// Number of phase rows telemetry tracks: the [`PHASE_COUNT`] compiler phases
/// plus one `"other"` residual row holding whatever part of a block's measured
/// compile time no phase claimed — with it, phase shares always sum to 100%.
pub const PHASE_ROWS: usize = PHASE_COUNT + 1;

/// Display name of phase row `index`: the compiler phase's name, or `"other"`
/// for the residual row.
pub fn phase_row_name(index: usize) -> &'static str {
    vqc_core::Phase::ALL
        .get(index)
        .map(|phase| phase.name())
        .unwrap_or("other")
}

/// Number of priority classes telemetry aggregates over ([`Priority::LOW`],
/// [`Priority::NORMAL`], [`Priority::HIGH`] — finer-grained priority values fold
/// into the class they schedule with).
pub const PRIORITY_CLASSES: usize = 3;

/// Display names of the priority classes, indexed by [`priority_class`].
pub const PRIORITY_CLASS_NAMES: [&str; PRIORITY_CLASSES] = ["low", "normal", "high"];

/// Folds a priority value into its telemetry class index: `0` below
/// [`Priority::NORMAL`], `1` below [`Priority::HIGH`], `2` otherwise.
pub fn priority_class(priority: Priority) -> usize {
    if priority >= Priority::HIGH {
        2
    } else if priority >= Priority::NORMAL {
        1
    } else {
        0
    }
}

/// Number of buckets in a [`LatencyHistogram`]: bucket 0 holds sub-microsecond
/// samples, bucket `i` holds `[2^(i-1), 2^i)` microseconds, and the last bucket
/// overflows (≈ 2^42 µs ≈ 51 days — nothing the service measures gets there).
pub const HISTOGRAM_BUCKETS: usize = 44;

/// A log-bucketed latency histogram with preallocated atomic buckets.
///
/// Recording is wait-free: compute the bucket index from the sample's
/// leading-zero count and `fetch_add` two counters. There is no allocation, no
/// lock, and no floating-point loop on the hot path, so the scheduler can stamp
/// every submission without measurable overhead. Buckets are one latency octave
/// wide (powers of two of a microsecond), which bounds any quantile estimate's
/// relative error at √2 — plenty for p50/p95/p99 dashboards.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    total_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Bucket index of a sample (public so snapshot consumers can label axes).
    pub fn bucket_index(seconds: f64) -> usize {
        let micros = (seconds * 1e6) as u64;
        if micros == 0 {
            0
        } else {
            // floor(log2(micros)) + 1, clamped into the overflow bucket.
            (64 - micros.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Representative latency (seconds) of a bucket: the geometric midpoint of
    /// its bounds (0.5 µs for the sub-microsecond bucket).
    pub fn bucket_value_seconds(index: usize) -> f64 {
        if index == 0 {
            0.5e-6
        } else {
            // Geometric mean of [2^(i-1), 2^i) µs: 2^(i-1) * √2 µs.
            (1u64 << (index - 1)) as f64 * std::f64::consts::SQRT_2 * 1e-6
        }
    }

    /// Records one latency sample. Negative samples clamp to zero.
    pub fn record(&self, seconds: f64) {
        let seconds = if seconds.is_finite() {
            seconds.max(0.0)
        } else {
            0.0
        };
        self.buckets[Self::bucket_index(seconds)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos
            .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the counters into an immutable, serializable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_seconds: self.total_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// An immutable copy of a [`LatencyHistogram`]'s counters, with quantile
/// extraction. Serializable, so it travels inside a [`MetricsSnapshot`] over
/// the wire.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples, in seconds (for mean extraction).
    pub total_seconds: f64,
    /// Per-bucket sample counts (see [`LatencyHistogram::bucket_value_seconds`]
    /// for the latency each index represents).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) in seconds, estimated as the matching
    /// bucket's geometric midpoint; `0.0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return LatencyHistogram::bucket_value_seconds(index);
            }
        }
        LatencyHistogram::bucket_value_seconds(self.buckets.len().saturating_sub(1))
    }

    /// Median latency in seconds.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile latency in seconds.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile latency in seconds.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Mean latency in seconds (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }
}

/// A life-cycle stage of one submission, as recorded in the trace ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceStage {
    /// `submit` was called (before admission control).
    Submitted,
    /// The submission was admitted into the bounded queue.
    Admitted,
    /// A block task of the submission was dispatched to a worker
    /// (`detail` = global dispatch sequence number).
    Dispatched,
    /// A worker began compiling a block (`detail` = block index).
    CompileStart,
    /// The block was served from the pulse cache (`detail` = block index).
    CacheHit,
    /// The block was compiled (GRAPE / tuning ran; `detail` = block index).
    Compiled,
    /// One job of the submission resolved (`detail` = job index).
    JobDone,
    /// The submission completed; its report is available.
    Report,
    /// The submission was canceled.
    Canceled,
    /// The submission was load-shed.
    Shed,
    /// A lock guard was held past `VQC_LOCK_HOLD_MS` while the lock-order
    /// checker was active (`detail` = milliseconds held; `submission` = 0 —
    /// the event attributes to a lock site, not a submission).
    LockHold,
    /// A compile-phase span from the armed profiler, nested under the block's
    /// compile span (`detail` = [`vqc_core::Phase`] index; the event's
    /// `span_micros` carries the phase's duration).
    Phase,
}

impl TraceStage {
    /// Stable lowercase name (used as the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            TraceStage::Submitted => "submitted",
            TraceStage::Admitted => "admitted",
            TraceStage::Dispatched => "dispatched",
            TraceStage::CompileStart => "compile-start",
            TraceStage::CacheHit => "cache-hit",
            TraceStage::Compiled => "compiled",
            TraceStage::JobDone => "job-done",
            TraceStage::Report => "report",
            TraceStage::Canceled => "canceled",
            TraceStage::Shed => "shed",
            TraceStage::LockHold => "lock-hold",
            TraceStage::Phase => "phase",
        }
    }
}

/// One entry of the lifecycle trace ring.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Service-assigned submission id the event belongs to.
    pub submission: u64,
    /// Client id the submission was attributed to, if any.
    pub client: Option<u64>,
    /// Which life-cycle stage.
    pub stage: TraceStage,
    /// Monotonic microseconds since the service started (a span's start time).
    pub micros: u64,
    /// Stage-specific detail (block index, job index, dispatch sequence, or
    /// phase index for [`TraceStage::Phase`]).
    pub detail: u64,
    /// Span duration in microseconds; `0` marks an instant event. Only
    /// [`TraceStage::Phase`] events carry a duration today.
    pub span_micros: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s. When full, the oldest event is
/// overwritten — the ring always holds the most recent window of lifecycle
/// activity, sized by [`TelemetryOptions::trace_capacity`].
#[derive(Debug)]
pub struct TraceRing {
    inner: Mutex<TraceRingInner>,
    capacity: usize,
}

#[derive(Debug)]
struct TraceRingInner {
    /// Storage; grows to `capacity` then recycles slots through `head`.
    events: Vec<TraceEvent>,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    /// Events overwritten so far (how much history the ring has shed).
    dropped: u64,
}

impl TraceRing {
    /// Creates an empty ring holding at most `capacity` events (minimum 16).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(16);
        TraceRing {
            inner: Mutex::new(TraceRingInner {
                events: Vec::with_capacity(capacity.min(4096)),
                head: 0,
                dropped: 0,
            }),
            capacity,
        }
    }

    /// Appends one event, overwriting the oldest once at capacity.
    pub fn push(&self, event: TraceEvent) {
        let mut inner = self.inner.lock();
        if inner.events.len() < self.capacity {
            inner.events.push(event);
        } else {
            let head = inner.head;
            inner.events[head] = event;
            inner.head = (head + 1) % self.capacity;
            inner.dropped += 1;
        }
    }

    /// The buffered events in chronological order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock();
        let mut out = Vec::with_capacity(inner.events.len());
        out.extend_from_slice(&inner.events[inner.head..]);
        out.extend_from_slice(&inner.events[..inner.head]);
        out
    }

    /// How many events have been overwritten since the ring filled.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }
}

/// Renders trace events as Chrome `trace_event` JSON (the "JSON Array Format"
/// with a `traceEvents` envelope), loadable in `chrome://tracing` and Perfetto.
/// Each lifecycle stage becomes a thread-scoped instant event on the virtual
/// thread of its submission, so one submission reads as one timeline row.
/// Events carrying a `span_micros` duration — the armed profiler's
/// [`TraceStage::Phase`] children — render as complete (`"ph":"X"`) spans
/// named after their compile phase, nested under the block's compile span.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut json = String::with_capacity(events.len() * 96 + 64);
    json.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (index, event) in events.iter().enumerate() {
        if index > 0 {
            json.push(',');
        }
        let client = event
            .client
            .map(|c| c.to_string())
            .unwrap_or_else(|| "null".to_string());
        let name = if event.stage == TraceStage::Phase {
            phase_row_name(event.detail as usize)
        } else {
            event.stage.name()
        };
        if event.span_micros > 0 {
            json.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"detail\":{},\"client\":{}}}}}",
                name,
                event.submission,
                event.micros,
                event.span_micros,
                event.detail,
                client,
            ));
        } else {
            json.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"detail\":{},\"client\":{}}}}}",
                name,
                event.submission,
                event.micros,
                event.detail,
                client,
            ));
        }
    }
    json.push_str("]}\n");
    json
}

/// Configuration of the telemetry layer.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryOptions {
    /// Master switch. Disabled telemetry records nothing (histograms, trace,
    /// snapshots) and starts no aggregator thread; every instrumentation site
    /// reduces to one branch. On by default.
    pub enabled: bool,
    /// Period of the background [`MetricsSnapshot`] aggregator (clamped to at
    /// least 10 ms).
    pub interval: Duration,
    /// If set, every periodic snapshot is appended to this file as one JSON
    /// line (the schema `vqc-top --json` prints and the README documents).
    pub dump_path: Option<PathBuf>,
    /// Capacity of the lifecycle trace ring, in events.
    pub trace_capacity: usize,
}

impl Default for TelemetryOptions {
    /// Defaults to enabled, a 1 s interval, no dump file, and a 4096-event
    /// trace ring; the `VQC_TELEMETRY` (`0`/`off`/`false` disable),
    /// `VQC_METRICS_INTERVAL` (seconds, fractional allowed),
    /// `VQC_METRICS_DUMP` (path), and `VQC_TRACE_CAPACITY` (events)
    /// environment variables override.
    fn default() -> Self {
        let enabled = !matches!(
            std::env::var("VQC_TELEMETRY")
                .unwrap_or_default()
                .to_ascii_lowercase()
                .as_str(),
            "0" | "off" | "false" | "no"
        );
        let interval = std::env::var("VQC_METRICS_INTERVAL")
            .ok()
            .and_then(|raw| raw.parse::<f64>().ok())
            .filter(|s| s.is_finite() && *s > 0.0)
            .map(Duration::from_secs_f64)
            .unwrap_or(Duration::from_secs(1));
        let dump_path = std::env::var("VQC_METRICS_DUMP")
            .ok()
            .filter(|p| !p.is_empty())
            .map(PathBuf::from);
        let trace_capacity = std::env::var("VQC_TRACE_CAPACITY")
            .ok()
            .and_then(|raw| raw.parse::<usize>().ok())
            .unwrap_or(4096);
        TelemetryOptions {
            enabled,
            interval: interval.max(Duration::from_millis(10)),
            dump_path,
            trace_capacity,
        }
    }
}

impl TelemetryOptions {
    /// Enables or disables the whole layer.
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Replaces the aggregator interval (clamped to at least 10 ms).
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval.max(Duration::from_millis(10));
        self
    }

    /// Replaces the JSON-lines dump path.
    pub fn with_dump_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.dump_path = Some(path.into());
        self
    }

    /// Replaces the trace-ring capacity.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

/// One compile-phase row inside a [`MetricsSnapshot`]: the distribution of
/// per-block durations for this phase and its share of all profiled compile
/// time. Rows only accumulate while the compile-phase profiler is armed
/// (`VQC_PROFILE=1` on the server); the last row is the `"other"` residual
/// (measured compile time no phase claimed), so shares sum to 100%.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseMetrics {
    /// Stable phase name ([`phase_row_name`]).
    pub name: String,
    /// Distribution of per-block durations spent in this phase (seconds).
    pub histogram: HistogramSnapshot,
    /// This phase's fraction of all profiled compile seconds (`0.0..=1.0`).
    pub share: f64,
}

/// Per-priority-class latency distributions inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClassLatency {
    /// Class index (see [`PRIORITY_CLASS_NAMES`]).
    pub class: u8,
    /// Admission → expansion wait of every submission that left the queue
    /// (dispatched, canceled, or shed).
    pub queue_wait: HistogramSnapshot,
    /// Submit → report latency of completed submissions.
    pub submit_to_report: HistogramSnapshot,
}

/// One periodic observation of the whole service, assembled by the telemetry
/// aggregator (or on demand via
/// [`crate::CompilationRuntime::telemetry_snapshot`]). Serializable both over
/// the wire (`Response::MetricsTick`) and as a JSON line
/// ([`MetricsSnapshot::to_json_line`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonically increasing snapshot number (process-wide). A pollster
    /// seeing this decrease knows the server restarted.
    pub seq: u64,
    /// Seconds since the service started.
    pub uptime_seconds: f64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Workers executing a block task at snapshot time (utilization numerator).
    pub busy_workers: u64,
    /// Admitted submissions not yet expanded, per priority class.
    pub queued_by_class: [u64; PRIORITY_CLASSES],
    /// Submissions admitted but not yet completed (queue depth incl. running).
    pub outstanding: u64,
    /// Block tasks in the ready queue (stale priority-inheritance duplicates
    /// included — an upper bound on schedulable work).
    pub ready_tasks: u64,
    /// Submissions admitted so far.
    pub submissions: u64,
    /// Submissions completed so far.
    pub completed: u64,
    /// Submissions load-shed so far.
    pub shed: u64,
    /// Submissions rejected at admission so far.
    pub rejected: u64,
    /// Submissions canceled so far.
    pub canceled: u64,
    /// Pulse-cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Pulse-cache lookups that missed.
    pub cache_misses: u64,
    /// Pulse-cache entries written by compilation.
    pub cache_insertions: u64,
    /// Pulse-cache entries displaced by capacity bounds.
    pub cache_evictions: u64,
    /// Block entries currently resident in the cache.
    pub cache_entries: u64,
    /// Block compilations that actually ran GRAPE / tuning.
    pub unique_compilations: u64,
    /// Block requests coalesced onto another request's task.
    pub coalesced_waits: u64,
    /// Lifecycle events overwritten in the trace ring so far.
    pub trace_dropped: u64,
    /// Transposition-table and eigendecomposition-memo warm-start counters:
    /// seed probes (hit/miss/rejected/evicted), memo outcomes, and GRAPE
    /// iterations split seeded-vs-cold.
    pub warm_start: vqc_core::WarmStartStats,
    /// Warm-start seed entries currently resident.
    pub seed_entries: u64,
    /// Compile-phase breakdown from the armed profiler (`VQC_PROFILE=1`):
    /// one row per [`vqc_core::Phase`] plus the `"other"` residual. Empty
    /// while the profiler is disarmed or before any profiled compilation.
    pub phases: Vec<PhaseMetrics>,
    /// Cumulative Jacobi sweeps performed by profiled eigendecompositions.
    pub jacobi_sweeps: u64,
    /// Per-class latency distributions (index == class).
    pub classes: Vec<ClassLatency>,
}

impl MetricsSnapshot {
    /// Cache hit ratio over all lookups so far (`0.0` before any lookup).
    pub fn cache_hit_ratio(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Fraction of the worker pool busy at snapshot time.
    pub fn worker_utilization(&self) -> f64 {
        if self.workers == 0 {
            0.0
        } else {
            self.busy_workers as f64 / self.workers as f64
        }
    }

    /// Renders the snapshot as one JSON line (no trailing newline): the
    /// `VQC_METRICS_DUMP` / `vqc-top --json` schema. Histograms are summarized
    /// as count/mean/p50/p95/p99 (seconds); raw buckets stay wire-only.
    pub fn to_json_line(&self) -> String {
        let phases = self
            .phases
            .iter()
            .map(|phase| {
                format!(
                    "{{\"name\":\"{}\",\"share\":{:.4},\"durations\":{}}}",
                    phase.name,
                    phase.share,
                    histogram_json(&phase.histogram),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let classes = self
            .classes
            .iter()
            .map(|class| {
                let name = PRIORITY_CLASS_NAMES
                    .get(class.class as usize)
                    .copied()
                    .unwrap_or("unknown");
                format!(
                    "{{\"class\":\"{}\",\"queue_wait\":{},\"submit_to_report\":{}}}",
                    name,
                    histogram_json(&class.queue_wait),
                    histogram_json(&class.submit_to_report),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"seq\":{},\"uptime_seconds\":{:.6},\"workers\":{},\"busy_workers\":{},\
             \"queued_by_class\":[{},{},{}],\"outstanding\":{},\"ready_tasks\":{},\
             \"submissions\":{},\"completed\":{},\"shed\":{},\"rejected\":{},\"canceled\":{},\
             \"cache\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\
             \"entries\":{},\"hit_ratio\":{:.4}}},\"unique_compilations\":{},\
             \"coalesced_waits\":{},\"trace_dropped\":{},\
             \"warm_start\":{{\"table_hits\":{},\"table_misses\":{},\"table_rejected\":{},\
             \"table_evictions\":{},\"seed_entries\":{},\"memo_hits\":{},\"memo_misses\":{},\
             \"memo_rejected\":{},\"seeded_iterations\":{},\"cold_iterations\":{}}},\
             \"phases\":[{}],\"jacobi_sweeps\":{},\
             \"classes\":[{}]}}",
            self.seq,
            self.uptime_seconds,
            self.workers,
            self.busy_workers,
            self.queued_by_class[0],
            self.queued_by_class[1],
            self.queued_by_class[2],
            self.outstanding,
            self.ready_tasks,
            self.submissions,
            self.completed,
            self.shed,
            self.rejected,
            self.canceled,
            self.cache_hits,
            self.cache_misses,
            self.cache_insertions,
            self.cache_evictions,
            self.cache_entries,
            self.cache_hit_ratio(),
            self.unique_compilations,
            self.coalesced_waits,
            self.trace_dropped,
            self.warm_start.table_hits,
            self.warm_start.table_misses,
            self.warm_start.table_rejected,
            self.warm_start.table_evictions,
            self.seed_entries,
            self.warm_start.memo_hits,
            self.warm_start.memo_misses,
            self.warm_start.memo_rejected,
            self.warm_start.seeded_iterations,
            self.warm_start.cold_iterations,
            phases,
            self.jacobi_sweeps,
            classes,
        )
    }
}

fn histogram_json(histogram: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"mean_seconds\":{:.9},\"p50_seconds\":{:.9},\"p95_seconds\":{:.9},\"p99_seconds\":{:.9}}}",
        histogram.count,
        histogram.mean(),
        histogram.p50(),
        histogram.p95(),
        histogram.p99(),
    )
}

/// The shared instrumentation state the service core records into.
#[derive(Debug)]
pub(crate) struct Telemetry {
    enabled: bool,
    epoch: Instant,
    queue_wait: [LatencyHistogram; PRIORITY_CLASSES],
    submit_to_report: [LatencyHistogram; PRIORITY_CLASSES],
    /// Per-block durations of each compile phase (plus the `"other"` residual
    /// row); only populated while the compile-phase profiler is armed.
    phase_durations: [LatencyHistogram; PHASE_ROWS],
    /// Cumulative Jacobi sweeps from profiled eigendecompositions.
    jacobi_sweeps: AtomicU64,
    trace: TraceRing,
    busy_workers: AtomicU64,
    seq: AtomicU64,
    /// `(seq, uptime_seconds)` of the most recently assembled snapshot, for
    /// enriching `Stats` responses without rebuilding one.
    last: Mutex<(u64, f64)>,
    subscribers: Mutex<Vec<Sender<MetricsSnapshot>>>,
    /// Set once the aggregator has emitted its final (post-drain) snapshot;
    /// subscribers registered afterwards are disconnected immediately.
    closed: Mutex<bool>,
}

impl Telemetry {
    pub(crate) fn new(options: &TelemetryOptions) -> Self {
        Telemetry {
            enabled: options.enabled,
            epoch: Instant::now(),
            queue_wait: std::array::from_fn(|_| LatencyHistogram::new()),
            submit_to_report: std::array::from_fn(|_| LatencyHistogram::new()),
            phase_durations: std::array::from_fn(|_| LatencyHistogram::new()),
            jacobi_sweeps: AtomicU64::new(0),
            trace: TraceRing::new(options.trace_capacity),
            busy_workers: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            last: Mutex::new((0, 0.0)),
            subscribers: Mutex::new(Vec::new()),
            // Disabled telemetry never ticks: subscribers would block forever,
            // so report disconnection immediately instead.
            closed: Mutex::new(!options.enabled),
        }
    }

    /// Seconds since the service started.
    pub(crate) fn uptime_seconds(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Microseconds since the service started.
    pub(crate) fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records one lifecycle event (no-op when disabled).
    pub(crate) fn trace(
        &self,
        stage: TraceStage,
        submission: u64,
        client: Option<u64>,
        detail: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.trace.push(TraceEvent {
            submission,
            client,
            stage,
            micros: self.now_micros(),
            detail,
            span_micros: 0,
        });
    }

    /// Records one block's [`CompileProfile`] from the armed profiler: each
    /// phase's duration lands in its histogram, the unattributed remainder of
    /// `measured_seconds` lands in the `"other"` residual row, and the block's
    /// phases are pushed into the trace ring as [`TraceStage::Phase`] child
    /// spans laid end-to-end from `started_micros` (the block's compile-start
    /// stamp). No-op when telemetry is disabled or the profile is empty.
    pub(crate) fn record_compile_profile(
        &self,
        submission: u64,
        client: Option<u64>,
        started_micros: u64,
        profile: &CompileProfile,
        measured_seconds: f64,
    ) {
        if !self.enabled || profile.is_empty() {
            return;
        }
        let mut cursor = started_micros;
        for index in 0..PHASE_COUNT {
            let seconds = profile.phase_seconds[index];
            if profile.phase_counts[index] == 0 && seconds <= 0.0 {
                continue;
            }
            self.phase_durations[index].record(seconds);
            let span_micros = (seconds * 1e6) as u64;
            self.trace.push(TraceEvent {
                submission,
                client,
                stage: TraceStage::Phase,
                micros: cursor,
                detail: index as u64,
                span_micros: span_micros.max(1),
            });
            cursor += span_micros;
        }
        let residual = (measured_seconds - profile.total_seconds()).max(0.0);
        self.phase_durations[PHASE_COUNT].record(residual);
        self.jacobi_sweeps
            .fetch_add(profile.jacobi_sweeps, Ordering::Relaxed);
    }

    /// Assembles the per-phase rows of a snapshot: one [`PhaseMetrics`] per
    /// phase that recorded at least one sample (plus the residual row), with
    /// shares normalized over all profiled compile seconds. Empty while the
    /// profiler has recorded nothing.
    pub(crate) fn phase_metrics(&self) -> Vec<PhaseMetrics> {
        let snapshots: Vec<HistogramSnapshot> = self
            .phase_durations
            .iter()
            .map(LatencyHistogram::snapshot)
            .collect();
        if snapshots.iter().all(|s| s.count == 0) {
            return Vec::new();
        }
        let total: f64 = snapshots.iter().map(|s| s.total_seconds).sum();
        snapshots
            .into_iter()
            .enumerate()
            .map(|(index, histogram)| PhaseMetrics {
                name: phase_row_name(index).to_string(),
                share: if total > 0.0 {
                    histogram.total_seconds / total
                } else {
                    0.0
                },
                histogram,
            })
            .collect()
    }

    /// Cumulative Jacobi sweeps from profiled eigendecompositions.
    pub(crate) fn jacobi_sweeps(&self) -> u64 {
        self.jacobi_sweeps.load(Ordering::Relaxed)
    }

    /// Records a long lock hold reported by the `parking_lot` lock-order
    /// checker (`VQC_LOCK_CHECK=1`); `held_ms` lands in the event's `detail`.
    pub(crate) fn trace_lock_hold(&self, held_ms: u64) {
        self.trace(TraceStage::LockHold, 0, None, held_ms);
    }

    pub(crate) fn record_queue_wait(&self, priority: Priority, seconds: f64) {
        if self.enabled {
            self.queue_wait[priority_class(priority)].record(seconds);
        }
    }

    pub(crate) fn record_submit_to_report(&self, priority: Priority, seconds: f64) {
        if self.enabled {
            self.submit_to_report[priority_class(priority)].record(seconds);
        }
    }

    pub(crate) fn worker_busy(&self) {
        if self.enabled {
            self.busy_workers.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn worker_idle(&self) {
        if self.enabled {
            self.busy_workers.fetch_sub(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn busy_workers(&self) -> u64 {
        self.busy_workers.load(Ordering::Relaxed)
    }

    /// Allocates the next snapshot sequence number and stamps `last`.
    pub(crate) fn next_seq(&self) -> (u64, f64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let uptime = self.uptime_seconds();
        *self.last.lock() = (seq, uptime);
        (seq, uptime)
    }

    /// `(seq, uptime_seconds)` of the most recent snapshot (zeros before any).
    pub(crate) fn last_snapshot(&self) -> (u64, f64) {
        *self.last.lock()
    }

    pub(crate) fn class_latencies(&self) -> Vec<ClassLatency> {
        (0..PRIORITY_CLASSES)
            .map(|class| ClassLatency {
                class: class as u8,
                queue_wait: self.queue_wait[class].snapshot(),
                submit_to_report: self.submit_to_report[class].snapshot(),
            })
            .collect()
    }

    pub(crate) fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.events()
    }

    pub(crate) fn trace_dropped(&self) -> u64 {
        self.trace.dropped()
    }

    /// Registers a snapshot subscriber. A closed telemetry returns a receiver
    /// that reports disconnection immediately.
    pub(crate) fn subscribe(&self) -> Receiver<MetricsSnapshot> {
        let (sender, receiver) = std::sync::mpsc::channel();
        if !*self.closed.lock() {
            self.subscribers.lock().push(sender);
        }
        receiver
    }

    /// Fans a snapshot out to every live subscriber, pruning dead ones.
    pub(crate) fn publish(&self, snapshot: &MetricsSnapshot) {
        self.subscribers
            .lock()
            .retain(|subscriber| subscriber.send(snapshot.clone()).is_ok());
    }

    /// Drops every subscriber (their receivers disconnect) and refuses new
    /// ones. Called after the aggregator's final post-drain snapshot.
    pub(crate) fn close_subscribers(&self) {
        *self.closed.lock() = true;
        self.subscribers.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_of_micros() {
        assert_eq!(LatencyHistogram::bucket_index(0.0), 0);
        assert_eq!(LatencyHistogram::bucket_index(0.9e-6), 0);
        assert_eq!(LatencyHistogram::bucket_index(1.0e-6), 1);
        assert_eq!(LatencyHistogram::bucket_index(1.9e-6), 1);
        assert_eq!(LatencyHistogram::bucket_index(2.0e-6), 2);
        assert_eq!(LatencyHistogram::bucket_index(1.0e-3), 10);
        assert_eq!(LatencyHistogram::bucket_index(1.0), 20);
        assert_eq!(LatencyHistogram::bucket_index(1.0e9), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_come_from_the_right_octave() {
        let histogram = LatencyHistogram::new();
        // 90 samples at ~1 ms, 10 at ~1 s.
        for _ in 0..90 {
            histogram.record(1.1e-3);
        }
        for _ in 0..10 {
            histogram.record(1.3);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 100);
        let p50 = snapshot.p50();
        assert!((0.5e-3..4e-3).contains(&p50), "p50 {p50}");
        let p99 = snapshot.p99();
        assert!((0.5..4.0).contains(&p99), "p99 {p99}");
        assert!(snapshot.mean() > 0.1 && snapshot.mean() < 0.2);
        // An empty histogram is all zeros, not NaN.
        let empty = LatencyHistogram::new().snapshot();
        assert_eq!(empty.p50(), 0.0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn trace_ring_overwrites_oldest_and_reports_drops() {
        let ring = TraceRing::new(16);
        for i in 0..20u64 {
            ring.push(TraceEvent {
                submission: i,
                client: None,
                stage: TraceStage::Submitted,
                micros: i,
                detail: 0,
                span_micros: 0,
            });
        }
        let events = ring.events();
        assert_eq!(events.len(), 16);
        assert_eq!(events.first().unwrap().submission, 4);
        assert_eq!(events.last().unwrap().submission, 19);
        assert_eq!(ring.dropped(), 4);
        // Chronological order is preserved across the wrap point.
        assert!(events.windows(2).all(|w| w[0].micros <= w[1].micros));
    }

    #[test]
    fn chrome_trace_json_renders_every_event() {
        let events = vec![
            TraceEvent {
                submission: 3,
                client: Some(7),
                stage: TraceStage::Submitted,
                micros: 10,
                detail: 0,
                span_micros: 0,
            },
            TraceEvent {
                submission: 3,
                client: Some(7),
                stage: TraceStage::Report,
                micros: 450,
                detail: 0,
                span_micros: 0,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"submitted\""));
        assert!(json.contains("\"name\":\"report\""));
        assert!(json.contains("\"ts\":450"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn chrome_trace_renders_phase_spans_as_complete_events() {
        let events = vec![TraceEvent {
            submission: 5,
            client: None,
            stage: TraceStage::Phase,
            micros: 100,
            detail: 1, // eigendecomposition
            span_micros: 250,
        }];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"name\":\"eigendecomposition\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":250"));
        assert!(json.contains("\"cat\":\"phase\""));
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        // Pinned: an empty snapshot reports 0.0 for every quantile, never NaN
        // and never the overflow bucket's midpoint.
        let empty = HistogramSnapshot::default();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), 0.0, "quantile({q}) of empty histogram");
        }
        let unrecorded = LatencyHistogram::new().snapshot();
        assert_eq!(unrecorded.p50(), 0.0);
        assert_eq!(unrecorded.p95(), 0.0);
        assert_eq!(unrecorded.p99(), 0.0);
    }

    #[test]
    fn phase_rows_cover_all_phases_plus_residual() {
        assert_eq!(PHASE_ROWS, PHASE_COUNT + 1);
        let names: Vec<&str> = (0..PHASE_ROWS).map(phase_row_name).collect();
        assert_eq!(names.last(), Some(&"other"));
        assert_eq!(names[0], "hamiltonian_assembly");
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), PHASE_ROWS);
    }

    #[test]
    fn recorded_profile_shares_sum_to_one() {
        let telemetry = Telemetry::new(&TelemetryOptions::default().with_enabled(true));
        let mut profile = CompileProfile::default();
        profile.phase_seconds[0] = 0.2;
        profile.phase_counts[0] = 1;
        profile.phase_seconds[1] = 0.5;
        profile.phase_counts[1] = 4;
        profile.jacobi_sweeps = 12;
        // measured 1.0 s, phases claim 0.7 s → residual 0.3 s.
        telemetry.record_compile_profile(1, None, 1000, &profile, 1.0);
        let phases = telemetry.phase_metrics();
        assert!(!phases.is_empty());
        let share_sum: f64 = phases.iter().map(|p| p.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
        let other = phases.last().unwrap();
        assert_eq!(other.name, "other");
        assert!((other.histogram.total_seconds - 0.3).abs() < 1e-6);
        assert_eq!(telemetry.jacobi_sweeps(), 12);
        // The trace ring gained one Phase child span per nonzero phase.
        let spans: Vec<TraceEvent> = telemetry
            .trace_events()
            .into_iter()
            .filter(|e| e.stage == TraceStage::Phase)
            .collect();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|e| e.span_micros > 0));
        assert_eq!(spans[0].micros, 1000);
    }

    #[test]
    fn json_line_is_well_formed() {
        let snapshot = MetricsSnapshot {
            seq: 2,
            uptime_seconds: 1.5,
            workers: 4,
            busy_workers: 1,
            cache_hits: 3,
            cache_misses: 1,
            warm_start: vqc_core::WarmStartStats {
                table_hits: 5,
                table_misses: 2,
                seeded_iterations: 120,
                cold_iterations: 480,
                memo_hits: 9,
                ..vqc_core::WarmStartStats::default()
            },
            seed_entries: 7,
            classes: vec![ClassLatency {
                class: 1,
                ..ClassLatency::default()
            }],
            ..MetricsSnapshot::default()
        };
        let line = snapshot.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"seq\":2"));
        assert!(line.contains("\"hit_ratio\":0.7500"));
        assert!(line.contains("\"class\":\"normal\""));
        assert!(line.contains(
            "\"warm_start\":{\"table_hits\":5,\"table_misses\":2,\"table_rejected\":0,\
             \"table_evictions\":0,\"seed_entries\":7,\"memo_hits\":9,\"memo_misses\":0,\
             \"memo_rejected\":0,\"seeded_iterations\":120,\"cold_iterations\":480}"
        ));
        assert!(line.contains("\"phases\":[],\"jacobi_sweeps\":0"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn json_line_renders_phase_rows() {
        let snapshot = MetricsSnapshot {
            phases: vec![PhaseMetrics {
                name: "propagation".to_string(),
                histogram: HistogramSnapshot {
                    count: 3,
                    total_seconds: 0.6,
                    buckets: vec![0; HISTOGRAM_BUCKETS],
                },
                share: 0.75,
            }],
            jacobi_sweeps: 42,
            ..MetricsSnapshot::default()
        };
        let line = snapshot.to_json_line();
        assert!(line.contains("\"phases\":[{\"name\":\"propagation\",\"share\":0.7500"));
        assert!(line.contains("\"jacobi_sweeps\":42"));
    }
}
