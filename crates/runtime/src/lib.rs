//! Concurrent compilation service for the partial compiler.
//!
//! The paper amortizes GRAPE cost by caching pulses for repeated subcircuit blocks
//! across variational iterations. This crate turns that observation into a
//! production-shaped service core on top of `vqc-core`:
//!
//! * [`ShardedPulseCache`] — a lock-striped, sharded, content-addressed replacement
//!   for the global-mutex [`vqc_core::PulseLibrary`], with hit/miss/eviction
//!   [`CacheMetrics`] and optional per-shard capacity bounds. Bounded shards evict
//!   by [`EvictionPolicy`]: cost-aware by default (the cheapest-to-recompute entry
//!   leaves first), hit-weighted (cost × observed reuse) for skewed traffic, FIFO
//!   as fallback. Cost metadata is calibrated: observed compile times replace model
//!   estimates, and a least-squares [`vqc_core::CostCalibration`] scales estimates
//!   for blocks that never ran.
//! * [`CompilationRuntime`] — the request-scheduling service: a channel-based
//!   accept loop admits [`Submission`]s through a bounded queue
//!   ([`Backpressure::Block`]/[`Backpressure::Reject`]/[`Backpressure::Shed`]), a
//!   scheduler expands them into block tasks, and a persistent worker pool drains
//!   one merged queue ordered by strict [`Priority`], weighted-fair virtual time
//!   per client, and LPT cost ([`SchedulePolicy::Lpt`]). Block tasks are
//!   deduplicated *across requests*: one compiled block fans out to every waiting
//!   job, with priority inheritance so shared work is never scheduled at the
//!   slowest waiter's class.
//! * [`CompilationRuntime::submit`] / [`JobHandle`] — the asynchronous front door;
//!   [`CompilationRuntime::compile_batch`] /
//!   [`CompilationRuntime::compile_iterations`] are thin synchronous wrappers over
//!   a submitted job, making the paper's cross-iteration reuse cross-request.
//! * Telemetry — log-bucketed per-priority-class [`HistogramSnapshot`] latency
//!   distributions, a bounded [`TraceStage`] lifecycle trace ring exportable as
//!   Chrome `trace_event` JSON ([`chrome_trace_json`]), and a background
//!   aggregator publishing periodic [`MetricsSnapshot`]s to
//!   [`CompilationRuntime::watch_metrics`] subscribers (configured by
//!   [`TelemetryOptions`], optionally dumped as JSON lines).
//! * [`persist`] — bincode snapshots of the cache for warm-start across runs
//!   ([`CompilationRuntime::save_snapshot`], [`CompilationRuntime::with_warm_start`]).
//! * [`InFlight`] — the singleflight primitive the pre-service runtime deduplicated
//!   with; the scheduler's cross-request dedup table subsumes it on the hot path,
//!   but it remains available for embedders building their own pools.
//!
//! # Example
//!
//! ```
//! use vqc_circuit::{Circuit, ParamExpr};
//! use vqc_core::{CompilerOptions, Strategy};
//! use vqc_runtime::{CompilationRuntime, Priority, RuntimeOptions, Submission};
//!
//! let mut circuit = Circuit::new(2);
//! circuit.h(0);
//! circuit.cx(0, 1);
//! circuit.rz_expr(1, ParamExpr::theta(0));
//! circuit.cx(0, 1);
//!
//! let runtime = CompilationRuntime::new(CompilerOptions::fast(), RuntimeOptions::with_workers(2));
//! // Three variational iterations submitted as one request: the Fixed entangling
//! // block is GRAPE-compiled once and fans out to all three.
//! let handle = runtime
//!     .submit(
//!         Submission::iterations(
//!             circuit,
//!             vec![vec![0.3], vec![1.4], vec![2.2]],
//!             Strategy::StrictPartial,
//!         )
//!         .with_priority(Priority::HIGH),
//!     )
//!     .expect("the queue is empty");
//! let reports = handle.wait().expect("not shed");
//! assert!(reports.iter().all(|r| r.is_ok()));
//! assert!(runtime.metrics().cache.hits > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod inflight;
pub mod persist;
#[allow(clippy::module_inception)]
mod runtime;
mod service;
mod telemetry;

pub use cache::{
    CacheConfig, CacheMetrics, CacheSnapshot, CompactionPolicy, EvictionPolicy, ShardedPulseCache,
};
pub use inflight::{InFlight, Ticket};
pub use persist::PersistError;
pub use runtime::{CompilationRuntime, CompileJob, RuntimeMetrics, RuntimeOptions, SchedulePolicy};
pub use service::{
    Backpressure, ClientMetrics, JobHandle, JobStatus, Priority, ServiceOptions, Submission,
    SubmitError,
};
pub use telemetry::{
    chrome_trace_json, phase_row_name, priority_class, ClassLatency, HistogramSnapshot,
    LatencyHistogram, MetricsSnapshot, PhaseMetrics, TelemetryOptions, TraceEvent, TraceRing,
    TraceStage, PHASE_ROWS, PRIORITY_CLASSES, PRIORITY_CLASS_NAMES,
};
pub use vqc_core::{CompileProfile, SeedEntry, TableConfig, WarmStartStats, PHASE_COUNT};
