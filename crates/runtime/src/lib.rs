//! Concurrent compilation runtime for the partial compiler.
//!
//! The paper amortizes GRAPE cost by caching pulses for repeated subcircuit blocks
//! across variational iterations. This crate turns that observation into a
//! production-shaped subsystem on top of `vqc-core`:
//!
//! * [`ShardedPulseCache`] — a lock-striped, sharded, content-addressed replacement
//!   for the global-mutex [`vqc_core::PulseLibrary`], with hit/miss/eviction
//!   [`CacheMetrics`] and optional per-shard capacity bounds. Bounded shards evict
//!   by [`EvictionPolicy`]: cost-aware by default (the cheapest-to-recompute entry
//!   leaves first, so capacity protects the most GRAPE seconds), FIFO as fallback.
//! * [`CompilationRuntime`] — compiles the independent blocks of a circuit in
//!   parallel on a worker pool, with [`InFlight`] deduplication so two workers never
//!   GRAPE-optimize the same [`vqc_core::BlockKey`] twice. Block tasks drain
//!   longest-processing-time-first ([`SchedulePolicy::Lpt`]) by estimated GRAPE
//!   cost, shrinking the pool's makespan on heterogeneous plans.
//! * [`CompilationRuntime::compile_batch`] / [`CompilationRuntime::compile_iterations`]
//!   — the batch API: many circuits or many variational iterations drain one task
//!   pool against the shared cache, making the paper's cross-iteration reuse
//!   cross-request.
//! * [`persist`] — bincode snapshots of the cache for warm-start across runs
//!   ([`CompilationRuntime::save_snapshot`], [`CompilationRuntime::with_warm_start`]).
//!
//! # Example
//!
//! ```
//! use vqc_circuit::{Circuit, ParamExpr};
//! use vqc_core::{CompilerOptions, Strategy};
//! use vqc_runtime::{CompilationRuntime, RuntimeOptions};
//!
//! let mut circuit = Circuit::new(2);
//! circuit.h(0);
//! circuit.cx(0, 1);
//! circuit.rz_expr(1, ParamExpr::theta(0));
//! circuit.cx(0, 1);
//!
//! let runtime = CompilationRuntime::new(CompilerOptions::fast(), RuntimeOptions::with_workers(2));
//! // Three variational iterations compiled as one batch: the Fixed entangling block
//! // is GRAPE-compiled once and reused by all three.
//! let reports = runtime.compile_iterations(
//!     &circuit,
//!     &[vec![0.3], vec![1.4], vec![2.2]],
//!     Strategy::StrictPartial,
//! );
//! assert!(reports.iter().all(|r| r.is_ok()));
//! assert!(runtime.metrics().cache.hits > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod inflight;
pub mod persist;
#[allow(clippy::module_inception)]
mod runtime;

pub use cache::{
    CacheConfig, CacheMetrics, CacheSnapshot, CompactionPolicy, EvictionPolicy, ShardedPulseCache,
};
pub use inflight::{InFlight, Ticket};
pub use persist::PersistError;
pub use runtime::{CompilationRuntime, CompileJob, RuntimeMetrics, RuntimeOptions, SchedulePolicy};
