//! Hermitian eigendecomposition via the cyclic Jacobi method.
//!
//! The GRAPE gradient needs the exact derivative of `exp(-i Δt H)` with respect to a
//! control amplitude; that derivative has a closed form in the eigenbasis of `H`
//! (the Daleckii–Krein formula), so the pulse optimizer diagonalizes each slice
//! Hamiltonian. The matrices involved are small (≤ 81x81), where Jacobi is simple,
//! numerically robust, and plenty fast.

use crate::{Matrix, C64};

/// Result of a Hermitian eigendecomposition `A = V · diag(λ) · V†`.
#[derive(Debug, Clone)]
pub struct EighResult {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub eigenvectors: Matrix,
}

/// Reusable scratch buffers for [`eigh_into`].
///
/// GRAPE diagonalizes one slice Hamiltonian per time slice per iteration; reusing
/// one workspace across all of them removes every per-call heap allocation from the
/// Jacobi sweep.
#[derive(Debug, Clone)]
pub struct EighWorkspace {
    /// Hermitian working copy that the Jacobi rotations reduce to diagonal form.
    work: Matrix,
    /// Accumulated product of Jacobi rotations (the unsorted eigenvector basis).
    vectors: Matrix,
    /// Sort buffer pairing each diagonal entry with its column index.
    order: Vec<(f64, usize)>,
}

impl EighWorkspace {
    /// Creates scratch buffers for diagonalizing `n x n` matrices.
    pub fn new(n: usize) -> Self {
        EighWorkspace {
            work: Matrix::zeros(n, n),
            vectors: Matrix::zeros(n, n),
            order: Vec::with_capacity(n),
        }
    }

    /// The matrix dimension this workspace was sized for.
    pub fn dim(&self) -> usize {
        self.work.rows()
    }
}

/// Diagonalizes a Hermitian matrix with the cyclic Jacobi method.
///
/// This is the allocating reference API; [`eigh_into`] is the same algorithm on
/// caller-owned buffers.
///
/// # Panics
///
/// Panics if `a` is not square. The matrix is *assumed* Hermitian; only its Hermitian
/// part influences the result.
pub fn eigh(a: &Matrix) -> EighResult {
    assert!(a.is_square(), "eigh requires a square matrix");
    let n = a.rows();
    let mut workspace = EighWorkspace::new(n);
    let mut eigenvalues = Vec::with_capacity(n);
    let mut eigenvectors = Matrix::zeros(n, n);
    eigh_into(a, &mut workspace, &mut eigenvalues, &mut eigenvectors);
    EighResult {
        eigenvalues,
        eigenvectors,
    }
}

/// Diagonalizes a Hermitian matrix into caller-owned buffers, allocating nothing
/// once `eigenvalues` has capacity for `n` entries.
///
/// `eigenvalues` is cleared and refilled in ascending order; `eigenvectors` is
/// overwritten with the corresponding unitary basis (columns permuted to match the
/// sorted eigenvalues). Returns the number of Jacobi sweeps executed before
/// convergence (the per-phase profiler in `vqc-pulse` tallies these).
///
/// # Panics
///
/// Panics if `a` is not square, or if `workspace` / `eigenvectors` were sized for a
/// different dimension. The matrix is *assumed* Hermitian; only its Hermitian part
/// influences the result.
pub fn eigh_into(
    a: &Matrix,
    workspace: &mut EighWorkspace,
    eigenvalues: &mut Vec<f64>,
    eigenvectors: &mut Matrix,
) -> usize {
    assert!(a.is_square(), "eigh requires a square matrix");
    let n = a.rows();
    assert_eq!(workspace.dim(), n, "eigh workspace dimension mismatch");
    assert_eq!(
        eigenvectors.shape(),
        (n, n),
        "eigh eigenvector output shape mismatch"
    );

    // Work on the Hermitian part to be robust against tiny asymmetries.
    let work = &mut workspace.work;
    for r in 0..n {
        for c in 0..n {
            work[(r, c)] = (a[(r, c)] + a[(c, r)].conj()) * 0.5;
        }
    }
    let v = &mut workspace.vectors;
    v.as_mut_slice().fill(C64::ZERO);
    for i in 0..n {
        v[(i, i)] = C64::ONE;
    }

    let max_sweeps = 60;
    let tol = 1e-14 * work.frobenius_norm().max(1.0);
    let mut sweeps = 0;
    for _ in 0..max_sweeps {
        let mut off_norm = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off_norm += work[(p, q)].norm_sqr();
            }
        }
        if off_norm.sqrt() <= tol {
            break;
        }
        sweeps += 1;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = work[(p, q)];
                let magnitude = apq.abs();
                if magnitude <= tol / (n as f64) {
                    continue;
                }
                let phi = apq.arg();
                let app = work[(p, p)].re;
                let aqq = work[(q, q)].re;
                let theta = 0.5 * (2.0 * magnitude).atan2(app - aqq);
                let c = theta.cos();
                let s = theta.sin();
                let e_pos = C64::cis(phi);
                let e_neg = C64::cis(-phi);

                // Right-multiply by J: columns p and q change.
                for i in 0..n {
                    let aip = work[(i, p)];
                    let aiq = work[(i, q)];
                    work[(i, p)] = aip * c + aiq * (e_neg * s);
                    work[(i, q)] = aip * (e_pos * (-s)) + aiq * c;
                }
                // Left-multiply by J†: rows p and q change.
                for j in 0..n {
                    let apj = work[(p, j)];
                    let aqj = work[(q, j)];
                    work[(p, j)] = apj * c + aqj * (e_pos * s);
                    work[(q, j)] = apj * (e_neg * (-s)) + aqj * c;
                }
                // Accumulate the eigenvector basis: V <- V · J.
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = vip * c + viq * (e_neg * s);
                    v[(i, q)] = vip * (e_pos * (-s)) + viq * c;
                }
            }
        }
    }

    // Extract eigenvalues and sort ascending, permuting the eigenvector columns
    // along. `sort_unstable_by` keeps this path allocation-free (stable sort
    // allocates a merge buffer); ties cannot reorder equal eigenvalues observably.
    let pairs = &mut workspace.order;
    pairs.clear();
    pairs.extend((0..n).map(|i| (work[(i, i)].re, i)));
    // audit:allow(unwrap): Hermitian eigenvalues are real and finite by construction
    pairs.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("eigenvalues are finite"));
    eigenvalues.clear();
    eigenvalues.extend(pairs.iter().map(|(value, _)| *value));
    for c in 0..n {
        let source = pairs[c].1;
        for r in 0..n {
            eigenvectors[(r, c)] = v[(r, source)];
        }
    }
    sweeps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn reconstruct(result: &EighResult) -> Matrix {
        let lambda = Matrix::diag(
            &result
                .eigenvalues
                .iter()
                .map(|&l| c64(l, 0.0))
                .collect::<Vec<_>>(),
        );
        result
            .eigenvectors
            .matmul(&lambda)
            .matmul(&result.eigenvectors.dagger())
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::diag(&[c64(3.0, 0.0), c64(-1.0, 0.0), c64(0.5, 0.0)]);
        let r = eigh(&a);
        assert_eq!(r.eigenvalues.len(), 3);
        assert!((r.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((r.eigenvalues[2] - 3.0).abs() < 1e-12);
        assert!(reconstruct(&r).approx_eq(&a, 1e-10));
    }

    #[test]
    fn pauli_x_eigenvalues_are_plus_minus_one() {
        let x = Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        let r = eigh(&x);
        assert!((r.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((r.eigenvalues[1] - 1.0).abs() < 1e-12);
        assert!(r.eigenvectors.is_unitary(1e-10));
        assert!(reconstruct(&r).approx_eq(&x, 1e-10));
    }

    #[test]
    fn pauli_y_with_complex_entries_decomposes() {
        let y = Matrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]]);
        let r = eigh(&y);
        assert!((r.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((r.eigenvalues[1] - 1.0).abs() < 1e-12);
        assert!(reconstruct(&r).approx_eq(&y, 1e-10));
    }

    #[test]
    fn random_hermitian_reconstructs() {
        // Deterministic pseudo-random Hermitian matrix.
        let n = 6;
        let raw = Matrix::from_fn(n, n, |r, c| {
            let x = ((r * 7 + c * 13) as f64 * 0.37).sin();
            let y = ((r * 3 + c * 11) as f64 * 0.53).cos();
            c64(x, y)
        });
        let h = (&raw + &raw.dagger()).scale_real(0.5);
        let r = eigh(&h);
        assert!(r.eigenvectors.is_unitary(1e-9));
        assert!(reconstruct(&r).approx_eq(&h, 1e-9));
        // Eigenvalues ascend.
        for w in r.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn trace_is_preserved() {
        let h = Matrix::from_rows(&[
            &[c64(1.0, 0.0), c64(0.5, 0.25)],
            &[c64(0.5, -0.25), c64(-2.0, 0.0)],
        ]);
        let r = eigh(&h);
        let sum: f64 = r.eigenvalues.iter().sum();
        assert!((sum - h.trace().re).abs() < 1e-10);
    }
}
