//! Hermitian eigendecomposition via the cyclic Jacobi method.
//!
//! The GRAPE gradient needs the exact derivative of `exp(-i Δt H)` with respect to a
//! control amplitude; that derivative has a closed form in the eigenbasis of `H`
//! (the Daleckii–Krein formula), so the pulse optimizer diagonalizes each slice
//! Hamiltonian. The matrices involved are small (≤ 81x81), where Jacobi is simple,
//! numerically robust, and plenty fast.

use crate::{Matrix, C64};

/// Result of a Hermitian eigendecomposition `A = V · diag(λ) · V†`.
#[derive(Debug, Clone)]
pub struct EighResult {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub eigenvectors: Matrix,
}

/// Diagonalizes a Hermitian matrix with the cyclic Jacobi method.
///
/// # Panics
///
/// Panics if `a` is not square. The matrix is *assumed* Hermitian; only its Hermitian
/// part influences the result.
pub fn eigh(a: &Matrix) -> EighResult {
    assert!(a.is_square(), "eigh requires a square matrix");
    let n = a.rows();
    // Work on the Hermitian part to be robust against tiny asymmetries.
    let mut work = (&a.dagger() + a).scale_real(0.5);
    let mut v = Matrix::identity(n);

    let max_sweeps = 60;
    let tol = 1e-14 * work.frobenius_norm().max(1.0);
    for _ in 0..max_sweeps {
        let mut off_norm = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off_norm += work[(p, q)].norm_sqr();
            }
        }
        if off_norm.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = work[(p, q)];
                let magnitude = apq.abs();
                if magnitude <= tol / (n as f64) {
                    continue;
                }
                let phi = apq.arg();
                let app = work[(p, p)].re;
                let aqq = work[(q, q)].re;
                let theta = 0.5 * (2.0 * magnitude).atan2(app - aqq);
                let c = theta.cos();
                let s = theta.sin();
                let e_pos = C64::cis(phi);
                let e_neg = C64::cis(-phi);

                // Right-multiply by J: columns p and q change.
                for i in 0..n {
                    let aip = work[(i, p)];
                    let aiq = work[(i, q)];
                    work[(i, p)] = aip * c + aiq * (e_neg * s);
                    work[(i, q)] = aip * (e_pos * (-s)) + aiq * c;
                }
                // Left-multiply by J†: rows p and q change.
                for j in 0..n {
                    let apj = work[(p, j)];
                    let aqj = work[(q, j)];
                    work[(p, j)] = apj * c + aqj * (e_pos * s);
                    work[(q, j)] = apj * (e_neg * (-s)) + aqj * c;
                }
                // Accumulate the eigenvector basis: V <- V · J.
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = vip * c + viq * (e_neg * s);
                    v[(i, q)] = vip * (e_pos * (-s)) + viq * c;
                }
            }
        }
    }

    // Extract eigenvalues and sort ascending, permuting the eigenvector columns along.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (work[(i, i)].re, i)).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("eigenvalues are finite"));
    let eigenvalues: Vec<f64> = pairs.iter().map(|(val, _)| *val).collect();
    let eigenvectors = Matrix::from_fn(n, n, |r, c| v[(r, pairs[c].1)]);

    EighResult {
        eigenvalues,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn reconstruct(result: &EighResult) -> Matrix {
        let lambda = Matrix::diag(
            &result
                .eigenvalues
                .iter()
                .map(|&l| c64(l, 0.0))
                .collect::<Vec<_>>(),
        );
        result
            .eigenvectors
            .matmul(&lambda)
            .matmul(&result.eigenvectors.dagger())
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::diag(&[c64(3.0, 0.0), c64(-1.0, 0.0), c64(0.5, 0.0)]);
        let r = eigh(&a);
        assert_eq!(r.eigenvalues.len(), 3);
        assert!((r.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((r.eigenvalues[2] - 3.0).abs() < 1e-12);
        assert!(reconstruct(&r).approx_eq(&a, 1e-10));
    }

    #[test]
    fn pauli_x_eigenvalues_are_plus_minus_one() {
        let x = Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        let r = eigh(&x);
        assert!((r.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((r.eigenvalues[1] - 1.0).abs() < 1e-12);
        assert!(r.eigenvectors.is_unitary(1e-10));
        assert!(reconstruct(&r).approx_eq(&x, 1e-10));
    }

    #[test]
    fn pauli_y_with_complex_entries_decomposes() {
        let y = Matrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]]);
        let r = eigh(&y);
        assert!((r.eigenvalues[0] + 1.0).abs() < 1e-12);
        assert!((r.eigenvalues[1] - 1.0).abs() < 1e-12);
        assert!(reconstruct(&r).approx_eq(&y, 1e-10));
    }

    #[test]
    fn random_hermitian_reconstructs() {
        // Deterministic pseudo-random Hermitian matrix.
        let n = 6;
        let raw = Matrix::from_fn(n, n, |r, c| {
            let x = ((r * 7 + c * 13) as f64 * 0.37).sin();
            let y = ((r * 3 + c * 11) as f64 * 0.53).cos();
            c64(x, y)
        });
        let h = (&raw + &raw.dagger()).scale_real(0.5);
        let r = eigh(&h);
        assert!(r.eigenvectors.is_unitary(1e-9));
        assert!(reconstruct(&r).approx_eq(&h, 1e-9));
        // Eigenvalues ascend.
        for w in r.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn trace_is_preserved() {
        let h = Matrix::from_rows(&[
            &[c64(1.0, 0.0), c64(0.5, 0.25)],
            &[c64(0.5, -0.25), c64(-2.0, 0.0)],
        ]);
        let r = eigh(&h);
        let sum: f64 = r.eigenvalues.iter().sum();
        assert!((sum - h.trace().re).abs() < 1e-10);
    }
}
