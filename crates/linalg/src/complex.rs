//! A minimal, dependency-free double-precision complex scalar.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// `C64` is `Copy` and implements the standard arithmetic operators against both `C64`
/// and `f64` right-hand sides, which keeps the hot loops in the matrix code readable.
///
/// ```
/// use vqc_linalg::C64;
/// let z = C64::new(0.0, 1.0);
/// assert!((z * z - C64::new(-1.0, 0.0)).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a purely imaginary complex number.
    #[inline]
    pub const fn from_imag(im: f64) -> Self {
        C64 { re: 0.0, im }
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Returns the squared magnitude `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns the argument (phase angle) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns the complex exponential `e^(self)`.
    ///
    /// ```
    /// use vqc_linalg::C64;
    /// use std::f64::consts::PI;
    /// // Euler's identity: e^{i pi} = -1.
    /// let z = C64::new(0.0, PI).exp();
    /// assert!((z - C64::new(-1.0, 0.0)).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        C64::new(r * self.im.cos(), r * self.im.sin())
    }

    /// Returns `e^{i theta}` — a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    /// Returns the multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `self` is exactly zero.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "attempted to invert zero complex number");
        C64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        C64::new(self.re * k, self.im * k)
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Returns `true` if `self` is within `tol` of `other` (component-wise distance).
    #[inline]
    pub fn approx_eq(self, other: C64, tol: f64) -> bool {
        (self - other).abs() <= tol
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        C64::from_real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    // Division via the reciprocal is the standard complex-number formulation.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: C64) -> C64 {
        self * rhs.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Add<f64> for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: f64) -> C64 {
        C64::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: f64) -> C64 {
        C64::new(self.re - rhs, self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        self.scale(1.0 / rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic_identities() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z + C64::ZERO, z);
        assert_eq!(z * C64::ONE, z);
        assert_eq!(z - z, C64::ZERO);
        assert!((z * z.recip() - C64::ONE).abs() < 1e-15);
    }

    #[test]
    fn magnitude_and_conjugate() {
        let z = C64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-15);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert!((z * z.conj() - C64::from_real(25.0)).abs() < 1e-12);
    }

    #[test]
    fn exponential_matches_euler() {
        let z = C64::from_imag(PI / 2.0).exp();
        assert!(z.approx_eq(C64::I, 1e-15));
        assert!(C64::cis(PI / 2.0).approx_eq(C64::I, 1e-15));
    }

    #[test]
    fn division_round_trips() {
        let a = C64::new(1.5, -0.25);
        let b = C64::new(-2.0, 0.75);
        let q = a / b;
        assert!((q * b).approx_eq(a, 1e-14));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", C64::new(1.0, 2.0)), "1.000000+2.000000i");
        assert_eq!(format!("{}", C64::new(1.0, -2.0)), "1.000000-2.000000i");
    }

    #[test]
    fn mixed_real_ops() {
        let z = C64::new(1.0, 1.0);
        assert_eq!(z * 2.0, C64::new(2.0, 2.0));
        assert_eq!(2.0 * z, C64::new(2.0, 2.0));
        assert_eq!(z / 2.0, C64::new(0.5, 0.5));
        assert_eq!(z + 1.0, C64::new(2.0, 1.0));
        assert_eq!(z - 1.0, C64::new(0.0, 1.0));
    }

    #[test]
    fn sum_over_iterator() {
        let total: C64 = (0..4).map(|k| C64::new(k as f64, 1.0)).sum();
        assert_eq!(total, C64::new(6.0, 4.0));
    }
}
