//! Dense, row-major complex matrices.

use crate::{LinalgError, Vector, C64};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// Inner dimension at and above which [`Matrix::matmul_into`] skips exact-zero
/// left-operand entries. Below it (dense GRAPE-sized blocks) the zero test costs
/// a branch per element and almost never fires; at and above it (kron-built
/// circuit unitaries, padded gate targets) structural zeros dominate and the
/// skip saves whole rows of work.
const SPARSITY_SKIP_MIN_DIM: usize = 8;

/// A dense complex matrix stored in row-major order.
///
/// All shapes appearing in this workspace are small (at most 16x16 in the pulse
/// optimizer, 1024x1024 when building full-circuit unitaries for verification), so the
/// implementation favours clarity over cache blocking.
///
/// ```
/// use vqc_linalg::{C64, Matrix};
/// let h = Matrix::from_fn(2, 2, |r, c| {
///     let s = 1.0 / f64::sqrt(2.0);
///     if r == 1 && c == 1 { C64::from_real(-s) } else { C64::from_real(s) }
/// });
/// assert!(h.is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn<F: FnMut(usize, usize) -> C64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[C64]]) -> Self {
        assert!(
            !rows.is_empty(),
            "Matrix::from_rows requires at least one row"
        );
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Matrix { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[C64]) -> Self {
        let n = entries.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Read-only view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree; use [`Matrix::try_matmul`] for a
    /// fallible variant.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        // audit:allow(unwrap): documented panicking variant; try_matmul is the fallible API
        self.try_matmul(rhs).expect("matmul dimension mismatch")
    }

    /// Matrix product returning an error on shape mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        Ok(out)
    }

    /// Writes the matrix product `self * rhs` into `out` without allocating.
    ///
    /// `out` is overwritten entirely; the borrow checker guarantees it aliases
    /// neither operand. This is the hot kernel behind GRAPE's per-iteration
    /// propagator and gradient products.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()` or `out` is not `self.rows() x
    /// rhs.cols()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "matmul_into dimension mismatch");
        assert_eq!(
            out.shape(),
            (self.rows, rhs.cols),
            "matmul_into output shape mismatch"
        );
        out.data.fill(C64::ZERO);
        if self.cols >= SPARSITY_SKIP_MIN_DIM {
            // Kron-built circuit unitaries and padded gate targets at these sizes
            // are mostly exact zeros; skipping a zero left-entry saves a whole
            // row of multiply-adds.
            for i in 0..self.rows {
                for k in 0..self.cols {
                    let a = self.data[i * self.cols + k];
                    if a.re == 0.0 && a.im == 0.0 {
                        continue;
                    }
                    let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                    let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                    for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                        *o += a * b;
                    }
                }
            }
        } else {
            // Small GRAPE-sized blocks (2x2, 3x3, 4x4) are dense: the zero test
            // costs a branch per element and almost never fires, so the inner
            // loop stays branch-free here.
            for i in 0..self.rows {
                for k in 0..self.cols {
                    let a = self.data[i * self.cols + k];
                    let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                    let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                    for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                        *o += a * b;
                    }
                }
            }
        }
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != v.len()`.
    pub fn matvec(&self, v: &Vector) -> Vector {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        let mut out = vec![C64::ZERO; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = C64::ZERO;
            for (a, b) in row.iter().zip(v.as_slice().iter()) {
                acc += *a * *b;
            }
            *slot = acc;
        }
        Vector::from_vec(out)
    }

    /// Conjugate transpose (Hermitian adjoint).
    pub fn dagger(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.dagger_into(&mut out);
        out
    }

    /// Writes the conjugate transpose of `self` into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `self.cols() x self.rows()`.
    pub fn dagger_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols, self.rows),
            "dagger_into output shape mismatch"
        );
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c].conj();
            }
        }
    }

    /// Overwrites `self` with the contents of `src` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(self.shape(), src.shape(), "copy_from shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// Transpose without conjugation.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Element-wise complex conjugate.
    pub fn conj(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    ///
    /// This is how multi-qubit operators are assembled from single- and two-qubit gates.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let rows = self.rows * rhs.rows;
        let cols = self.cols * rhs.cols;
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a.re == 0.0 && a.im == 0.0 {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Sum of diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> C64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: C64) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        self.scale_into(k, &mut out);
        out
    }

    /// Writes `k * self` into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn scale_into(&self, k: C64, out: &mut Matrix) {
        assert_eq!(self.shape(), out.shape(), "scale_into shape mismatch");
        for (o, &z) in out.data.iter_mut().zip(self.data.iter()) {
            *o = z * k;
        }
    }

    /// Scales every entry by a real factor.
    pub fn scale_real(&self, k: f64) -> Matrix {
        self.scale(C64::from_real(k))
    }

    /// Writes `self + k * rhs` into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if any of the three shapes differ.
    pub fn add_scaled_into(&self, k: C64, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled_into shape mismatch");
        assert_eq!(
            self.shape(),
            out.shape(),
            "add_scaled_into output shape mismatch"
        );
        for ((o, &a), &b) in out
            .data
            .iter_mut()
            .zip(self.data.iter())
            .zip(rhs.data.iter())
        {
            *o = a + b * k;
        }
    }

    /// Adds `k * rhs` into `self` in place — the accumulating form of
    /// [`Matrix::add_scaled_into`], used to assemble slice Hamiltonians
    /// `H = H_drift + Σ_k u_k H_k` without temporaries.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled_assign(&mut self, k: C64, rhs: &Matrix) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "add_scaled_assign shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b * k;
        }
    }

    /// Frobenius norm `sqrt(sum |a_ij|^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry magnitude (the max-abs or `l_inf` element norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// 1-norm (maximum absolute column sum), used to pick the scaling factor in `expm`.
    pub fn one_norm(&self) -> f64 {
        let mut best = 0.0f64;
        for c in 0..self.cols {
            let mut s = 0.0;
            for r in 0..self.rows {
                s += self[(r, c)].abs();
            }
            best = best.max(s);
        }
        best
    }

    /// Returns `true` if `self` is unitary to within tolerance `tol`
    /// (i.e. `‖self† self − I‖_max ≤ tol`).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.dagger().matmul(self);
        let eye = Matrix::identity(self.rows);
        (&prod - &eye).max_abs() <= tol
    }

    /// Returns `true` if `self` is Hermitian to within tolerance `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        (&self.dagger() - self).max_abs() <= tol
    }

    /// Returns `true` if every entry of `self` is within `tol` of the corresponding
    /// entry of `other`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape() && (self - other).max_abs() <= tol
    }

    /// Returns `true` if `self` equals `other` up to a global phase, to tolerance `tol`.
    ///
    /// Quantum operations that differ only by a global phase are physically identical;
    /// GRAPE targets are compared with this predicate.
    pub fn approx_eq_up_to_phase(&self, other: &Matrix, tol: f64) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        // Find the entry of `other` with the largest magnitude to estimate the phase.
        let mut idx = 0;
        let mut best = 0.0;
        for (i, z) in other.data.iter().enumerate() {
            if z.abs() > best {
                best = z.abs();
                idx = i;
            }
        }
        if best < tol {
            return self.max_abs() <= tol;
        }
        let phase = self.data[idx] / other.data[idx];
        if (phase.abs() - 1.0).abs() > tol {
            return false;
        }
        self.approx_eq(&other.scale(phase), tol)
    }

    /// Returns `true` if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|z| z.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = C64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &C64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut C64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale_real(-1.0)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn pauli_x() -> Matrix {
        Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]])
    }

    fn pauli_y() -> Matrix {
        Matrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]])
    }

    fn pauli_z() -> Matrix {
        Matrix::diag(&[C64::ONE, -C64::ONE])
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let x = pauli_x();
        let eye = Matrix::identity(2);
        assert_eq!(x.matmul(&eye), x);
        assert_eq!(eye.matmul(&x), x);
    }

    #[test]
    fn pauli_algebra() {
        let (x, y, z) = (pauli_x(), pauli_y(), pauli_z());
        // XY = iZ
        assert!(x.matmul(&y).approx_eq(&z.scale(C64::I), 1e-14));
        // X^2 = Y^2 = Z^2 = I
        for m in [&x, &y, &z] {
            assert!(m.matmul(m).approx_eq(&Matrix::identity(2), 1e-14));
        }
        // Paulis are unitary and Hermitian.
        for m in [&x, &y, &z] {
            assert!(m.is_unitary(1e-14));
            assert!(m.is_hermitian(1e-14));
        }
    }

    #[test]
    fn trace_of_paulis_is_zero() {
        for m in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(m.trace().abs() < 1e-15);
        }
        assert!((Matrix::identity(4).trace() - c64(4.0, 0.0)).abs() < 1e-15);
    }

    #[test]
    fn kron_shapes_and_values() {
        let x = pauli_x();
        let eye = Matrix::identity(2);
        let xi = x.kron(&eye);
        assert_eq!(xi.shape(), (4, 4));
        // X ⊗ I applied to |00> (index 0) gives |10> (index 2).
        assert_eq!(xi[(2, 0)], C64::ONE);
        assert_eq!(xi[(0, 0)], C64::ZERO);
        // (A ⊗ B)(C ⊗ D) = AC ⊗ BD
        let z = pauli_z();
        let lhs = x.kron(&z).matmul(&x.kron(&z));
        let rhs = x.matmul(&x).kron(&z.matmul(&z));
        assert!(lhs.approx_eq(&rhs, 1e-14));
    }

    #[test]
    fn dagger_reverses_products() {
        let x = pauli_x();
        let y = pauli_y();
        let lhs = x.matmul(&y).dagger();
        let rhs = y.dagger().matmul(&x.dagger());
        assert!(lhs.approx_eq(&rhs, 1e-14));
    }

    #[test]
    fn try_matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let err = a.try_matmul(&b).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }));
    }

    #[test]
    fn matvec_matches_matmul() {
        let y = pauli_y();
        let v = Vector::from_vec(vec![c64(1.0, 0.0), c64(0.0, 0.0)]);
        let w = y.matvec(&v);
        assert!(w.get(1).approx_eq(C64::I, 1e-15));
        assert!(w.get(0).approx_eq(C64::ZERO, 1e-15));
    }

    #[test]
    fn global_phase_equality() {
        let x = pauli_x();
        let phased = x.scale(C64::cis(0.7));
        assert!(phased.approx_eq_up_to_phase(&x, 1e-12));
        assert!(!phased.approx_eq(&x, 1e-12));
        assert!(!pauli_z().approx_eq_up_to_phase(&x, 1e-12));
    }

    #[test]
    fn norms() {
        let x = pauli_x();
        assert!((x.frobenius_norm() - 2.0_f64.sqrt()).abs() < 1e-14);
        assert!((x.one_norm() - 1.0).abs() < 1e-14);
        assert!((x.max_abs() - 1.0).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "trace requires a square matrix")]
    fn trace_panics_on_rectangular() {
        Matrix::zeros(2, 3).trace();
    }
}
