//! Const-generic small-matrix kernels for the GRAPE hot loop.
//!
//! Every matrix inside a GRAPE run has one of three statically known sizes —
//! 2×2, 4×4, or 16×16 for 1q/2q/4q qubit blocks — so the dynamic [`Matrix`]
//! kernels pay for generality they never use: runtime bounds checks, pointer
//! chasing through `Vec` storage, and loop trip counts the compiler cannot see.
//! [`SmallMatrix<N>`] stores its entries inline as `[[C64; N]; N]` and expresses
//! the same `_into` kernel family ([`SmallMatrix::matmul_into`],
//! [`SmallMatrix::dagger_into`], [`SmallMatrix::scale_into`],
//! [`SmallMatrix::add_scaled_into`]) over fixed-trip-count loops that
//! monomorphization fully unrolls and auto-vectorizes. [`eigh_into`] completes
//! the family: a closed-form Hermitian eigendecomposition for N = 2 and a
//! cyclic Jacobi path for larger N whose rotations are computed algebraically
//! (two square roots instead of the dynamic kernel's per-rotation
//! arg/atan2/sin/cos/cis chain). It converges to the same eigensystem as the
//! dynamic [`crate::eigh_into`] — identical eigenvalues, eigenvectors equal up
//! to the inherent per-column phase freedom — which the parity suite checks via
//! reconstruction.
//!
//! The kernels are *branch-free*: unlike the dynamic `matmul_into`, there is no
//! per-element zero test — on dense 2×2/4×4 inputs the test costs more than the
//! multiply it occasionally saves. All kernels write into caller-owned buffers
//! and perform no heap allocation, preserving the workspace invariant the
//! counting-allocator test in `vqc-pulse` gates on.

use crate::{Matrix, C64};

/// A dense complex matrix whose dimension is a compile-time constant.
///
/// Storage is row-major and inline (`[[C64; N]; N]`), so a `SmallMatrix` is
/// `Copy` and a `Vec<SmallMatrix<N>>` is one contiguous allocation — the packed
/// per-slice storage layout the GRAPE fast path streams through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmallMatrix<const N: usize> {
    rows: [[C64; N]; N],
}

impl<const N: usize> Default for SmallMatrix<N> {
    fn default() -> Self {
        Self::zeros()
    }
}

impl<const N: usize> SmallMatrix<N> {
    /// The all-zero matrix.
    pub const ZERO: SmallMatrix<N> = SmallMatrix {
        rows: [[C64::ZERO; N]; N],
    };

    /// Returns the all-zero matrix.
    #[inline]
    pub fn zeros() -> Self {
        Self::ZERO
    }

    /// Returns the identity matrix.
    pub fn identity() -> Self {
        let mut out = Self::ZERO;
        for (i, row) in out.rows.iter_mut().enumerate() {
            row[i] = C64::ONE;
        }
        out
    }

    /// Builds a matrix entry-by-entry from `f(row, col)`.
    pub fn from_fn(mut f: impl FnMut(usize, usize) -> C64) -> Self {
        let mut out = Self::ZERO;
        for (r, row) in out.rows.iter_mut().enumerate() {
            for (c, slot) in row.iter_mut().enumerate() {
                *slot = f(r, c);
            }
        }
        out
    }

    /// Copies an `N x N` dynamic [`Matrix`] into static storage.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not `N x N`.
    pub fn from_matrix(source: &Matrix) -> Self {
        assert_eq!(
            source.shape(),
            (N, N),
            "SmallMatrix::from_matrix expects an {N}x{N} matrix"
        );
        Self::from_fn(|r, c| source[(r, c)])
    }

    /// Writes this matrix into an existing `N x N` dynamic [`Matrix`] without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not `N x N`.
    pub fn write_to(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (N, N),
            "SmallMatrix::write_to expects an {N}x{N} output"
        );
        for (row, chunk) in self.rows.iter().zip(out.as_mut_slice().chunks_exact_mut(N)) {
            chunk.copy_from_slice(row);
        }
    }

    /// Returns this matrix as a freshly allocated dynamic [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        let mut out = Matrix::zeros(N, N);
        self.write_to(&mut out);
        out
    }

    /// The entry at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> C64 {
        self.rows[row][col]
    }

    /// Sets the entry at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: C64) {
        self.rows[row][col] = value;
    }

    /// Immutable access to the row-major inline storage.
    #[inline]
    pub fn rows(&self) -> &[[C64; N]; N] {
        &self.rows
    }

    /// Mutable access to the row-major inline storage.
    #[inline]
    pub fn rows_mut(&mut self) -> &mut [[C64; N]; N] {
        &mut self.rows
    }

    /// Iterates over all entries in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = C64> + '_ {
        self.rows.iter().flatten().copied()
    }

    /// Overwrites this matrix from a row-major slice of `N * N` entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries.len() != N * N`.
    pub fn fill_from_entries(&mut self, entries: &[C64]) {
        assert_eq!(entries.len(), N * N, "expected {N}x{N} entries");
        for (row, chunk) in self.rows.iter_mut().zip(entries.chunks_exact(N)) {
            row.copy_from_slice(chunk);
        }
    }

    /// Writes the matrix product `self * rhs` into `out`.
    ///
    /// The k-ordered accumulation matches the dynamic
    /// [`Matrix::matmul_into`] dense path exactly, so the two kernels produce
    /// bitwise-identical results; the fixed trip counts let the compiler unroll
    /// and vectorize the whole product. The borrow checker guarantees `out`
    /// aliases neither operand.
    #[inline]
    pub fn matmul_into(&self, rhs: &Self, out: &mut Self) {
        for (out_row, lhs_row) in out.rows.iter_mut().zip(self.rows.iter()) {
            let mut acc = [C64::ZERO; N];
            for (&a, rhs_row) in lhs_row.iter().zip(rhs.rows.iter()) {
                for (slot, &b) in acc.iter_mut().zip(rhs_row.iter()) {
                    *slot += a * b;
                }
            }
            *out_row = acc;
        }
    }

    /// Writes the conjugate transpose of `self` into `out`.
    #[inline]
    pub fn dagger_into(&self, out: &mut Self) {
        for (r, row) in self.rows.iter().enumerate() {
            for (c, &value) in row.iter().enumerate() {
                out.rows[c][r] = value.conj();
            }
        }
    }

    /// Writes `self * k` (entry-wise complex scaling) into `out`.
    #[inline]
    pub fn scale_into(&self, k: C64, out: &mut Self) {
        for (out_row, row) in out.rows.iter_mut().zip(self.rows.iter()) {
            for (slot, &value) in out_row.iter_mut().zip(row.iter()) {
                *slot = value * k;
            }
        }
    }

    /// Writes `self + k * rhs` into `out`.
    #[inline]
    pub fn add_scaled_into(&self, k: C64, rhs: &Self, out: &mut Self) {
        for ((out_row, row), rhs_row) in out
            .rows
            .iter_mut()
            .zip(self.rows.iter())
            .zip(rhs.rows.iter())
        {
            for ((slot, &a), &b) in out_row.iter_mut().zip(row.iter()).zip(rhs_row.iter()) {
                *slot = a + b * k;
            }
        }
    }

    /// Accumulates `self += k * rhs` in place.
    #[inline]
    pub fn add_scaled_assign(&mut self, k: C64, rhs: &Self) {
        for (row, rhs_row) in self.rows.iter_mut().zip(rhs.rows.iter()) {
            for (slot, &b) in row.iter_mut().zip(rhs_row.iter()) {
                *slot += b * k;
            }
        }
    }

    /// Frobenius norm `sqrt(Σ |a_ij|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.entries().map(C64::norm_sqr).sum::<f64>().sqrt()
    }

    /// Largest entry-wise distance to `other`.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        self.entries()
            .zip(other.entries())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Reusable scratch buffers for the const-generic [`eigh_into`].
///
/// The GRAPE fast path diagonalizes one slice Hamiltonian per time slice per
/// iteration; one workspace serves all of them with zero heap traffic (the
/// buffers are plain inline arrays).
#[derive(Debug, Clone)]
pub struct SmallEighWorkspace<const N: usize> {
    /// Hermitian working copy that the Jacobi rotations reduce to diagonal form.
    work: SmallMatrix<N>,
    /// Accumulated product of Jacobi rotations (the unsorted eigenvector basis).
    vectors: SmallMatrix<N>,
    /// Sort buffer pairing each diagonal entry with its column index.
    order: [(f64, usize); N],
}

impl<const N: usize> Default for SmallEighWorkspace<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> SmallEighWorkspace<N> {
    /// Creates scratch buffers for diagonalizing `N x N` matrices.
    pub fn new() -> Self {
        SmallEighWorkspace {
            work: SmallMatrix::ZERO,
            vectors: SmallMatrix::ZERO,
            order: [(0.0, 0); N],
        }
    }
}

/// Diagonalizes a Hermitian [`SmallMatrix`] into caller-owned buffers without
/// heap allocation: `a = eigenvectors · diag(eigenvalues) · eigenvectors†` with
/// the eigenvalues in ascending order.
///
/// For `N == 2` the decomposition is closed-form (one square root instead of a
/// Jacobi sweep — the single biggest win on 1q blocks); for larger `N` it runs
/// a cyclic Jacobi iteration with algebraically computed rotations (no
/// per-rotation trigonometry), converging to the same eigensystem as the
/// dynamic [`crate::eigh_into`] up to per-column eigenvector phases. The
/// `N == 2` branch folds away at monomorphization; there is no runtime dispatch.
///
/// The matrix is *assumed* Hermitian; only its Hermitian part influences the
/// result.
///
/// Returns the number of Jacobi sweeps performed: 0 for the closed-form
/// `N == 2` path, otherwise the sweep count the cyclic iteration needed to
/// converge — the per-phase profiler in `vqc-pulse` tallies these to expose
/// how well warm-started eigenbases pay off.
pub fn eigh_into<const N: usize>(
    a: &SmallMatrix<N>,
    workspace: &mut SmallEighWorkspace<N>,
    eigenvalues: &mut [f64; N],
    eigenvectors: &mut SmallMatrix<N>,
) -> usize {
    if N == 2 {
        eigh2_closed_form(a, eigenvalues, eigenvectors);
        0
    } else {
        eigh_jacobi(a, workspace, eigenvalues, eigenvectors)
    }
}

/// Closed-form Hermitian 2×2 eigendecomposition.
///
/// Only indices 0 and 1 are touched; callers guarantee `N == 2` (the generic
/// signature exists so the branch in [`eigh_into`] folds at compile time).
fn eigh2_closed_form<const N: usize>(
    a: &SmallMatrix<N>,
    eigenvalues: &mut [f64; N],
    eigenvectors: &mut SmallMatrix<N>,
) {
    // Hermitian part: real diagonal, averaged off-diagonal.
    let a00 = a.rows[0][0].re;
    let a11 = a.rows[1][1].re;
    let b = (a.rows[0][1] + a.rows[1][0].conj()) * 0.5;

    let mean = 0.5 * (a00 + a11);
    let half_diff = 0.5 * (a00 - a11);
    let radius = (half_diff * half_diff + b.norm_sqr()).sqrt();
    eigenvalues[0] = mean - radius;
    eigenvalues[1] = mean + radius;

    *eigenvectors = SmallMatrix::ZERO;
    let scale = a00.abs().max(a11.abs()).max(b.abs()).max(1.0);
    if b.abs() <= f64::EPSILON * scale {
        // Effectively diagonal (this also covers degenerate eigenvalues, since
        // radius >= |b|): the eigenbasis is the computational basis, ordered by
        // the diagonal.
        if a00 <= a11 {
            eigenvectors.rows[0][0] = C64::ONE;
            eigenvectors.rows[1][1] = C64::ONE;
        } else {
            eigenvectors.rows[1][0] = C64::ONE;
            eigenvectors.rows[0][1] = C64::ONE;
        }
        return;
    }
    for (col, &lambda) in [eigenvalues[0], eigenvalues[1]].iter().enumerate() {
        // Two analytically equivalent eigenvector forms; pick the better
        // conditioned one (larger norm) to avoid cancellation when λ is close
        // to a diagonal entry.
        let first = (b, C64::from_real(lambda - a00));
        let second = (C64::from_real(lambda - a11), b.conj());
        let first_norm = first.0.norm_sqr() + first.1.norm_sqr();
        let second_norm = second.0.norm_sqr() + second.1.norm_sqr();
        let (x, y, norm_sqr) = if first_norm >= second_norm {
            (first.0, first.1, first_norm)
        } else {
            (second.0, second.1, second_norm)
        };
        let inv = 1.0 / norm_sqr.sqrt();
        eigenvectors.rows[0][col] = x.scale(inv);
        eigenvectors.rows[1][col] = y.scale(inv);
    }
}

/// Cyclic Jacobi eigendecomposition on inline storage: the dynamic
/// [`crate::eigh_into`]'s sweep schedule and convergence criteria, with the
/// per-rotation trigonometry replaced by algebraic expressions. Returns the
/// number of rotation sweeps executed before convergence.
fn eigh_jacobi<const N: usize>(
    a: &SmallMatrix<N>,
    workspace: &mut SmallEighWorkspace<N>,
    eigenvalues: &mut [f64; N],
    eigenvectors: &mut SmallMatrix<N>,
) -> usize {
    // Work on the Hermitian part to be robust against tiny asymmetries.
    let work = &mut workspace.work;
    for r in 0..N {
        for c in 0..N {
            work.rows[r][c] = (a.rows[r][c] + a.rows[c][r].conj()) * 0.5;
        }
    }
    let v = &mut workspace.vectors;
    *v = SmallMatrix::identity();

    let max_sweeps = 60;
    let tol = 1e-14 * work.frobenius_norm().max(1.0);
    let mut sweeps = 0;
    for _ in 0..max_sweeps {
        let mut off_norm = 0.0;
        for p in 0..N {
            for q in (p + 1)..N {
                off_norm += work.rows[p][q].norm_sqr();
            }
        }
        if off_norm.sqrt() <= tol {
            break;
        }
        sweeps += 1;
        for p in 0..N {
            for q in (p + 1)..N {
                let apq = work.rows[p][q];
                let magnitude = apq.abs();
                if magnitude <= tol / (N as f64) {
                    continue;
                }
                let app = work.rows[p][p].re;
                let aqq = work.rows[q][q].re;
                // Algebraic rotation — no trigonometry in the hot loop. The
                // annihilation condition is tan 2θ = 2|apq| / (app − aqq); the
                // smaller-angle root comes from t = tan θ via the stable
                // quadratic form, and the phase factor is apq normalized by its
                // magnitude. Two square roots replace the dynamic kernel's
                // arg/atan2/sin/cos/cis chain, which dominates 4×4 and 16×16
                // diagonalization time.
                let e_pos = apq.scale(1.0 / magnitude);
                let e_neg = e_pos.conj();
                let tau = (app - aqq) / (2.0 * magnitude);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Right-multiply by J: columns p and q change.
                for i in 0..N {
                    let aip = work.rows[i][p];
                    let aiq = work.rows[i][q];
                    work.rows[i][p] = aip * c + aiq * (e_neg * s);
                    work.rows[i][q] = aip * (e_pos * (-s)) + aiq * c;
                }
                // Left-multiply by J†: rows p and q change.
                for j in 0..N {
                    let apj = work.rows[p][j];
                    let aqj = work.rows[q][j];
                    work.rows[p][j] = apj * c + aqj * (e_pos * s);
                    work.rows[q][j] = apj * (e_neg * (-s)) + aqj * c;
                }
                // Accumulate the eigenvector basis: V <- V · J.
                for i in 0..N {
                    let vip = v.rows[i][p];
                    let viq = v.rows[i][q];
                    v.rows[i][p] = vip * c + viq * (e_neg * s);
                    v.rows[i][q] = vip * (e_pos * (-s)) + viq * c;
                }
            }
        }
    }

    // Extract eigenvalues and sort ascending, permuting the eigenvector columns
    // along; `sort_unstable_by` on the inline buffer keeps this allocation-free.
    let pairs = &mut workspace.order;
    for (i, pair) in pairs.iter_mut().enumerate() {
        *pair = (work.rows[i][i].re, i);
    }
    // audit:allow(unwrap): Hermitian eigenvalues are real and finite by construction
    pairs.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("eigenvalues are finite"));
    for (c, &(value, source)) in pairs.iter().enumerate() {
        eigenvalues[c] = value;
        for r in 0..N {
            eigenvectors.rows[r][c] = v.rows[r][source];
        }
    }
    sweeps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    fn reconstruct<const N: usize>(
        eigenvalues: &[f64; N],
        eigenvectors: &SmallMatrix<N>,
    ) -> SmallMatrix<N> {
        // V · diag(λ) · V†
        let scaled = SmallMatrix::<N>::from_fn(|r, c| eigenvectors.get(r, c) * eigenvalues[c]);
        let mut vdag = SmallMatrix::ZERO;
        eigenvectors.dagger_into(&mut vdag);
        let mut out = SmallMatrix::ZERO;
        scaled.matmul_into(&vdag, &mut out);
        out
    }

    fn decompose<const N: usize>(a: &SmallMatrix<N>) -> ([f64; N], SmallMatrix<N>) {
        let mut ws = SmallEighWorkspace::new();
        let mut eigenvalues = [0.0; N];
        let mut eigenvectors = SmallMatrix::ZERO;
        let sweeps = eigh_into(a, &mut ws, &mut eigenvalues, &mut eigenvectors);
        if N == 2 {
            assert_eq!(sweeps, 0, "closed-form 2x2 path performs no Jacobi sweeps");
        }
        (eigenvalues, eigenvectors)
    }

    #[test]
    fn matmul_matches_dynamic() {
        let a = Matrix::from_fn(4, 4, |r, c| {
            c64((r * 5 + c) as f64 * 0.3, (r + c) as f64 * -0.2)
        });
        let b = Matrix::from_fn(4, 4, |r, c| {
            c64((r + 2 * c) as f64 * 0.1, (r * c) as f64 * 0.4)
        });
        let sa = SmallMatrix::<4>::from_matrix(&a);
        let sb = SmallMatrix::<4>::from_matrix(&b);
        let mut out = SmallMatrix::ZERO;
        sa.matmul_into(&sb, &mut out);
        let reference = a.matmul(&b);
        assert_eq!(out.to_matrix(), reference, "matmul must match bitwise");
    }

    #[test]
    fn dagger_scale_add_scaled_match_dynamic() {
        let a = Matrix::from_fn(4, 4, |r, c| c64(r as f64 - c as f64, (r * c) as f64 * 0.7));
        let b = Matrix::from_fn(4, 4, |r, c| c64((r + c) as f64, -(r as f64) * 0.5));
        let k = c64(0.3, -1.2);
        let sa = SmallMatrix::<4>::from_matrix(&a);
        let sb = SmallMatrix::<4>::from_matrix(&b);

        let mut dag = SmallMatrix::ZERO;
        sa.dagger_into(&mut dag);
        assert_eq!(dag.to_matrix(), a.dagger());

        let mut scaled = SmallMatrix::ZERO;
        sa.scale_into(k, &mut scaled);
        assert_eq!(scaled.to_matrix(), a.scale(k));

        let mut sum = SmallMatrix::ZERO;
        sa.add_scaled_into(k, &sb, &mut sum);
        let mut reference = a.clone();
        reference.add_scaled_assign(k, &b);
        assert_eq!(sum.to_matrix(), reference);

        let mut accum = sa;
        accum.add_scaled_assign(k, &sb);
        assert_eq!(accum.to_matrix(), reference);
    }

    #[test]
    fn identity_roundtrip_and_entries() {
        let id = SmallMatrix::<2>::identity();
        assert_eq!(id.get(0, 0), C64::ONE);
        assert_eq!(id.get(0, 1), C64::ZERO);
        let collected: Vec<C64> = id.entries().collect();
        assert_eq!(collected.len(), 4);
        let mut copy = SmallMatrix::<2>::ZERO;
        copy.fill_from_entries(&collected);
        assert_eq!(copy, id);
    }

    #[test]
    fn closed_form_pauli_x() {
        let x = SmallMatrix::<2>::from_fn(|r, c| if r != c { C64::ONE } else { C64::ZERO });
        let (eigenvalues, eigenvectors) = decompose(&x);
        assert!((eigenvalues[0] + 1.0).abs() < 1e-14);
        assert!((eigenvalues[1] - 1.0).abs() < 1e-14);
        assert!(reconstruct(&eigenvalues, &eigenvectors).max_abs_diff(&x) < 1e-14);
    }

    #[test]
    fn closed_form_complex_offdiagonal() {
        // Pauli-Y plus a diagonal shift exercises the complex branch.
        let y = SmallMatrix::<2>::from_fn(|r, c| match (r, c) {
            (0, 0) => c64(0.5, 0.0),
            (0, 1) => c64(0.0, -1.0),
            (1, 0) => c64(0.0, 1.0),
            _ => c64(-0.25, 0.0),
        });
        let (eigenvalues, eigenvectors) = decompose(&y);
        assert!(eigenvalues[0] <= eigenvalues[1]);
        assert!(reconstruct(&eigenvalues, &eigenvectors).max_abs_diff(&y) < 1e-14);
        // Columns are orthonormal.
        let mut vdag = SmallMatrix::ZERO;
        eigenvectors.dagger_into(&mut vdag);
        let mut gram = SmallMatrix::ZERO;
        vdag.matmul_into(&eigenvectors, &mut gram);
        assert!(gram.max_abs_diff(&SmallMatrix::identity()) < 1e-14);
    }

    #[test]
    fn closed_form_diagonal_orders_by_value() {
        let d = SmallMatrix::<2>::from_fn(|r, c| {
            if r == c {
                c64(if r == 0 { 3.0 } else { -1.0 }, 0.0)
            } else {
                C64::ZERO
            }
        });
        let (eigenvalues, eigenvectors) = decompose(&d);
        assert_eq!(eigenvalues, [-1.0, 3.0]);
        assert!(reconstruct(&eigenvalues, &eigenvectors).max_abs_diff(&d) < 1e-14);
    }

    #[test]
    fn jacobi_matches_dynamic_eigh() {
        let raw = Matrix::from_fn(4, 4, |r, c| {
            let x = ((r * 7 + c * 13) as f64 * 0.37).sin();
            let y = ((r * 3 + c * 11) as f64 * 0.53).cos();
            c64(x, y)
        });
        let h = (&raw + &raw.dagger()).scale_real(0.5);
        let reference = crate::eigh(&h);
        let small = SmallMatrix::<4>::from_matrix(&h);
        let (eigenvalues, eigenvectors) = decompose(&small);
        for (i, &lambda) in eigenvalues.iter().enumerate() {
            assert!(
                (lambda - reference.eigenvalues[i]).abs() < 1e-12,
                "eigenvalue {i}: {lambda} vs {}",
                reference.eigenvalues[i]
            );
        }
        // The algebraic rotations take a different (smaller-angle) root than the
        // dynamic kernel's trigonometric ones, so eigenvector columns may differ
        // by a phase; the decomposition itself must still be exact.
        assert!(
            reconstruct(&eigenvalues, &eigenvectors).max_abs_diff(&small) < 1e-12,
            "V diag(λ) V† must reconstruct the input"
        );
        let mut vdag = SmallMatrix::ZERO;
        eigenvectors.dagger_into(&mut vdag);
        let mut gram = SmallMatrix::ZERO;
        vdag.matmul_into(&eigenvectors, &mut gram);
        assert!(
            gram.max_abs_diff(&SmallMatrix::identity()) < 1e-12,
            "eigenvector columns must be orthonormal"
        );
    }

    #[test]
    fn jacobi_16x16_reconstructs() {
        let h = SmallMatrix::<16>::from_fn(|r, c| {
            let x = ((r * 7 + c * 13) as f64 * 0.37).sin();
            let y = ((r as i64 - c as i64) as f64 * 0.53).sin();
            c64(
                x + if r == c { 2.0 } else { 0.0 },
                if r == c { 0.0 } else { y },
            )
        });
        // Hermitianize.
        let mut dag = SmallMatrix::ZERO;
        h.dagger_into(&mut dag);
        let mut herm = SmallMatrix::ZERO;
        h.add_scaled_into(C64::ONE, &dag, &mut herm);
        let mut half = SmallMatrix::ZERO;
        herm.scale_into(c64(0.5, 0.0), &mut half);

        let (eigenvalues, eigenvectors) = decompose(&half);
        for pair in eigenvalues.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12, "eigenvalues must ascend");
        }
        assert!(reconstruct(&eigenvalues, &eigenvectors).max_abs_diff(&half) < 1e-11);
    }
}
