//! Matrix exponential via scaling-and-squaring with a truncated Taylor series.
//!
//! The pulse-level propagation in GRAPE repeatedly computes `exp(-i Δt H)` for small
//! (≤ 16x16, and 81x81 for the qutrit model) matrices. A scaled Taylor expansion is
//! accurate to near machine precision for the norms encountered here and avoids the
//! complexity of a Padé implementation.

use crate::{Matrix, C64};

/// Default Taylor truncation order used by [`expm`].
pub const DEFAULT_TAYLOR_ORDER: usize = 18;

/// Computes the matrix exponential `exp(A)` of a square complex matrix.
///
/// Uses scaling-and-squaring: `A` is divided by `2^s` so its 1-norm is below 0.5, the
/// exponential of the scaled matrix is computed with an order-[`DEFAULT_TAYLOR_ORDER`]
/// Taylor series, and the result is squared `s` times.
///
/// # Panics
///
/// Panics if `a` is not square or contains non-finite entries.
///
/// ```
/// use vqc_linalg::{C64, Matrix, expm::expm};
/// use std::f64::consts::PI;
/// // exp(-i (pi/2) X) = -i X  (a pi rotation about the X axis, up to phase)
/// let x = Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
/// let u = expm(&x.scale(C64::new(0.0, -PI / 2.0)));
/// assert!(u.approx_eq(&x.scale(C64::new(0.0, -1.0)), 1e-12));
/// ```
pub fn expm(a: &Matrix) -> Matrix {
    expm_with_order(a, DEFAULT_TAYLOR_ORDER)
}

/// Computes `exp(A)` with an explicit Taylor truncation order.
///
/// Lower orders trade accuracy for speed; [`expm`] uses [`DEFAULT_TAYLOR_ORDER`].
///
/// # Panics
///
/// Panics if `a` is not square, contains non-finite entries, or `order == 0`.
pub fn expm_with_order(a: &Matrix, order: usize) -> Matrix {
    assert!(a.is_square(), "expm requires a square matrix");
    assert!(a.is_finite(), "expm requires finite entries");
    assert!(order > 0, "Taylor order must be positive");

    let norm = a.one_norm();
    // Choose s so that ||A / 2^s|| <= 0.5.
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scaled = a.scale_real(1.0 / f64::powi(2.0, s as i32));

    // Taylor series: exp(B) = sum_k B^k / k!
    let n = a.rows();
    let mut result = Matrix::identity(n);
    let mut term = Matrix::identity(n);
    for k in 1..=order {
        term = term.matmul(&scaled).scale_real(1.0 / k as f64);
        result = &result + &term;
        if term.max_abs() < 1e-18 {
            break;
        }
    }

    // Undo the scaling by repeated squaring.
    for _ in 0..s {
        result = result.matmul(&result);
    }
    result
}

/// Computes `exp(-i t H)` for a Hermitian `H`, the unitary time-evolution operator.
///
/// This is the form used by the pulse propagator: `H` is a control Hamiltonian for one
/// time slice and `t` its duration.
///
/// # Panics
///
/// Panics if `h` is not square.
pub fn expm_i_hermitian(h: &Matrix, t: f64) -> Matrix {
    expm(&h.scale(C64::new(0.0, -t)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;
    use std::f64::consts::PI;

    fn pauli_x() -> Matrix {
        Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]])
    }

    fn pauli_z() -> Matrix {
        Matrix::diag(&[C64::ONE, -C64::ONE])
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let z = Matrix::zeros(4, 4);
        assert!(expm(&z).approx_eq(&Matrix::identity(4), 1e-15));
    }

    #[test]
    fn expm_of_diagonal_matches_scalar_exp() {
        let d = Matrix::diag(&[c64(0.3, 0.0), c64(0.0, 1.2), c64(-0.5, -0.7)]);
        let e = expm(&d);
        for i in 0..3 {
            assert!(e[(i, i)].approx_eq(d[(i, i)].exp(), 1e-13));
        }
        assert!(e[(0, 1)].abs() < 1e-15);
    }

    #[test]
    fn rotation_about_x_axis() {
        // exp(-i theta/2 X) = cos(theta/2) I - i sin(theta/2) X
        let theta: f64 = 1.234;
        let u = expm_i_hermitian(&pauli_x(), theta / 2.0);
        let expected = &Matrix::identity(2).scale_real((theta / 2.0).cos())
            + &pauli_x().scale(C64::new(0.0, -(theta / 2.0).sin()));
        assert!(u.approx_eq(&expected, 1e-13));
        assert!(u.is_unitary(1e-12));
    }

    #[test]
    fn exp_of_hermitian_times_minus_i_is_unitary() {
        // Random-ish Hermitian built from Paulis.
        let h = &(&pauli_x().scale_real(0.7) + &pauli_z().scale_real(-1.3))
            + &Matrix::identity(2).scale_real(0.25);
        assert!(h.is_hermitian(1e-14));
        let u = expm_i_hermitian(&h, 2.5);
        assert!(u.is_unitary(1e-11));
    }

    #[test]
    fn large_norm_scaling_is_accurate() {
        // exp(-i pi X) = -I : large enough that scaling-and-squaring kicks in if we
        // multiply the exponent further.
        let u = expm_i_hermitian(&pauli_x().scale_real(10.0), PI);
        // exp(-i 10 pi X) = cos(10 pi) I - i sin(10 pi) X = I
        assert!(u.approx_eq(&Matrix::identity(2), 1e-9));
    }

    #[test]
    fn additivity_for_commuting_matrices() {
        let z = pauli_z();
        let a = expm(&z.scale(c64(0.0, -0.4)));
        let b = expm(&z.scale(c64(0.0, -0.9)));
        let ab = expm(&z.scale(c64(0.0, -1.3)));
        assert!(a.matmul(&b).approx_eq(&ab, 1e-12));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn expm_rejects_rectangular() {
        expm(&Matrix::zeros(2, 3));
    }
}
