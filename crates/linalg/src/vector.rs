//! Dense complex vectors (quantum state vectors).

use crate::C64;
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense complex column vector.
///
/// Used throughout the workspace as a quantum state vector of dimension `2^n`.
///
/// ```
/// use vqc_linalg::{C64, Vector};
/// let psi = Vector::basis_state(4, 0);
/// assert!((psi.norm() - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<C64>,
}

impl Vector {
    /// Creates a zero vector of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        Vector {
            data: vec![C64::ZERO; dim],
        }
    }

    /// Creates a vector from an owned buffer.
    pub fn from_vec(data: Vec<C64>) -> Self {
        Vector { data }
    }

    /// Creates the computational basis state `|index⟩` in a `dim`-dimensional space.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn basis_state(dim: usize, index: usize) -> Self {
        assert!(index < dim, "basis state index out of range");
        let mut v = Vector::zeros(dim);
        v.data[index] = C64::ONE;
        v
    }

    /// Dimension of the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has dimension zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<C64> {
        self.data
    }

    /// Returns the element at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> C64 {
        self.data[i]
    }

    /// Euclidean (l2) norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Normalizes the vector in place to unit norm. No-op for the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for z in &mut self.data {
                *z = *z / n;
            }
        }
    }

    /// Inner product `⟨self|other⟩` (conjugate-linear in `self`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn inner(&self, other: &Vector) -> C64 {
        assert_eq!(self.len(), other.len(), "inner product dimension mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Probability of measuring basis state `i`: `|⟨i|self⟩|^2`.
    pub fn probability(&self, i: usize) -> f64 {
        self.data[i].norm_sqr()
    }

    /// All basis-state probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.norm_sqr()).collect()
    }
}

impl Index<usize> for Vector {
    type Output = C64;
    #[inline]
    fn index(&self, i: usize) -> &C64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut C64 {
        &mut self.data[i]
    }
}

impl FromIterator<C64> for Vector {
    fn from_iter<I: IntoIterator<Item = C64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::c64;

    #[test]
    fn basis_states_are_orthonormal() {
        let e0 = Vector::basis_state(4, 0);
        let e2 = Vector::basis_state(4, 2);
        assert!((e0.norm() - 1.0).abs() < 1e-15);
        assert!(e0.inner(&e2).abs() < 1e-15);
        assert!((e0.inner(&e0) - C64::ONE).abs() < 1e-15);
    }

    #[test]
    fn normalization() {
        let mut v = Vector::from_vec(vec![c64(3.0, 0.0), c64(0.0, 4.0)]);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-15);
        assert!((v.probability(0) - 0.36).abs() < 1e-12);
        assert!((v.probability(1) - 0.64).abs() < 1e-12);
    }

    #[test]
    fn inner_product_is_conjugate_linear() {
        let a = Vector::from_vec(vec![C64::I, C64::ZERO]);
        let b = Vector::from_vec(vec![C64::ONE, C64::ZERO]);
        // ⟨i a | b⟩ = -i ⟨a|b⟩
        assert!(a.inner(&b).approx_eq(-C64::I, 1e-15));
    }

    #[test]
    fn probabilities_sum_to_one_after_normalize() {
        let mut v = Vector::from_vec(vec![c64(1.0, 1.0), c64(2.0, -0.5), c64(0.0, 3.0)]);
        v.normalize();
        let total: f64 = v.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_normalize_is_noop() {
        let mut v = Vector::zeros(3);
        v.normalize();
        assert_eq!(v.norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "basis state index out of range")]
    fn basis_state_out_of_range_panics() {
        Vector::basis_state(2, 2);
    }
}
