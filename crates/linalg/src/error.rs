//! Error type shared by the linear-algebra operations.

use std::error::Error;
use std::fmt;

/// Errors produced by dimension-checked linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes (e.g. matmul of 2x3 by 2x2).
    ShapeMismatch {
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
        /// The operation that was attempted.
        op: &'static str,
    },
    /// An operation that requires a square matrix received a rectangular one.
    NotSquare {
        /// Shape of the offending matrix as `(rows, cols)`.
        shape: (usize, usize),
        /// The operation that was attempted.
        op: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { shape, op } => {
                write!(
                    f,
                    "{op} requires a square matrix, got {}x{}",
                    shape.0, shape.1
                )
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = LinalgError::ShapeMismatch {
            left: (2, 3),
            right: (2, 2),
            op: "matmul",
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));

        let err = LinalgError::NotSquare {
            shape: (3, 4),
            op: "trace",
        };
        assert!(err.to_string().contains("square"));
    }
}
