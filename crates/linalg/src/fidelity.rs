//! Fidelity measures between unitaries and between states.
//!
//! GRAPE's primary cost function is the *trace infidelity* between the realized unitary
//! and the target unitary (Section 5 of the paper); the helpers here are shared by the
//! pulse optimizer, its tests, and the benchmark harness.

use crate::{Matrix, Vector};

/// Trace (gate) fidelity between two unitaries: `|Tr(U† V)|² / d²`.
///
/// Insensitive to global phase and equal to 1 exactly when `U = e^{iφ} V`.
///
/// # Panics
///
/// Panics if the matrices are not square or have different shapes.
pub fn trace_fidelity(u: &Matrix, v: &Matrix) -> f64 {
    assert!(
        u.is_square() && v.is_square(),
        "fidelity requires square matrices"
    );
    assert_eq!(u.shape(), v.shape(), "fidelity requires equal shapes");
    let d = u.rows() as f64;
    let overlap = u.dagger().matmul(v).trace();
    overlap.norm_sqr() / (d * d)
}

/// Trace infidelity `1 - trace_fidelity(u, v)`, the quantity GRAPE minimizes.
pub fn trace_infidelity(u: &Matrix, v: &Matrix) -> f64 {
    1.0 - trace_fidelity(u, v)
}

/// State fidelity `|⟨ψ|φ⟩|²` between two pure states.
///
/// # Panics
///
/// Panics if the vectors have different dimensions.
pub fn state_fidelity(psi: &Vector, phi: &Vector) -> f64 {
    psi.inner(phi).norm_sqr()
}

/// Average gate fidelity for a `d`-dimensional unitary, derived from the trace fidelity
/// via `F_avg = (d·F_tr + 1) / (d + 1)`.
pub fn average_gate_fidelity(u: &Matrix, v: &Matrix) -> f64 {
    let d = u.rows() as f64;
    (d * trace_fidelity(u, v) + 1.0) / (d + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{c64, C64};

    fn hadamard() -> Matrix {
        let s = 1.0 / 2.0_f64.sqrt();
        Matrix::from_rows(&[&[c64(s, 0.0), c64(s, 0.0)], &[c64(s, 0.0), c64(-s, 0.0)]])
    }

    #[test]
    fn identical_unitaries_have_unit_fidelity() {
        let h = hadamard();
        assert!((trace_fidelity(&h, &h) - 1.0).abs() < 1e-14);
        assert!(trace_infidelity(&h, &h) < 1e-14);
        assert!((average_gate_fidelity(&h, &h) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn global_phase_does_not_matter() {
        let h = hadamard();
        let phased = h.scale(C64::cis(1.1));
        assert!((trace_fidelity(&h, &phased) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn orthogonal_unitaries_have_low_fidelity() {
        let x = Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        let z = Matrix::diag(&[C64::ONE, -C64::ONE]);
        // Tr(X† Z) = 0 so fidelity is zero.
        assert!(trace_fidelity(&x, &z) < 1e-14);
    }

    #[test]
    fn state_fidelity_bounds() {
        let e0 = Vector::basis_state(2, 0);
        let e1 = Vector::basis_state(2, 1);
        assert!((state_fidelity(&e0, &e0) - 1.0).abs() < 1e-15);
        assert!(state_fidelity(&e0, &e1) < 1e-15);
    }

    #[test]
    fn fidelity_is_symmetric() {
        let x = Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
        let h = hadamard();
        assert!((trace_fidelity(&x, &h) - trace_fidelity(&h, &x)).abs() < 1e-14);
    }
}
