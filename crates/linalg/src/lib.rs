//! Dense complex linear algebra for the partial-compilation reproduction.
//!
//! This crate is the numerical substrate that every other crate in the workspace
//! builds on. It provides:
//!
//! * [`C64`] — a `Copy` double-precision complex scalar with the usual arithmetic,
//!   exponentials, and polar helpers.
//! * [`Matrix`] — a dense, row-major complex matrix with matrix multiplication,
//!   Kronecker products, adjoints, traces, and unitarity checks. The allocating
//!   operations are thin wrappers over in-place kernels ([`Matrix::matmul_into`],
//!   [`Matrix::dagger_into`], [`Matrix::scale_into`], [`Matrix::add_scaled_into`],
//!   [`eigh_into`]) that write into caller-owned buffers, which is what lets the
//!   GRAPE optimizer iterate without touching the heap.
//! * [`Vector`] — a dense complex column vector used for quantum state vectors.
//! * [`expm`](expm::expm) — the matrix exponential via scaling-and-squaring with a
//!   truncated Taylor series, which is the workhorse of pulse propagation in GRAPE.
//! * [`fidelity`] — trace/process fidelities between unitaries, the cost functions that
//!   GRAPE optimizes.
//!
//! The sizes involved in this project are small (at most `2^4 x 2^4 = 16 x 16` complex
//! matrices inside GRAPE, and at most `2^10` state vectors in the circuit simulator), so
//! a straightforward dense implementation is both sufficient and easy to audit.
//!
//! # Example
//!
//! ```
//! use vqc_linalg::{C64, Matrix};
//!
//! // Build the Pauli-X matrix and verify X^2 = I.
//! let x = Matrix::from_rows(&[
//!     &[C64::ZERO, C64::ONE],
//!     &[C64::ONE, C64::ZERO],
//! ]);
//! let x2 = x.matmul(&x);
//! assert!(x2.approx_eq(&Matrix::identity(2), 1e-12));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod complex;
pub mod eigh;
mod error;
pub mod expm;
pub mod fidelity;
mod matrix;
pub mod small;
mod vector;

pub use complex::C64;
pub use eigh::{eigh, eigh_into, EighResult, EighWorkspace};
pub use error::LinalgError;
pub use matrix::Matrix;
pub use small::{SmallEighWorkspace, SmallMatrix};
pub use vector::Vector;

/// Convenience constructor for a complex number, mirroring `num_complex::Complex::new`.
///
/// ```
/// use vqc_linalg::{c64, C64};
/// assert_eq!(c64(1.0, -2.0), C64::new(1.0, -2.0));
/// ```
#[inline]
pub fn c64(re: f64, im: f64) -> C64 {
    C64::new(re, im)
}
