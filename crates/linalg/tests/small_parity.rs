//! Property-based parity between the const-generic [`SmallMatrix`] kernels and
//! the dynamic [`Matrix`] reference implementations, for the three GRAPE
//! monomorphizations N = 2, 4, 16.
//!
//! The dynamic path is the ground truth: every unrolled kernel must reproduce
//! it to near machine precision. The specialized `eigh` is the one exception —
//! its eigenbasis is only defined up to a per-column phase (and a rotation
//! inside degenerate subspaces), so it is checked phase-invariantly via sorted
//! eigenvalues, spectral reconstruction, and orthonormality rather than by
//! entrywise comparison of the eigenvector matrix.

use proptest::prelude::*;
use vqc_linalg::small::{self, SmallEighWorkspace, SmallMatrix};
use vqc_linalg::{c64, eigh, Matrix, C64};

/// Strategy producing a complex number with bounded components.
fn arb_c64(bound: f64) -> impl Strategy<Value = C64> {
    (-bound..bound, -bound..bound).prop_map(|(re, im)| c64(re, im))
}

/// Strategy producing the row-major entries of an `n x n` complex matrix.
fn arb_entries(n: usize, bound: f64) -> impl Strategy<Value = Vec<C64>> {
    prop::collection::vec(arb_c64(bound), n * n)
}

fn small_of<const N: usize>(data: &[C64]) -> SmallMatrix<N> {
    SmallMatrix::from_fn(|r, c| data[r * N + c])
}

fn matrix_of(n: usize, data: &[C64]) -> Matrix {
    Matrix::from_vec(n, n, data.to_vec())
}

/// A deliberately garbage-filled output, so parity also proves the `_into`
/// kernels overwrite (rather than accumulate into) their destination.
fn dirty<const N: usize>() -> SmallMatrix<N> {
    SmallMatrix::from_fn(|r, c| c64(1.0 + r as f64, -2.0 - c as f64))
}

/// Every arithmetic kernel against its allocating dynamic counterpart.
fn check_kernels<const N: usize>(a_data: &[C64], b_data: &[C64], k: C64) {
    let a = small_of::<N>(a_data);
    let b = small_of::<N>(b_data);
    let da = matrix_of(N, a_data);
    let db = matrix_of(N, b_data);
    let mut out = dirty::<N>();

    a.matmul_into(&b, &mut out);
    assert!(
        out.to_matrix().approx_eq(&da.matmul(&db), 1e-12),
        "matmul_into diverges from Matrix::matmul at N={N}"
    );

    a.dagger_into(&mut out);
    assert!(
        out.to_matrix().approx_eq(&da.dagger(), 1e-12),
        "dagger_into diverges from Matrix::dagger at N={N}"
    );

    a.scale_into(k, &mut out);
    assert!(
        out.to_matrix().approx_eq(&da.scale(k), 1e-12),
        "scale_into diverges from Matrix::scale at N={N}"
    );

    a.add_scaled_into(k, &b, &mut out);
    let reference = &da + &db.scale(k);
    assert!(
        out.to_matrix().approx_eq(&reference, 1e-12),
        "add_scaled_into diverges from add + scale at N={N}"
    );

    let mut acc = a;
    acc.add_scaled_assign(k, &b);
    assert!(
        acc.to_matrix().approx_eq(&reference, 1e-12),
        "add_scaled_assign diverges from add + scale at N={N}"
    );
}

/// `from_matrix` / `write_to` / `to_matrix` / `entries` / `fill_from_entries`
/// round trips preserve every entry bit-for-bit.
fn check_round_trips<const N: usize>(a_data: &[C64]) {
    let dynamic = matrix_of(N, a_data);
    let small = SmallMatrix::<N>::from_matrix(&dynamic);
    assert_eq!(small.to_matrix(), dynamic, "to_matrix round trip at N={N}");

    let mut written = Matrix::zeros(N, N);
    small.write_to(&mut written);
    assert_eq!(written, dynamic, "write_to round trip at N={N}");

    let collected: Vec<C64> = small.entries().collect();
    assert_eq!(
        collected, a_data,
        "entries() must stream row-major at N={N}"
    );
    let mut refilled = dirty::<N>();
    refilled.fill_from_entries(&collected);
    assert_eq!(
        refilled.max_abs_diff(&small),
        0.0,
        "fill_from_entries round trip at N={N}"
    );
}

/// The specialized `eigh` against the dynamic solver, phase-invariantly:
/// identical sorted spectra, exact spectral reconstruction, orthonormal basis.
fn check_eigh<const N: usize>(a_data: &[C64]) {
    let da = matrix_of(N, a_data);
    let hermitian = (&da + &da.dagger()).scale_real(0.5);
    let h = SmallMatrix::<N>::from_matrix(&hermitian);
    let tol = 1e-11 * h.frobenius_norm().max(1.0);

    let reference = eigh(&hermitian);
    let mut workspace = SmallEighWorkspace::<N>::new();
    let mut lambdas = [0.0; N];
    let mut vectors = dirty::<N>();
    // Run twice through the same workspace: the second call must not be
    // perturbed by the first call's leftovers.
    small::eigh_into(&h, &mut workspace, &mut lambdas, &mut vectors);
    small::eigh_into(&h, &mut workspace, &mut lambdas, &mut vectors);

    for (i, (&fast, &slow)) in lambdas.iter().zip(reference.eigenvalues.iter()).enumerate() {
        assert!(
            (fast - slow).abs() < tol,
            "eigenvalue {i} diverges from dynamic eigh at N={N}: {fast} vs {slow}"
        );
    }

    // V Λ V† reconstructs H.
    let scaled = SmallMatrix::<N>::from_fn(|r, c| vectors.get(r, c) * c64(lambdas[c], 0.0));
    let mut vdag = SmallMatrix::<N>::ZERO;
    vectors.dagger_into(&mut vdag);
    let mut reconstructed = SmallMatrix::<N>::ZERO;
    scaled.matmul_into(&vdag, &mut reconstructed);
    assert!(
        reconstructed.max_abs_diff(&h) < tol,
        "V diag(lambda) V^dagger fails to reconstruct H at N={N}"
    );

    // V† V = I.
    let mut gram = SmallMatrix::<N>::ZERO;
    vdag.matmul_into(&vectors, &mut gram);
    assert!(
        gram.max_abs_diff(&SmallMatrix::identity()) < tol,
        "eigenbasis is not orthonormal at N={N}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernels_match_dynamic_2(a in arb_entries(2, 3.0), b in arb_entries(2, 3.0), k in arb_c64(2.0)) {
        check_kernels::<2>(&a, &b, k);
    }

    #[test]
    fn kernels_match_dynamic_4(a in arb_entries(4, 3.0), b in arb_entries(4, 3.0), k in arb_c64(2.0)) {
        check_kernels::<4>(&a, &b, k);
    }

    #[test]
    fn round_trips_preserve_entries_2(a in arb_entries(2, 3.0)) {
        check_round_trips::<2>(&a);
    }

    #[test]
    fn round_trips_preserve_entries_4(a in arb_entries(4, 3.0)) {
        check_round_trips::<4>(&a);
    }

    #[test]
    fn eigh_matches_dynamic_2(a in arb_entries(2, 2.0)) {
        check_eigh::<2>(&a);
    }

    #[test]
    fn eigh_matches_dynamic_4(a in arb_entries(4, 2.0)) {
        check_eigh::<4>(&a);
    }
}

proptest! {
    // N = 16 cases are ~64x the work of N = 4; a smaller case count keeps the
    // suite fast while still sweeping the Jacobi path well past its unrolled
    // 2x2 sibling.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn kernels_match_dynamic_16(a in arb_entries(16, 2.0), b in arb_entries(16, 2.0), k in arb_c64(2.0)) {
        check_kernels::<16>(&a, &b, k);
    }

    #[test]
    fn round_trips_preserve_entries_16(a in arb_entries(16, 2.0)) {
        check_round_trips::<16>(&a);
    }

    #[test]
    fn eigh_matches_dynamic_16(a in arb_entries(16, 1.0)) {
        check_eigh::<16>(&a);
    }
}
