//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use vqc_linalg::expm::{expm, expm_i_hermitian};
use vqc_linalg::fidelity::{trace_fidelity, trace_infidelity};
use vqc_linalg::{c64, eigh, eigh_into, EighWorkspace, Matrix, Vector, C64};

/// Strategy producing a complex number with bounded components.
fn arb_c64(bound: f64) -> impl Strategy<Value = C64> {
    (-bound..bound, -bound..bound).prop_map(|(re, im)| c64(re, im))
}

/// Strategy producing an `n x n` complex matrix with bounded entries.
fn arb_matrix(n: usize, bound: f64) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(arb_c64(bound), n * n).prop_map(move |data| Matrix::from_vec(n, n, data))
}

/// Strategy producing an `n x n` Hermitian matrix with bounded entries.
fn arb_hermitian(n: usize, bound: f64) -> impl Strategy<Value = Matrix> {
    arb_matrix(n, bound).prop_map(|m| (&m + &m.dagger()).scale_real(0.5))
}

/// Strategy producing a normalized `dim`-dimensional state vector.
fn arb_state(dim: usize) -> impl Strategy<Value = Vector> {
    prop::collection::vec(arb_c64(1.0), dim).prop_filter_map("non-zero state", |data| {
        let mut v = Vector::from_vec(data);
        if v.norm() < 1e-6 {
            None
        } else {
            v.normalize();
            Some(v)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_multiplication_is_commutative(a in arb_c64(10.0), b in arb_c64(10.0)) {
        prop_assert!((a * b).approx_eq(b * a, 1e-10));
    }

    #[test]
    fn complex_conjugation_distributes_over_product(a in arb_c64(10.0), b in arb_c64(10.0)) {
        prop_assert!((a * b).conj().approx_eq(a.conj() * b.conj(), 1e-9));
    }

    #[test]
    fn matmul_is_associative(a in arb_matrix(3, 2.0), b in arb_matrix(3, 2.0), c in arb_matrix(3, 2.0)) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn dagger_is_involutive(a in arb_matrix(4, 3.0)) {
        prop_assert!(a.dagger().dagger().approx_eq(&a, 1e-12));
    }

    #[test]
    fn dagger_reverses_matmul(a in arb_matrix(3, 2.0), b in arb_matrix(3, 2.0)) {
        let lhs = a.matmul(&b).dagger();
        let rhs = b.dagger().matmul(&a.dagger());
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn kron_mixed_product_property(a in arb_matrix(2, 1.5), b in arb_matrix(2, 1.5),
                                   c in arb_matrix(2, 1.5), d in arb_matrix(2, 1.5)) {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn trace_is_linear(a in arb_matrix(3, 2.0), b in arb_matrix(3, 2.0)) {
        let lhs = (&a + &b).trace();
        let rhs = a.trace() + b.trace();
        prop_assert!(lhs.approx_eq(rhs, 1e-10));
    }

    #[test]
    fn trace_is_cyclic(a in arb_matrix(3, 2.0), b in arb_matrix(3, 2.0)) {
        prop_assert!(a.matmul(&b).trace().approx_eq(b.matmul(&a).trace(), 1e-9));
    }

    #[test]
    fn exp_of_minus_i_hermitian_is_unitary(h in arb_hermitian(4, 1.5), t in 0.0..3.0f64) {
        let u = expm_i_hermitian(&h, t);
        prop_assert!(u.is_unitary(1e-8));
    }

    #[test]
    fn expm_inverse_is_exp_of_negative(h in arb_hermitian(3, 1.0), t in 0.0..2.0f64) {
        let u = expm_i_hermitian(&h, t);
        let u_inv = expm_i_hermitian(&h, -t);
        prop_assert!(u.matmul(&u_inv).approx_eq(&Matrix::identity(3), 1e-8));
    }

    #[test]
    fn expm_of_sum_for_commuting(d1 in prop::collection::vec(-2.0..2.0f64, 3),
                                 d2 in prop::collection::vec(-2.0..2.0f64, 3)) {
        // Diagonal (hence commuting) Hermitian matrices: exp(A+B) = exp(A) exp(B).
        let a = Matrix::diag(&d1.iter().map(|&x| c64(0.0, x)).collect::<Vec<_>>());
        let b = Matrix::diag(&d2.iter().map(|&x| c64(0.0, x)).collect::<Vec<_>>());
        let lhs = expm(&(&a + &b));
        let rhs = expm(&a).matmul(&expm(&b));
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn trace_fidelity_is_bounded(h1 in arb_hermitian(3, 1.0), h2 in arb_hermitian(3, 1.0)) {
        let u = expm_i_hermitian(&h1, 1.0);
        let v = expm_i_hermitian(&h2, 1.0);
        let f = trace_fidelity(&u, &v);
        prop_assert!((-1e-10..=1.0 + 1e-10).contains(&f));
        prop_assert!(trace_infidelity(&u, &u) < 1e-9);
    }

    #[test]
    fn unitary_preserves_state_norm(h in arb_hermitian(4, 1.0), psi in arb_state(4), t in 0.0..2.0f64) {
        let u = expm_i_hermitian(&h, t);
        let evolved = u.matvec(&psi);
        prop_assert!((evolved.norm() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn state_probabilities_sum_to_one(psi in arb_state(8)) {
        let total: f64 = psi.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    // --- in-place kernels match their allocating counterparts ---------------------
    // The allocating APIs are the reference implementations; every `_into` kernel
    // must produce identical results into a caller-owned (and dirty) buffer.

    #[test]
    fn matmul_into_matches_matmul(a in arb_matrix(3, 2.0), b in arb_matrix(3, 2.0)) {
        let mut out = arb_dirty(3);
        a.matmul_into(&b, &mut out);
        prop_assert!(out.approx_eq(&a.matmul(&b), 1e-12));
    }

    #[test]
    fn dagger_into_matches_dagger(a in arb_matrix(4, 3.0)) {
        let mut out = arb_dirty(4);
        a.dagger_into(&mut out);
        prop_assert!(out.approx_eq(&a.dagger(), 1e-12));
    }

    #[test]
    fn scale_into_matches_scale(a in arb_matrix(3, 2.0), k in arb_c64(3.0)) {
        let mut out = arb_dirty(3);
        a.scale_into(k, &mut out);
        prop_assert!(out.approx_eq(&a.scale(k), 1e-12));
    }

    #[test]
    fn add_scaled_into_matches_add_and_scale(a in arb_matrix(3, 2.0), b in arb_matrix(3, 2.0),
                                             k in arb_c64(3.0)) {
        let mut out = arb_dirty(3);
        a.add_scaled_into(k, &b, &mut out);
        prop_assert!(out.approx_eq(&(&a + &b.scale(k)), 1e-12));

        let mut acc = a.clone();
        acc.add_scaled_assign(k, &b);
        prop_assert!(acc.approx_eq(&out, 1e-12));
    }

    #[test]
    fn copy_from_matches_clone(a in arb_matrix(4, 2.0)) {
        let mut out = arb_dirty(4);
        out.copy_from(&a);
        prop_assert_eq!(out, a);
    }

    #[test]
    fn eigh_into_matches_eigh(h in arb_hermitian(4, 2.0)) {
        let reference = eigh(&h);
        let mut workspace = EighWorkspace::new(4);
        let mut eigenvalues = Vec::new();
        let mut eigenvectors = arb_dirty(4);
        // Run twice through the same workspace: the second call must not be
        // perturbed by the first call's leftovers.
        eigh_into(&h, &mut workspace, &mut eigenvalues, &mut eigenvectors);
        eigh_into(&h, &mut workspace, &mut eigenvalues, &mut eigenvectors);
        prop_assert_eq!(&eigenvalues, &reference.eigenvalues);
        prop_assert!(eigenvectors.approx_eq(&reference.eigenvectors, 1e-12));
    }
}

/// A deliberately garbage-filled square matrix, so the `_into` tests prove the
/// kernels overwrite (rather than accumulate into) their output buffers.
fn arb_dirty(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |r, c| c64(1.0 + r as f64, -2.0 - c as f64))
}
