//! Loopback integration tests of the TCP transport: concurrent remote clients
//! share the scheduler (exactly-once compilation, priority ordering, per-client
//! stats), disconnects cancel in-flight work and free queue capacity, and
//! protocol faults (malformed frames, oversized frames, version mismatches)
//! are contained to the offending connection.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vqc_circuit::Circuit;
use vqc_core::{CompilerOptions, Strategy};
use vqc_runtime::{
    chrome_trace_json, Backpressure, CompilationRuntime, Priority, RuntimeOptions, ServiceOptions,
    TelemetryOptions, TraceStage,
};
use vqc_transport::{
    merged_chrome_trace, wire, Client, ClientOptions, ClientSpan, JobEvent, JobUpdate,
    RejectReason, RemoteError, Request, Response, Server, ServerOptions, SubmitPayload,
    PROTOCOL_VERSION,
};

fn fast_options() -> CompilerOptions {
    let mut options = CompilerOptions::fast();
    options.grape.max_iterations = 80;
    options.grape.target_infidelity = 5e-2;
    options.search_precision_ns = 2.0;
    options
}

/// A circuit that aggregates into exactly one Fixed 2-qubit GRAPE block.
fn one_block_circuit(phase: f64) -> Circuit {
    let mut circuit = Circuit::new(2);
    circuit.h(0);
    circuit.h(1);
    circuit.cx(0, 1);
    circuit.rx(0, phase);
    circuit.cx(0, 1);
    circuit
}

/// A 4-qubit circuit aggregating (at `max_block_width = 2`) into a shared
/// (0, 1) block identical for every phase and a private (2, 3) block.
fn shared_plus_private(private_phase: f64) -> Circuit {
    let mut circuit = Circuit::new(4);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.rx(0, 0.7);
    circuit.cx(0, 1);
    circuit.h(2);
    circuit.cx(2, 3);
    circuit.rx(2, private_phase);
    circuit.cx(2, 3);
    circuit
}

fn serve(runtime: CompilationRuntime) -> (Server, Arc<CompilationRuntime>) {
    let runtime = Arc::new(runtime);
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&runtime),
        ServerOptions::default(),
    )
    .expect("bind loopback");
    (server, runtime)
}

/// The acceptance scenario over real sockets: two TCP clients at different
/// priorities submit overlapping batches; the shared block compiles exactly
/// once, both get complete reports with identical shared-block pulses, and the
/// per-client `Stats` slices attribute the work correctly.
#[test]
fn two_remote_clients_share_blocks_exactly_once_with_priority_ordering() {
    let mut options = fast_options();
    options.max_block_width = 2;
    let (server, runtime) = serve(CompilationRuntime::new(
        options,
        RuntimeOptions::with_workers(1),
    ));
    runtime.pause();

    let low_client = Client::connect(
        server.local_addr(),
        ClientOptions::default()
            .with_name("low")
            .with_priority(Priority::LOW),
    )
    .unwrap();
    let high_client = Client::connect(
        server.local_addr(),
        ClientOptions::default()
            .with_name("high")
            .with_priority(Priority::HIGH),
    )
    .unwrap();
    assert_ne!(low_client.client_id(), high_client.client_id());

    let low_job = low_client
        .submit(SubmitPayload::Batch(vec![wire::WireJob {
            circuit: shared_plus_private(0.3),
            params: vec![],
            strategy: Strategy::StrictPartial,
        }]))
        .unwrap();
    // Let the low submission expand first so it owns the shared block's task
    // (the high client then coalesces and re-posts it at its own class).
    loop {
        match low_job.next_update().unwrap() {
            JobUpdate::Event(JobEvent::Running { jobs }) => {
                assert_eq!(jobs, 1);
                break;
            }
            JobUpdate::Event(_) => continue,
            other => panic!("unexpected update before Running: {other:?}"),
        }
    }
    let high_job = high_client
        .submit(SubmitPayload::Batch(vec![wire::WireJob {
            circuit: shared_plus_private(1.9),
            params: vec![],
            strategy: Strategy::StrictPartial,
        }]))
        .unwrap();
    // Both expanded into the paused ready queue, then dispatch.
    loop {
        match high_job.next_update().unwrap() {
            JobUpdate::Event(JobEvent::Running { .. }) => break,
            JobUpdate::Event(_) => continue,
            other => panic!("unexpected update before Running: {other:?}"),
        }
    }
    runtime.resume();

    let low_reports = low_job.wait().unwrap();
    let high_reports = high_job.wait().unwrap();
    let low_report = low_reports[0].as_ref().unwrap();
    let high_report = high_reports[0].as_ref().unwrap();
    assert_eq!(low_report.num_blocks, 2);
    assert_eq!(high_report.num_blocks, 2);
    let shared_duration = |report: &vqc_core::CompilationReport| {
        report
            .blocks
            .iter()
            .find(|b| b.qubits == vec![0, 1])
            .map(|b| b.duration_ns)
            .expect("both plans contain the shared (0,1) block")
    };
    assert_eq!(shared_duration(low_report), shared_duration(high_report));

    // Exactly-once: three unique GRAPE compilations for four block requests.
    let metrics = runtime.metrics();
    assert_eq!(metrics.unique_compilations, 3);
    assert_eq!(metrics.coalesced_waits, 1);

    // Per-client observability over the wire: the low client led the shared
    // block and its own private block; the high client compiled only its
    // private block and was served the shared one by fan-out.
    let low_stats = low_client.stats().unwrap();
    let high_stats = high_client.stats().unwrap();
    assert_eq!(low_stats.client_id, low_client.client_id());
    assert_eq!(low_stats.client.submissions, 1);
    assert_eq!(low_stats.client.compilations, 2);
    assert_eq!(high_stats.client.compilations, 1);
    assert_eq!(high_stats.client.coalesced_waits, 1);
    assert_eq!(high_stats.client.cache_hits, 1);
    assert_eq!(low_stats.runtime.unique_compilations, 3);
}

/// A client that disconnects mid-job has its submission canceled, which frees
/// admission-queue capacity for other clients.
#[test]
fn disconnect_mid_job_cancels_and_frees_queue_capacity() {
    let (server, runtime) = serve(CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(1).with_service(
            ServiceOptions::default()
                .with_queue_depth(1)
                .with_backpressure(Backpressure::Reject),
        ),
    ));
    runtime.pause(); // hold the first submission in flight

    let doomed = Client::connect(server.local_addr(), ClientOptions::default()).unwrap();
    let doomed_job = doomed
        .submit(SubmitPayload::Batch(vec![wire::WireJob {
            circuit: one_block_circuit(0.4),
            params: vec![],
            strategy: Strategy::StrictPartial,
        }]))
        .unwrap();
    // Ensure the submission was admitted before the disconnect.
    match doomed_job.next_update().unwrap() {
        JobUpdate::Event(JobEvent::Queued) => {}
        other => panic!("expected Queued, got {other:?}"),
    }

    // The queue is at depth: a second client is rejected.
    let survivor = Client::connect(server.local_addr(), ClientOptions::default()).unwrap();
    let rejected = survivor
        .submit(SubmitPayload::Batch(vec![wire::WireJob {
            circuit: one_block_circuit(0.9),
            params: vec![],
            strategy: Strategy::StrictPartial,
        }]))
        .unwrap();
    match rejected.wait() {
        Err(RemoteError::Rejected(RejectReason::QueueFull { depth: 1 })) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }

    // Drop the first client's connection mid-job: the server cancels its
    // submission and releases the admission slot.
    drop(doomed);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while runtime.metrics().canceled_submissions == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "disconnect did not cancel the in-flight submission"
        );
        std::thread::yield_now();
    }

    let retried = survivor
        .submit(SubmitPayload::Batch(vec![wire::WireJob {
            circuit: one_block_circuit(0.9),
            params: vec![],
            strategy: Strategy::StrictPartial,
        }]))
        .unwrap();
    runtime.resume();
    let results = retried.wait().expect("the freed slot admits the survivor");
    assert!(results[0].is_ok());
    // The canceled client's block was garbage-collected, never compiled.
    assert_eq!(runtime.metrics().unique_compilations, 1);
}

/// Remote cancellation: the client sends `Cancel`, the stream terminates with
/// a `Canceled` event, and `wait` surfaces it as an error.
#[test]
fn remote_cancel_terminates_the_stream() {
    let (server, runtime) = serve(CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(1),
    ));
    runtime.pause();
    let client = Client::connect(server.local_addr(), ClientOptions::default()).unwrap();
    let job = client
        .submit(SubmitPayload::Batch(vec![wire::WireJob {
            circuit: one_block_circuit(0.4),
            params: vec![],
            strategy: Strategy::StrictPartial,
        }]))
        .unwrap();
    job.cancel().unwrap();
    match job.wait() {
        Err(RemoteError::Canceled) => {}
        other => panic!("expected Canceled, got {other:?}"),
    }
    runtime.resume();

    // Canceling an unknown id is a rejection, not a hang or a crash.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    wire::write_frame(
        &mut raw,
        &Request::Hello {
            protocol: PROTOCOL_VERSION,
            client_name: "canceler".into(),
            priority: 8,
            weight: 1.0,
            sent_micros: 0,
        },
        wire::DEFAULT_MAX_FRAME,
    )
    .unwrap();
    match wire::read_frame::<_, Response>(&mut raw, wire::DEFAULT_MAX_FRAME).unwrap() {
        Response::Accepted { .. } => {}
        other => panic!("expected Accepted, got {other:?}"),
    }
    wire::write_frame(
        &mut raw,
        &Request::Cancel { id: 99 },
        wire::DEFAULT_MAX_FRAME,
    )
    .unwrap();
    match wire::read_frame::<_, Response>(&mut raw, wire::DEFAULT_MAX_FRAME).unwrap() {
        Response::Rejected {
            id: 99,
            reason: RejectReason::UnknownSubmission,
        } => {}
        other => panic!("expected UnknownSubmission, got {other:?}"),
    }
}

/// Malformed and oversized frames are contained: the offending connection gets
/// an error (and, for oversized, is closed), while the server keeps serving
/// other clients.
#[test]
fn protocol_faults_do_not_kill_the_server() {
    let (server, runtime) = serve(CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(1),
    ));
    let addr = server.local_addr();

    // A well-framed but undecodable payload after a valid handshake: the
    // server answers Error and keeps the connection alive.
    let mut raw = TcpStream::connect(addr).unwrap();
    wire::write_frame(
        &mut raw,
        &Request::Hello {
            protocol: PROTOCOL_VERSION,
            client_name: "fault-injector".into(),
            priority: 8,
            weight: 1.0,
            sent_micros: 0,
        },
        wire::DEFAULT_MAX_FRAME,
    )
    .unwrap();
    match wire::read_frame::<_, Response>(&mut raw, wire::DEFAULT_MAX_FRAME).unwrap() {
        Response::Accepted { .. } => {}
        other => panic!("expected Accepted, got {other:?}"),
    }
    let garbage = [0xffu8; 8];
    raw.write_all(&(garbage.len() as u32).to_le_bytes())
        .unwrap();
    raw.write_all(&garbage).unwrap();
    match wire::read_frame::<_, Response>(&mut raw, wire::DEFAULT_MAX_FRAME).unwrap() {
        Response::Error { .. } => {}
        other => panic!("expected Error for a malformed frame, got {other:?}"),
    }
    // The connection survived the malformed frame: Stats still answers.
    wire::write_frame(&mut raw, &Request::Stats, wire::DEFAULT_MAX_FRAME).unwrap();
    match wire::read_frame::<_, Response>(&mut raw, wire::DEFAULT_MAX_FRAME).unwrap() {
        Response::Stats { .. } => {}
        other => panic!("expected Stats after recovery, got {other:?}"),
    }

    // An oversized length prefix poisons the stream: Error, then close.
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    match wire::read_frame::<_, Response>(&mut raw, wire::DEFAULT_MAX_FRAME) {
        Ok(Response::Error { .. }) => {}
        Err(_) => {} // the server may close before the error frame is read
        other => panic!("expected Error/close for an oversized frame, got {other:?}"),
    }

    // The server is still alive for well-behaved clients.
    let client = Client::connect(addr, ClientOptions::default()).unwrap();
    let job = client
        .submit(SubmitPayload::Batch(vec![wire::WireJob {
            circuit: one_block_circuit(0.4),
            params: vec![],
            strategy: Strategy::StrictPartial,
        }]))
        .unwrap();
    assert!(job.wait().unwrap()[0].is_ok());
    assert!(runtime.metrics().unique_compilations >= 1);
}

/// A Hello with the wrong protocol version is rejected with both versions in
/// the reply, and the connection is closed.
#[test]
fn protocol_version_mismatch_is_rejected_in_hello() {
    let (server, _runtime) = serve(CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(1),
    ));
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    wire::write_frame(
        &mut raw,
        &Request::Hello {
            protocol: PROTOCOL_VERSION + 41,
            client_name: "time-traveler".into(),
            priority: 8,
            weight: 1.0,
            sent_micros: 0,
        },
        wire::DEFAULT_MAX_FRAME,
    )
    .unwrap();
    match wire::read_frame::<_, Response>(&mut raw, wire::DEFAULT_MAX_FRAME).unwrap() {
        Response::Rejected {
            id: 0,
            reason: RejectReason::VersionMismatch { server, client },
        } => {
            assert_eq!(server, PROTOCOL_VERSION);
            assert_eq!(client, PROTOCOL_VERSION + 41);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    // The server hangs up after the rejection.
    assert!(matches!(
        wire::read_frame::<_, Response>(&mut raw, wire::DEFAULT_MAX_FRAME),
        Err(wire::FrameError::Closed) | Err(wire::FrameError::Io(_))
    ));
    // A frame that is not Hello first is likewise rejected.
    let mut eager = TcpStream::connect(server.local_addr()).unwrap();
    wire::write_frame(&mut eager, &Request::Stats, wire::DEFAULT_MAX_FRAME).unwrap();
    match wire::read_frame::<_, Response>(&mut eager, wire::DEFAULT_MAX_FRAME).unwrap() {
        Response::Rejected {
            reason: RejectReason::HelloRequired,
            ..
        } => {}
        other => panic!("expected HelloRequired, got {other:?}"),
    }
}

/// Submissions stream `Queued` → `Running` → one `JobDone` per job → `Report`,
/// with job completions observable before the terminal frame.
#[test]
fn events_stream_per_job_completions_before_the_report() {
    let (server, _runtime) = serve(CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(2),
    ));
    let client = Client::connect(server.local_addr(), ClientOptions::default()).unwrap();
    let mut circuit = one_block_circuit(0.8);
    circuit.rz_expr(1, vqc_circuit::ParamExpr::theta(0));
    let job = client
        .submit(SubmitPayload::Iterations {
            circuit,
            parameter_sets: vec![vec![0.1], vec![0.7], vec![2.2]],
            strategy: Strategy::StrictPartial,
        })
        .unwrap();
    let mut done_jobs = Vec::new();
    let report = loop {
        match job.next_update().unwrap() {
            JobUpdate::Event(JobEvent::Queued) | JobUpdate::Event(JobEvent::Running { .. }) => {}
            JobUpdate::Event(JobEvent::JobDone {
                job: index,
                ok,
                pulse_duration_ns,
            }) => {
                assert!(ok);
                assert!(pulse_duration_ns > 0.0);
                done_jobs.push(index);
            }
            JobUpdate::Report(results) => break results,
            other => panic!("unexpected update: {other:?}"),
        }
    };
    assert_eq!(report.len(), 3);
    assert!(report.iter().all(|r| r.is_ok()));
    done_jobs.sort_unstable();
    assert_eq!(
        done_jobs,
        vec![0, 1, 2],
        "every job completion was streamed"
    );

    // Status polls answer out-of-band of the event stream.
    let idle = client.submit(SubmitPayload::Batch(vec![])).unwrap();
    match idle.wait() {
        Ok(results) => assert!(results.is_empty()),
        other => panic!("empty batch should succeed, got {other:?}"),
    }
}

/// The acceptance scenario for the metrics stream: a `Watch` subscriber on a
/// loopback server receives an immediate snapshot plus aggregator ticks with
/// strictly increasing `seq` while a second connection runs a concurrent
/// workload, and the stream converges on counters reflecting that workload.
/// `Stats` is enriched with server uptime and the aggregator's snapshot
/// cursor.
#[test]
fn watch_streams_monotonic_ticks_reflecting_a_concurrent_workload() {
    let (server, _runtime) = serve(CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(2)
            .with_telemetry(TelemetryOptions::default().with_interval(Duration::from_millis(20))),
    ));
    let watcher = Client::connect(
        server.local_addr(),
        ClientOptions::default().with_name("watcher"),
    )
    .unwrap();
    let ticks = watcher.watch().unwrap();
    // Subscribing answers immediately with the current snapshot — no need to
    // wait out an aggregator interval.
    let first = ticks.recv_timeout(Duration::from_secs(5)).unwrap();

    // Concurrent workload on a second connection while the stream is live.
    let submitter = Client::connect(
        server.local_addr(),
        ClientOptions::default().with_name("submitter"),
    )
    .unwrap();
    let total = 3u64;
    let jobs: Vec<_> = (0..total)
        .map(|i| {
            submitter
                .submit(SubmitPayload::Batch(vec![wire::WireJob {
                    circuit: one_block_circuit(0.3 + 0.5 * i as f64),
                    params: vec![],
                    strategy: Strategy::StrictPartial,
                }]))
                .unwrap()
        })
        .collect();
    for job in &jobs {
        assert!(job.wait().unwrap()[0].is_ok());
    }

    // Keep reading ticks until one reflects the completed workload.
    let mut snapshots = vec![first];
    let deadline = Instant::now() + Duration::from_secs(10);
    while snapshots.last().unwrap().completed < total {
        assert!(
            Instant::now() < deadline,
            "no tick converged on the completed workload"
        );
        snapshots.push(ticks.recv_timeout(Duration::from_secs(5)).unwrap());
    }
    assert!(
        snapshots.len() >= 2,
        "expected the immediate tick plus at least one aggregator tick"
    );
    for pair in snapshots.windows(2) {
        assert!(
            pair[1].seq > pair[0].seq,
            "per-connection tick seq must be strictly increasing: {} then {}",
            pair[0].seq,
            pair[1].seq
        );
        assert!(pair[1].uptime_seconds >= pair[0].uptime_seconds);
    }
    let last = snapshots.last().unwrap();
    assert_eq!(last.submissions, total);
    assert_eq!(last.completed, total);
    assert_eq!(last.workers, 2);

    // A repeated Watch is ignored server-side (one stream per connection), but
    // every locally registered receiver shares the stream.
    let second = watcher.watch().unwrap();
    let shared = second.recv_timeout(Duration::from_secs(5)).unwrap();
    assert!(shared.seq > last.seq);

    // Stats now carries uptime and the aggregator's last-snapshot cursor.
    let stats = submitter.stats().unwrap();
    assert!(stats.uptime_seconds > 0.0);
    assert!(stats.snapshot_seq > 0, "the aggregator has ticked");
    assert!(stats.snapshot_uptime_seconds > 0.0);
    assert!(stats.snapshot_uptime_seconds <= stats.uptime_seconds);
    assert_eq!(stats.runtime.completed_submissions, total);
}

/// The acceptance scenario for the lifecycle trace: after one remote job, the
/// `Trace` request returns the full submitted → admitted → dispatched →
/// compile-start → compiled → job-done → report chain with non-decreasing
/// timestamps, attributed to the TCP client id, and it renders as Chrome
/// `trace_event` JSON.
#[test]
fn trace_request_exports_the_chrome_lifecycle_chain() {
    let (server, _runtime) = serve(CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(1),
    ));
    let client = Client::connect(server.local_addr(), ClientOptions::default()).unwrap();
    let job = client
        .submit(SubmitPayload::Batch(vec![wire::WireJob {
            circuit: one_block_circuit(0.6),
            params: vec![],
            strategy: Strategy::StrictPartial,
        }]))
        .unwrap();
    assert!(job.wait().unwrap()[0].is_ok());

    let events = client.trace().unwrap();
    let expected = [
        TraceStage::Submitted,
        TraceStage::Admitted,
        TraceStage::Dispatched,
        TraceStage::CompileStart,
        TraceStage::Compiled,
        TraceStage::JobDone,
        TraceStage::Report,
    ];
    let mut last_index = None;
    for stage in expected {
        let index = events
            .iter()
            .position(|e| e.stage == stage)
            .unwrap_or_else(|| panic!("stage {} missing from the remote trace", stage.name()));
        if let Some(last) = last_index {
            assert!(index > last, "stage {} out of order", stage.name());
            assert!(
                events[index].micros >= events[last].micros,
                "timestamps must be non-decreasing along the chain"
            );
        }
        last_index = Some(index);
    }
    // Lifecycle events are attributed to the transport-assigned client id.
    assert!(events.iter().any(|e| e.client == Some(client.client_id())));

    let json = chrome_trace_json(&events);
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"i\""));
    for stage in expected {
        assert!(
            json.contains(&format!("\"name\":\"{}\"", stage.name())),
            "chrome trace must name stage {}",
            stage.name()
        );
    }
}

/// The acceptance scenario for cross-process causal tracing: a client submits
/// with a trace id, stamps its own spans on its connection epoch, and merges
/// them with the server's lifecycle trace using the handshake's clock-offset
/// estimate. The merged Chrome document contains both processes' events
/// (client `pid` 1, server `pid` 2) with non-decreasing adjusted timestamps.
#[test]
fn merged_causal_trace_spans_both_processes_in_order() {
    let (server, _runtime) = serve(CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(1),
    ));
    let client = Client::connect(
        server.local_addr(),
        ClientOptions::default().with_name("tracer"),
    )
    .unwrap();

    let submit_micros = client.now_micros();
    let job = client
        .submit_traced(
            SubmitPayload::Batch(vec![wire::WireJob {
                circuit: one_block_circuit(0.6),
                params: vec![],
                strategy: Strategy::StrictPartial,
            }]),
            None,
            Some(0xCAFE),
        )
        .unwrap();
    assert!(job.wait().unwrap()[0].is_ok());
    let client_spans = [
        ClientSpan {
            name: String::from("submit"),
            micros: submit_micros,
            span_micros: 0,
        },
        ClientSpan {
            name: String::from("await-report"),
            micros: submit_micros,
            span_micros: client.now_micros().saturating_sub(submit_micros).max(1),
        },
    ];

    let events = client.trace().unwrap();
    assert!(!events.is_empty());
    // The client-assigned trace id rides the Submitted event's detail.
    assert!(
        events
            .iter()
            .any(|e| e.stage == TraceStage::Submitted && e.detail == 0xCAFE),
        "the trace id must be recorded on the server's Submitted event"
    );

    let json = merged_chrome_trace(&client_spans, &events, client.clock_offset_micros());
    assert!(json.contains("\"pid\":1"), "client spans present");
    assert!(json.contains("\"pid\":2"), "server events present");
    assert!(
        json.contains("\"name\":\"submit\"") && json.contains("\"name\":\"report\""),
        "both ends of the causal chain are named"
    );

    // Adjusted timestamps are non-decreasing in document order — the merge
    // sorted both processes onto one timeline.
    let mut last_ts = 0u64;
    let mut seen = 0usize;
    for piece in json.split("\"ts\":").skip(1) {
        let digits: String = piece.chars().take_while(char::is_ascii_digit).collect();
        let ts: u64 = digits.parse().expect("ts is numeric");
        assert!(
            ts >= last_ts,
            "merged timestamps must be non-decreasing: {ts} after {last_ts}"
        );
        last_ts = ts;
        seen += 1;
    }
    assert!(
        seen >= client_spans.len() + events.len(),
        "every span carries a timestamp"
    );

    // On loopback both clocks tick together: the offset estimate differs from
    // zero only by epoch start times, and the server's Submitted event must
    // land at-or-after the client's submit instant once adjusted.
    let submitted = events
        .iter()
        .find(|e| e.stage == TraceStage::Submitted)
        .unwrap();
    let adjusted = vqc_transport::tracemerge::adjust_server_micros(
        submitted.micros,
        client.clock_offset_micros(),
    );
    // The midpoint estimate's error is bounded by half the handshake RTT;
    // allow 5ms of slack so a loaded host cannot flake the causal check.
    assert!(
        adjusted + 5_000 >= submit_micros,
        "server intake ({adjusted}µs) cannot causally precede the client's submit ({submit_micros}µs)"
    );
}

/// Graceful shutdown over the wire: `Shutdown` *drains* — a job still in
/// flight when the request arrives is compiled to completion and its `Report`
/// delivered (shutdown is not a cancel) — then `wait()` returns.
#[test]
fn remote_shutdown_drains_and_stops_the_server() {
    let (server, runtime) = serve(CompilationRuntime::new(
        fast_options(),
        RuntimeOptions::with_workers(1),
    ));
    let addr = server.local_addr();
    let client = Client::connect(addr, ClientOptions::default()).unwrap();
    // Hold the job in flight (paused workers), then ask for shutdown while it
    // has not compiled yet.
    runtime.pause();
    let job = client
        .submit(SubmitPayload::Batch(vec![wire::WireJob {
            circuit: one_block_circuit(0.4),
            params: vec![],
            strategy: Strategy::StrictPartial,
        }]))
        .unwrap();
    client.shutdown_server().unwrap();
    runtime.resume();
    assert!(
        job.wait().expect("drained, not canceled")[0].is_ok(),
        "a shutdown must drain in-flight submissions to their reports"
    );
    client.shutdown_server().unwrap();
    server.wait(); // returns once the listener thread exits
    assert_eq!(runtime.metrics().unique_compilations, 1);
}
