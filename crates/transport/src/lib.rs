//! Network transport for the compilation service: the runtime's submission
//! front-end served over TCP.
//!
//! The `vqc-runtime` request scheduler is in-process; this crate is the
//! "Transport" seam on top of it — remote clients submit work, observe
//! progress, and read fairness metrics over a socket:
//!
//! * [`wire`] — the typed protocol: length-prefixed, size-bounded, versioned
//!   frames carrying bincode-encoded [`Request`] / [`Response`] messages
//!   (`Hello`/`Submit`/`Status`/`Cancel`/`Stats`/`Shutdown` in,
//!   `Accepted`/`Event`/`Report`/`Rejected`/`Stats`/`Error` out).
//! * [`Server`] — a multi-threaded `std::net` listener fronting a shared
//!   [`vqc_runtime::CompilationRuntime`]. Each connection handshakes via
//!   `Hello` (protocol-version check) and is mapped to a service client id at
//!   its negotiated priority and fair-share weight; submissions stream
//!   per-job completion events as blocks finish, and a dropped connection
//!   cancels its in-flight submissions so remote failures cannot pin queue
//!   capacity. Graceful shutdown drains everything admitted.
//! * [`Client`] / [`RemoteJob`] — the blocking client: one demux reader
//!   thread routes interleaved responses to any number of in-flight
//!   submissions ([`RemoteJob::wait`] for results, [`RemoteJob::next_update`]
//!   for the event stream, [`RemoteJob::cancel`] to abort).
//! * [`tracemerge`] — cross-process causal tracing: the client's local spans
//!   and the server's lifecycle trace merged onto one Chrome timeline using
//!   the `Hello`/`Accepted` clock-offset estimate (`vqc-submit --trace-out`).
//!
//! The `vqc-serve` / `vqc-submit` binaries in `crates/apps` wrap the two ends
//! for the command line; `VQC_LISTEN`, `VQC_MAX_FRAME`, and `VQC_MAX_CONNS`
//! configure the server side.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vqc_circuit::Circuit;
//! use vqc_core::{CompilerOptions, Strategy};
//! use vqc_runtime::{CompilationRuntime, RuntimeOptions};
//! use vqc_transport::{Client, ClientOptions, Server, ServerOptions, SubmitPayload};
//!
//! let runtime = Arc::new(CompilationRuntime::new(
//!     CompilerOptions::fast(),
//!     RuntimeOptions::with_workers(2),
//! ));
//! let server = Server::bind("127.0.0.1:0", runtime, ServerOptions::default()).unwrap();
//!
//! let client = Client::connect(server.local_addr(), ClientOptions::default()).unwrap();
//! let mut circuit = Circuit::new(2);
//! circuit.h(0);
//! circuit.cx(0, 1);
//! let job = client
//!     .submit(SubmitPayload::Iterations {
//!         circuit,
//!         parameter_sets: vec![vec![], vec![]],
//!         strategy: Strategy::GateBased,
//!     })
//!     .unwrap();
//! let results = job.wait().unwrap();
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod server;
pub mod tracemerge;
pub mod wire;

pub use client::{Client, ClientOptions, JobUpdate, RemoteError, RemoteJob};
pub use server::{Server, ServerOptions, DEFAULT_LISTEN};
pub use tracemerge::{merged_chrome_trace, ClientSpan};
pub use wire::{
    JobEvent, RejectReason, Request, Response, ServerStats, SubmitPayload, WireError, WireJob,
    WireStatus, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
