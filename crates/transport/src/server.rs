//! The TCP front-end of the compilation service.
//!
//! A [`Server`] owns a listener thread plus one handler thread per connection.
//! Each connection authenticates with [`Request::Hello`] and is mapped to a
//! fresh service client id, so every submission it makes is scheduled (and
//! metered — see [`vqc_runtime::ClientMetrics`]) under that identity at the
//! connection's negotiated priority and fair-share weight. Submissions stream
//! their progress back as [`Response::Event`] frames — `Queued`, `Running`,
//! one `JobDone` per job as blocks finish — followed by a terminal
//! [`Response::Report`] with the full result set.
//!
//! Failure containment follows the frame contract: an undecodable payload gets
//! a [`Response::Error`] and the connection continues (the stream is still
//! frame-aligned); an oversized length prefix poisons the stream and closes
//! only that connection. When a connection drops — cleanly or not — every
//! submission it still has in flight is canceled through
//! [`vqc_runtime::JobHandle::cancel`], releasing its admission slot and letting
//! the scheduler garbage-collect its queued block tasks, so a disconnected
//! client cannot pin queue capacity. A server *shutdown* is different: it stops
//! reading requests but drains in-flight submissions to their terminal
//! `Report` frames before tearing the connections down.

use crate::wire::{
    read_frame, write_frame, FrameError, JobEvent, RejectReason, Request, Response, ServerStats,
    SubmitPayload, WireError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;
use vqc_runtime::{
    CompilationRuntime, CompileJob, JobHandle, JobStatus, MetricsSnapshot, Priority, Submission,
    SubmitError,
};

/// Address the server (and the `vqc-submit` client) use when `VQC_LISTEN` is
/// not set.
pub const DEFAULT_LISTEN: &str = "127.0.0.1:7878";

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Maximum frame payload size accepted or produced (minimum 1 KiB).
    pub max_frame: usize,
    /// Maximum simultaneous connections; further connects are refused with
    /// [`RejectReason::ConnectionLimit`].
    pub max_connections: usize,
}

impl Default for ServerOptions {
    /// Defaults to an 8 MiB frame bound and 64 connections; the
    /// `VQC_MAX_FRAME` and `VQC_MAX_CONNS` environment variables override
    /// (garbage values are ignored, zeros clamp to the minimums).
    fn default() -> Self {
        let max_frame = std::env::var("VQC_MAX_FRAME")
            .ok()
            .and_then(|raw| raw.parse::<usize>().ok())
            .unwrap_or(DEFAULT_MAX_FRAME);
        let max_connections = std::env::var("VQC_MAX_CONNS")
            .ok()
            .and_then(|raw| raw.parse::<usize>().ok())
            .unwrap_or(64);
        ServerOptions {
            max_frame: max_frame.max(1024),
            max_connections: max_connections.max(1),
        }
    }
}

impl ServerOptions {
    /// Replaces the frame bound (clamped to at least 1 KiB).
    pub fn with_max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame.max(1024);
        self
    }

    /// Replaces the connection limit (clamped to at least 1).
    pub fn with_max_connections(mut self, max_connections: usize) -> Self {
        self.max_connections = max_connections.max(1);
        self
    }
}

/// Shared state of the running server.
#[derive(Debug)]
struct ServerShared {
    runtime: Arc<CompilationRuntime>,
    options: ServerOptions,
    addr: SocketAddr,
    shutdown: AtomicBool,
    /// One stream clone per live connection, for forced close at shutdown.
    connections: Mutex<HashMap<u64, TcpStream>>,
    next_connection: AtomicU64,
    /// Client ids are allocated per connection, never reused, and disjoint from
    /// ids an embedder might use directly — the high bit marks transport
    /// clients.
    next_client: AtomicU64,
}

impl ServerShared {
    fn initiate_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection to our own port.
        let _ = TcpStream::connect(self.addr);
        // Close every connection's *read* half only: no new requests arrive
        // (each handler's blocking read fails and its request loop exits), but
        // the write halves stay open so in-flight submissions drain to their
        // terminal Report frames before the handlers tear down — shutdown
        // drains admitted work, it does not cancel it.
        for stream in lock_connections(self).values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
}

fn lock_connections(shared: &ServerShared) -> parking_lot::MutexGuard<'_, HashMap<u64, TcpStream>> {
    shared.connections.lock()
}

/// Spawns a named thread. Thread names surface in lock-checker panics, long-hold
/// reports, and Chrome trace exports, so every transport thread gets one.
pub(crate) fn spawn_named<F>(name: &str, body: F) -> std::thread::JoinHandle<()>
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(body)
        // audit:allow(unwrap): thread spawn fails only on OS resource exhaustion
        .expect("failed to spawn transport thread")
}

/// The TCP server: listener thread plus per-connection handlers over a shared
/// [`CompilationRuntime`].
#[derive(Debug)]
pub struct Server {
    shared: Arc<ServerShared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts accepting connections.
    ///
    /// Bind to port 0 for an ephemeral port (tests); read the resolved address
    /// back with [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs,
        runtime: Arc<CompilationRuntime>,
        options: ServerOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            runtime,
            options,
            addr,
            shutdown: AtomicBool::new(false),
            connections: Mutex::new(HashMap::new()),
            next_connection: AtomicU64::new(0),
            next_client: AtomicU64::new(1 << 63),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = spawn_named("vqc-tcp-accept", move || {
            accept_loop(accept_shared, listener)
        });
        Ok(Server {
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The runtime the server fronts.
    pub fn runtime(&self) -> &Arc<CompilationRuntime> {
        &self.shared.runtime
    }

    /// Whether a shutdown (via [`Server::shutdown`] or a remote
    /// [`Request::Shutdown`]) has been initiated.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Initiates a graceful shutdown: stop accepting, stop reading requests on
    /// every connection, and *drain* — in-flight submissions compile to
    /// completion and their terminal `Report` frames are still delivered
    /// before the handler threads exit.
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Blocks until a shutdown is initiated and the listener thread has exited
    /// — the run-forever entry point `vqc-serve` parks on.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.initiate_shutdown();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(shared: Arc<ServerShared>, listener: TcpListener) {
    let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Persistent accept failures (EMFILE under fd exhaustion, for
                // one) must not become a hot spin on this core.
                std::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Frames are small and latency-sensitive; without this, Nagle's
        // algorithm plus the peer's delayed ACK adds ~40ms per round trip.
        let _ = stream.set_nodelay(true);
        handlers.retain(|handle| !handle.is_finished());
        let connection_id = shared.next_connection.fetch_add(1, Ordering::Relaxed);
        {
            let mut connections = lock_connections(&shared);
            if connections.len() >= shared.options.max_connections {
                drop(connections);
                let mut stream = stream;
                let _ = write_frame(
                    &mut stream,
                    &Response::Rejected {
                        id: 0,
                        reason: RejectReason::ConnectionLimit {
                            max: shared.options.max_connections,
                        },
                    },
                    shared.options.max_frame,
                );
                continue;
            }
            match stream.try_clone() {
                Ok(clone) => {
                    connections.insert(connection_id, clone);
                }
                // An untracked connection could not be force-closed at
                // shutdown and would hang the listener join; refuse it.
                Err(_) => continue,
            }
        }
        let handler_shared = Arc::clone(&shared);
        handlers.push(spawn_named(
            &format!("vqc-conn-{connection_id}"),
            move || {
                handle_connection(handler_shared, stream, connection_id);
            },
        ));
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Sends one response frame under the connection's write lock (frames from the
/// request loop and the per-submission streamer threads must not interleave).
fn send(
    writer: &Arc<Mutex<TcpStream>>,
    response: &Response,
    max_frame: usize,
) -> Result<(), FrameError> {
    // audit:allow(guard_blocking): the writer lock IS the frame serializer —
    // holding it across write_frame is what keeps concurrent frames whole.
    let mut stream = writer.lock();
    write_frame(&mut *stream, response, max_frame)
}

fn handle_connection(shared: Arc<ServerShared>, stream: TcpStream, connection_id: u64) {
    let outcome = serve_connection(&shared, stream);
    lock_connections(&shared).remove(&connection_id);
    // If the client asked for a server shutdown, start it after the connection
    // is fully torn down (so its own goodbye frame got out first).
    if outcome == ConnectionOutcome::ShutdownRequested {
        shared.initiate_shutdown();
    }
}

#[derive(Debug, PartialEq, Eq)]
enum ConnectionOutcome {
    Closed,
    ShutdownRequested,
}

fn serve_connection(shared: &ServerShared, stream: TcpStream) -> ConnectionOutcome {
    let max_frame = shared.options.max_frame;
    let mut reader = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return ConnectionOutcome::Closed,
    };
    let writer = Arc::new(Mutex::new(stream));

    // Handshake: the first frame must be a version-matching Hello.
    let (priority, weight) = match read_frame::<_, Request>(&mut reader, max_frame) {
        Ok(Request::Hello {
            protocol,
            client_name: _,
            priority,
            weight,
            // The client's send timestamp is on *its* clock; the offset estimate
            // is computed client-side from the Accepted round trip, so the
            // server only needs to report its own clock below.
            sent_micros: _,
        }) => {
            if protocol != PROTOCOL_VERSION {
                let _ = send(
                    &writer,
                    &Response::Rejected {
                        id: 0,
                        reason: RejectReason::VersionMismatch {
                            server: PROTOCOL_VERSION,
                            client: protocol,
                        },
                    },
                    max_frame,
                );
                return ConnectionOutcome::Closed;
            }
            (Priority(priority), weight)
        }
        Ok(_) => {
            let _ = send(
                &writer,
                &Response::Rejected {
                    id: 0,
                    reason: RejectReason::HelloRequired,
                },
                max_frame,
            );
            return ConnectionOutcome::Closed;
        }
        Err(error) => {
            let _ = send(
                &writer,
                &Response::Error {
                    message: error.to_string(),
                },
                max_frame,
            );
            return ConnectionOutcome::Closed;
        }
    };
    let client_id = shared.next_client.fetch_add(1, Ordering::Relaxed);
    if send(
        &writer,
        &Response::Accepted {
            client_id,
            protocol: PROTOCOL_VERSION,
            // Stamped on the telemetry epoch — the same timebase as the
            // TraceEvent stream — so the client's clock-offset estimate maps
            // server trace events directly onto its own timeline.
            server_micros: (shared.runtime.uptime_seconds() * 1_000_000.0) as u64,
        },
        max_frame,
    )
    .is_err()
    {
        return ConnectionOutcome::Closed;
    }

    // Live submissions of this connection, keyed by the client's correlation id.
    // Streamer threads remove their entry on terminal states; whatever remains
    // at disconnect is canceled.
    let jobs: Arc<Mutex<HashMap<u64, JobHandle>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut streamers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    // At most one metrics watcher per connection; the stop flag ends it at
    // teardown (after a final snapshot) even if the aggregator is long-lived.
    let mut watcher: Option<(Arc<AtomicBool>, std::thread::JoinHandle<()>)> = None;
    let outcome = loop {
        match read_frame::<_, Request>(&mut reader, max_frame) {
            Ok(Request::Submit {
                id,
                payload,
                priority: submit_priority,
                trace,
            }) => {
                let mut live = jobs.lock();
                if live.contains_key(&id) {
                    drop(live);
                    let _ = send(
                        &writer,
                        &Response::Rejected {
                            id,
                            reason: RejectReason::DuplicateSubmission,
                        },
                        max_frame,
                    );
                    continue;
                }
                let mut submission = build_submission(payload)
                    .with_client(client_id)
                    .with_weight(weight)
                    .with_priority(submit_priority.map(Priority).unwrap_or(priority));
                if let Some(trace) = trace {
                    submission = submission.with_trace(trace);
                }
                match shared.runtime.submit(submission) {
                    Ok(handle) => {
                        live.insert(id, handle.clone());
                        drop(live);
                        let _ = send(
                            &writer,
                            &Response::Event {
                                id,
                                event: JobEvent::Queued,
                            },
                            max_frame,
                        );
                        let writer = Arc::clone(&writer);
                        let jobs = Arc::clone(&jobs);
                        streamers.retain(|s| !s.is_finished());
                        streamers.push(spawn_named(&format!("vqc-streamer-{id}"), move || {
                            let terminal = stream_submission(&writer, &handle, id, max_frame);
                            // Release the correlation id *before* the terminal
                            // frame goes out, so a client that reuses the id the
                            // moment it sees the Report is never spuriously
                            // rejected as a duplicate.
                            jobs.lock().remove(&id);
                            let Some(terminal) = terminal else { return };
                            if let Err(FrameError::Oversized { declared, max }) =
                                send(&writer, &terminal, max_frame)
                            {
                                // The result set outgrew the frame bound: the
                                // client must still receive *a* terminal frame,
                                // or it would wait forever.
                                let _ = send(
                                    &writer,
                                    &Response::Rejected {
                                        id,
                                        reason: RejectReason::ReportTooLarge { declared, max },
                                    },
                                    max_frame,
                                );
                            }
                        }));
                    }
                    Err(error) => {
                        drop(live);
                        let _ = send(
                            &writer,
                            &Response::Rejected {
                                id,
                                reason: reject_reason(error),
                            },
                            max_frame,
                        );
                    }
                }
            }
            Ok(Request::Status { id }) => {
                let handle = jobs.lock().get(&id).cloned();
                let response = match handle {
                    Some(handle) => Response::Event {
                        id,
                        event: JobEvent::Status {
                            status: handle.try_status().into(),
                            completed_jobs: handle.completed_jobs(),
                        },
                    },
                    None => Response::Rejected {
                        id,
                        reason: RejectReason::UnknownSubmission,
                    },
                };
                let _ = send(&writer, &response, max_frame);
            }
            Ok(Request::Cancel { id }) => {
                let handle = jobs.lock().get(&id).cloned();
                match handle {
                    // The streamer observes the cancellation and reports the
                    // terminal `Canceled` event; nothing to send here.
                    Some(handle) => {
                        handle.cancel();
                    }
                    None => {
                        let _ = send(
                            &writer,
                            &Response::Rejected {
                                id,
                                reason: RejectReason::UnknownSubmission,
                            },
                            max_frame,
                        );
                    }
                }
            }
            Ok(Request::Stats) => {
                let (snapshot_seq, snapshot_uptime_seconds) = shared.runtime.last_snapshot_meta();
                let stats = ServerStats {
                    runtime: shared.runtime.metrics(),
                    client_id,
                    client: shared.runtime.client_metrics(client_id),
                    uptime_seconds: shared.runtime.uptime_seconds(),
                    snapshot_seq,
                    snapshot_uptime_seconds,
                };
                let _ = send(&writer, &Response::Stats { stats }, max_frame);
            }
            Ok(Request::Watch) => {
                // One stream per connection: a repeated Watch is a no-op so the
                // per-connection MetricsTick seq stays strictly increasing.
                if watcher.is_none() {
                    let stop = Arc::new(AtomicBool::new(false));
                    let thread_stop = Arc::clone(&stop);
                    let runtime = Arc::clone(&shared.runtime);
                    let writer = Arc::clone(&writer);
                    let handle = spawn_named("vqc-watcher", move || {
                        watch_connection(&runtime, &writer, &thread_stop, max_frame);
                    });
                    watcher = Some((stop, handle));
                }
            }
            Ok(Request::Trace) => {
                let events = shared.runtime.trace_events();
                let _ = send(&writer, &Response::Trace { events }, max_frame);
            }
            Ok(Request::Shutdown) => break ConnectionOutcome::ShutdownRequested,
            Ok(Request::Hello { .. }) => {
                let _ = send(
                    &writer,
                    &Response::Error {
                        message: "connection is already authenticated".into(),
                    },
                    max_frame,
                );
            }
            // A well-framed payload that does not decode: tell the client and
            // keep serving — the stream is still frame-aligned.
            Err(FrameError::Decode(message)) => {
                let _ = send(&writer, &Response::Error { message }, max_frame);
            }
            // Oversized frames poison the stream (the declared length cannot be
            // trusted to skip); everything else is a dead connection.
            Err(error @ FrameError::Oversized { .. }) => {
                let _ = send(
                    &writer,
                    &Response::Error {
                        message: error.to_string(),
                    },
                    max_frame,
                );
                break ConnectionOutcome::Closed;
            }
            Err(_) => break ConnectionOutcome::Closed,
        }
    };

    // A graceful shutdown (requested on this connection or server-wide) drains:
    // in-flight submissions run to completion and their Reports still go out on
    // the write half. A plain disconnect instead cancels — whatever this
    // connection still has in flight must not pin queue capacity or worker
    // time — and releases the client's scheduler state.
    let draining =
        outcome == ConnectionOutcome::ShutdownRequested || shared.shutdown.load(Ordering::SeqCst);
    if !draining {
        for (_, handle) in jobs.lock().drain() {
            handle.cancel();
        }
    }
    // Streamers observe the terminal state (drained or canceled) and exit.
    for streamer in streamers {
        let _ = streamer.join();
    }
    // The watcher stops *after* the streamers have drained, so its final
    // MetricsTick reflects the connection's completed work.
    if let Some((stop, handle)) = watcher {
        stop.store(true, Ordering::SeqCst);
        let _ = handle.join();
    }
    if !draining {
        // The id is never handed out again: reap its fair-share clock and
        // metrics slice so a long-lived server does not grow state per
        // short-lived connection. (At shutdown the slices are kept for the
        // operator's final report.)
        shared.runtime.release_client(client_id);
    }
    outcome
}

/// Streams [`Response::MetricsTick`] frames to one connection: an immediate
/// snapshot on subscription (so the client need not wait out an aggregator
/// interval), then every aggregator tick, deduplicated by `seq` so the stream
/// is strictly increasing. Exits when the connection dies mid-send, when the
/// aggregator closes the channel (runtime teardown), or when `stop` is raised
/// at connection teardown — after sending one final fresh snapshot so the last
/// tick reflects the drained state.
fn watch_connection(
    runtime: &CompilationRuntime,
    writer: &Arc<Mutex<TcpStream>>,
    stop: &AtomicBool,
    max_frame: usize,
) {
    let ticks = runtime.watch_metrics();
    let mut last_sent = 0u64;
    let forward = |snapshot: MetricsSnapshot, last_sent: &mut u64| -> bool {
        if snapshot.seq <= *last_sent {
            return true;
        }
        *last_sent = snapshot.seq;
        send(writer, &Response::MetricsTick { snapshot }, max_frame).is_ok()
    };
    if !forward(runtime.telemetry_snapshot(), &mut last_sent) {
        return;
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            let _ = forward(runtime.telemetry_snapshot(), &mut last_sent);
            return;
        }
        match ticks.recv_timeout(Duration::from_millis(50)) {
            Ok(snapshot) => {
                if !forward(snapshot, &mut last_sent) {
                    return;
                }
            }
            Err(RecvTimeoutError::Timeout) => continue,
            // The aggregator published its final snapshot before closing; it
            // was drained from the channel above, so nothing is lost.
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn build_submission(payload: SubmitPayload) -> Submission {
    match payload {
        SubmitPayload::Batch(jobs) => Submission::batch(
            jobs.into_iter()
                .map(|job| CompileJob::new(job.circuit, job.params, job.strategy))
                .collect(),
        ),
        SubmitPayload::Iterations {
            circuit,
            parameter_sets,
            strategy,
        } => Submission::iterations(circuit, parameter_sets, strategy),
    }
}

fn reject_reason(error: SubmitError) -> RejectReason {
    match error {
        SubmitError::QueueFull { depth } => RejectReason::QueueFull { depth },
        SubmitError::Shed => RejectReason::Shed,
        SubmitError::Canceled => RejectReason::UnknownSubmission,
        SubmitError::ShuttingDown => RejectReason::ShuttingDown,
    }
}

/// Streams one submission's intermediate events to the client — `Running` once
/// expansion publishes it, one `JobDone` per job as results land — and returns
/// the terminal frame (`Report`, `Rejected{Shed}`, or `Event{Canceled}`) for
/// the caller to send *after* it has released the correlation id. `None` if
/// the connection died mid-stream.
fn stream_submission(
    writer: &Arc<Mutex<TcpStream>>,
    handle: &JobHandle,
    id: u64,
    max_frame: usize,
) -> Option<Response> {
    match handle.wait_started() {
        JobStatus::Queued => unreachable!("wait_started returns a non-queued status"),
        JobStatus::Shed => {
            return Some(Response::Rejected {
                id,
                reason: RejectReason::Shed,
            })
        }
        JobStatus::Canceled => {
            return Some(Response::Event {
                id,
                event: JobEvent::Canceled,
            })
        }
        JobStatus::Running | JobStatus::Done => {
            let running = Response::Event {
                id,
                event: JobEvent::Running {
                    jobs: handle.job_count(),
                },
            };
            if send(writer, &running, max_frame).is_err() {
                return None;
            }
        }
    }
    let mut seen = 0usize;
    loop {
        match handle.wait_job(seen) {
            Ok(Some((job, result))) => {
                seen += 1;
                let event = match &result {
                    Ok(report) => JobEvent::JobDone {
                        job,
                        ok: true,
                        pulse_duration_ns: report.pulse_duration_ns,
                    },
                    Err(_) => JobEvent::JobDone {
                        job,
                        ok: false,
                        pulse_duration_ns: 0.0,
                    },
                };
                if send(writer, &Response::Event { id, event }, max_frame).is_err() {
                    return None;
                }
            }
            Ok(None) => {
                let results = match handle.wait() {
                    Ok(results) => results,
                    Err(_) => return None,
                };
                let results = results
                    .iter()
                    .map(|result| match result {
                        Ok(report) => Ok(report.clone()),
                        Err(error) => Err(WireError::from(error)),
                    })
                    .collect();
                return Some(Response::Report { id, results });
            }
            Err(SubmitError::Shed) => {
                return Some(Response::Rejected {
                    id,
                    reason: RejectReason::Shed,
                })
            }
            Err(_) => {
                return Some(Response::Event {
                    id,
                    event: JobEvent::Canceled,
                })
            }
        }
    }
}
