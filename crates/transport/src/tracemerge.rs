//! Merging a client's local spans with the server's lifecycle trace into one
//! Chrome `trace_event` timeline.
//!
//! The two processes run on different monotonic clocks: the client's spans are
//! stamped on its connection epoch ([`crate::Client::now_micros`]), the
//! server's [`TraceEvent`]s on the service telemetry epoch. The `Hello` /
//! `Accepted` handshake gives the client a one-round-trip midpoint estimate of
//! the offset between the two ([`crate::Client::clock_offset_micros`]);
//! [`merged_chrome_trace`] subtracts it from every server timestamp so both
//! processes land on the client's timeline, renders the client as `pid` 1 and
//! the server as `pid` 2, and sorts the combined stream by adjusted time.

use vqc_runtime::{phase_row_name, TraceEvent, TraceStage};

/// One client-side span or instant, stamped on the client's connection epoch.
#[derive(Debug, Clone)]
pub struct ClientSpan {
    /// Chrome trace event name (e.g. `"submit"`, `"report-received"`).
    pub name: String,
    /// Start time in microseconds on the client's epoch.
    pub micros: u64,
    /// Duration in microseconds; `0` renders an instant event instead of a
    /// complete span.
    pub span_micros: u64,
}

/// `pid` the client's spans render under in the merged trace.
pub const CLIENT_PID: u32 = 1;
/// `pid` the server's (clock-adjusted) events render under.
pub const SERVER_PID: u32 = 2;

/// Maps a server-side timestamp onto the client's timeline using the
/// handshake's clock-offset estimate, clamping at zero (a server event can
/// appear to predate the client epoch when the offset estimate overshoots by
/// more than the event's age).
pub fn adjust_server_micros(micros: u64, clock_offset_micros: i64) -> u64 {
    (micros as i64 - clock_offset_micros).max(0) as u64
}

/// One merged event, ready to sort and render: `(adjusted_ts, json_object)`.
fn render_event(
    out: &mut Vec<(u64, String)>,
    pid: u32,
    name: &str,
    ts: u64,
    dur: u64,
    tid: u64,
    detail: u64,
) {
    let body = if dur > 0 {
        format!(
            "{{\"name\":\"{name}\",\"cat\":\"causal\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{{\"detail\":{detail}}}}}"
        )
    } else {
        format!(
            "{{\"name\":\"{name}\",\"cat\":\"causal\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":{{\"detail\":{detail}}}}}"
        )
    };
    out.push((ts, body));
}

/// Renders one merged Chrome `trace_event` JSON document from the client's own
/// spans and the server's trace ring, with server timestamps mapped onto the
/// client's timeline via `clock_offset_micros` (see
/// [`crate::Client::clock_offset_micros`]). Events are sorted by adjusted
/// timestamp, so the document reads as one causal timeline across both
/// processes. Pass `server_events` already filtered to the submissions of
/// interest if the ring carries unrelated traffic.
pub fn merged_chrome_trace(
    client_spans: &[ClientSpan],
    server_events: &[TraceEvent],
    clock_offset_micros: i64,
) -> String {
    let mut merged: Vec<(u64, String)> =
        Vec::with_capacity(client_spans.len() + server_events.len());
    for span in client_spans {
        render_event(
            &mut merged,
            CLIENT_PID,
            &span.name,
            span.micros,
            span.span_micros,
            1,
            0,
        );
    }
    for event in server_events {
        let name = if event.stage == TraceStage::Phase {
            phase_row_name(event.detail as usize)
        } else {
            event.stage.name()
        };
        render_event(
            &mut merged,
            SERVER_PID,
            name,
            adjust_server_micros(event.micros, clock_offset_micros),
            event.span_micros,
            event.submission,
            event.detail,
        );
    }
    // Stable sort: same-timestamp events keep client-before-server order.
    merged.sort_by_key(|(ts, _)| *ts);
    let mut json = String::with_capacity(merged.len() * 96 + 64);
    json.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (index, (_, body)) in merged.iter().enumerate() {
        if index > 0 {
            json.push(',');
        }
        json.push_str(body);
    }
    json.push_str("]}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_event(stage: TraceStage, micros: u64) -> TraceEvent {
        TraceEvent {
            submission: 7,
            client: Some(1 << 63),
            stage,
            micros,
            detail: 0,
            span_micros: 0,
        }
    }

    #[test]
    fn adjustment_maps_server_time_onto_the_client_timeline() {
        // Server clock is 1000µs ahead of the client midpoint.
        assert_eq!(adjust_server_micros(5000, 1000), 4000);
        // A negative offset (server behind) shifts forward.
        assert_eq!(adjust_server_micros(5000, -1000), 6000);
        // Overshooting estimates clamp rather than wrap.
        assert_eq!(adjust_server_micros(500, 1000), 0);
    }

    #[test]
    fn merged_trace_interleaves_both_processes_sorted_by_adjusted_time() {
        let client_spans = [
            ClientSpan {
                name: "submit".into(),
                micros: 100,
                span_micros: 0,
            },
            ClientSpan {
                name: "await-report".into(),
                micros: 100,
                span_micros: 900,
            },
        ];
        let server_events = [
            server_event(TraceStage::Submitted, 1200),
            server_event(TraceStage::Report, 1900),
        ];
        // Offset 1000: server events land at 200 and 900 on the client line.
        let json = merged_chrome_trace(&client_spans, &server_events, 1000);
        assert!(json.contains("\"pid\":1"), "client spans present");
        assert!(json.contains("\"pid\":2"), "server events present");
        assert!(json.contains("\"ph\":\"X\""), "client span has a duration");
        let submitted = json.find("\"name\":\"submitted\"").unwrap();
        let report = json.find("\"name\":\"report\"").unwrap();
        let submit = json.find("\"name\":\"submit\"").unwrap();
        assert!(submit < submitted, "client submit precedes server intake");
        assert!(submitted < report, "server chain stays ordered");
        assert!(json.contains("\"ts\":200"));
        assert!(json.contains("\"ts\":900"));
    }
}
