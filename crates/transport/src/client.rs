//! Blocking client library for the compilation service's TCP protocol.
//!
//! [`Client::connect`] performs the [`Request::Hello`] handshake and spawns a
//! demultiplexing reader thread: every [`Response`] frame is routed by its
//! correlation id to the [`RemoteJob`] that owns it, so any number of
//! submissions can be in flight on one connection while their events interleave
//! arbitrarily. [`RemoteJob::wait`] consumes the event stream down to the
//! terminal frame; [`RemoteJob::next_update`] exposes the stream itself
//! (`Queued` → `Running` → one `JobDone` per job → `Report`).

use crate::wire::{
    read_frame, write_frame, FrameError, JobEvent, RejectReason, Request, Response, ServerStats,
    SubmitPayload, WireError, DEFAULT_MAX_FRAME, PROTOCOL_VERSION,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;
use vqc_core::CompilationReport;
use vqc_runtime::{MetricsSnapshot, Priority, TraceEvent};

/// Why a remote operation failed.
#[derive(Debug)]
pub enum RemoteError {
    /// The framing layer failed (socket error, oversized frame, undecodable
    /// payload).
    Frame(FrameError),
    /// The server refused the request.
    Rejected(RejectReason),
    /// The submission was canceled (locally via [`RemoteJob::cancel`] or by
    /// the server).
    Canceled,
    /// The connection died before the operation completed.
    Disconnected,
    /// The server broke the protocol (e.g. answered the handshake with an
    /// unexpected frame), or reported a protocol-level error.
    Protocol(String),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Frame(e) => write!(f, "{e}"),
            RemoteError::Rejected(reason) => write!(f, "rejected: {reason}"),
            RemoteError::Canceled => write!(f, "submission was canceled"),
            RemoteError::Disconnected => write!(f, "connection to the server was lost"),
            RemoteError::Protocol(message) => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for RemoteError {}

impl From<FrameError> for RemoteError {
    fn from(e: FrameError) -> Self {
        RemoteError::Frame(e)
    }
}

/// Connection parameters negotiated in the handshake.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Name reported to the server (logs/dashboards only).
    pub name: String,
    /// Default priority class for this connection's submissions.
    pub priority: Priority,
    /// Fair-share weight within the class.
    pub weight: f64,
    /// Frame size bound (must be at least the server's to receive big reports).
    pub max_frame: usize,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            name: String::from("vqc-client"),
            priority: Priority::NORMAL,
            weight: 1.0,
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

impl ClientOptions {
    /// Replaces the reported client name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Replaces the default priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Replaces the fair-share weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }
}

/// A progress update for one remote submission.
#[derive(Debug, Clone, PartialEq)]
pub enum JobUpdate {
    /// An intermediate event (`Queued`, `Running`, `JobDone`, `Status`, …).
    Event(JobEvent),
    /// The terminal result set, one entry per job in submission order.
    Report(Vec<Result<CompilationReport, WireError>>),
    /// The server refused or dropped the submission.
    Rejected(RejectReason),
}

enum Routed {
    Update(JobUpdate),
    /// The reader thread is tearing down; no more updates will arrive.
    Lost,
}

#[derive(Default)]
struct RouteTable {
    /// Live per-submission channels, keyed by correlation id.
    routes: HashMap<u64, Sender<Routed>>,
    /// Waiters for id-less responses (`Stats`, protocol `Error`s), FIFO.
    control: Vec<Sender<Result<ServerStats, RemoteError>>>,
    /// Subscribers to the server's metrics stream; every `MetricsTick` is
    /// broadcast to all of them (dead receivers are pruned on send).
    watchers: Vec<Sender<MetricsSnapshot>>,
    /// Waiters for `Trace` responses, FIFO like `control`.
    trace: Vec<Sender<Result<Vec<TraceEvent>, RemoteError>>>,
}

struct ClientShared {
    table: Mutex<RouteTable>,
    lost: AtomicBool,
}

impl ClientShared {
    fn tear_down(&self) {
        self.lost.store(true, Ordering::SeqCst);
        let mut table = self.table.lock();
        for (_, route) in table.routes.drain() {
            let _ = route.send(Routed::Lost);
        }
        for waiter in table.control.drain(..) {
            let _ = waiter.send(Err(RemoteError::Disconnected));
        }
        // Dropping the senders disconnects every watcher's receiver, which is
        // how subscribers learn the stream ended.
        table.watchers.clear();
        for waiter in table.trace.drain(..) {
            let _ = waiter.send(Err(RemoteError::Disconnected));
        }
    }
}

/// A blocking connection to a compilation server.
#[derive(Debug)]
pub struct Client {
    writer: Arc<Mutex<TcpStream>>,
    shared: Arc<ClientShared>,
    reader_thread: Option<std::thread::JoinHandle<()>>,
    client_id: u64,
    max_frame: usize,
    next_submission: AtomicU64,
    /// The client's monotonic epoch: the timebase of [`Client::now_micros`]
    /// and of every timestamp this client stamps on its own trace spans.
    epoch: Instant,
    /// Estimated `server clock − client clock` in microseconds, from the
    /// Hello/Accepted round trip (midpoint method). Subtracting it from a
    /// server trace timestamp maps it into this client's timeline.
    clock_offset_micros: i64,
}

impl std::fmt::Debug for ClientShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientShared")
            .field("lost", &self.lost.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Client {
    /// Connects, performs the handshake, and starts the demux reader.
    ///
    /// # Errors
    ///
    /// Fails on connection errors, a version-mismatch rejection, or a
    /// malformed handshake reply.
    pub fn connect(
        addr: impl ToSocketAddrs,
        options: ClientOptions,
    ) -> Result<Client, RemoteError> {
        let mut stream = TcpStream::connect(addr).map_err(FrameError::Io)?;
        // Latency over throughput: requests are single small frames.
        let _ = stream.set_nodelay(true);
        let max_frame = options.max_frame;
        let epoch = Instant::now();
        let sent_micros = epoch.elapsed().as_micros() as u64;
        write_frame(
            &mut stream,
            &Request::Hello {
                protocol: PROTOCOL_VERSION,
                client_name: options.name,
                priority: options.priority.0,
                weight: options.weight,
                sent_micros,
            },
            max_frame,
        )?;
        let (client_id, server_micros) = match read_frame::<_, Response>(&mut stream, max_frame)? {
            Response::Accepted {
                client_id,
                server_micros,
                ..
            } => (client_id, server_micros),
            Response::Rejected { reason, .. } => return Err(RemoteError::Rejected(reason)),
            other => {
                return Err(RemoteError::Protocol(format!(
                    "unexpected handshake reply: {other:?}"
                )))
            }
        };
        // Midpoint clock sync: assume the server stamped `server_micros`
        // halfway through the round trip. The estimate's error is bounded by
        // half the round-trip time — microseconds on loopback, and good enough
        // to lay client and server spans on one merged timeline.
        let received_micros = epoch.elapsed().as_micros() as u64;
        let clock_offset_micros =
            server_micros as i64 - ((sent_micros + received_micros) / 2) as i64;
        let shared = Arc::new(ClientShared {
            table: Mutex::new(RouteTable::default()),
            lost: AtomicBool::new(false),
        });
        let reader_shared = Arc::clone(&shared);
        let mut reader = stream.try_clone().map_err(FrameError::Io)?;
        let reader_thread = crate::server::spawn_named("vqc-demux", move || {
            while let Ok(response) = read_frame::<_, Response>(&mut reader, max_frame) {
                route_response(&reader_shared, response);
            }
            reader_shared.tear_down();
        });
        Ok(Client {
            writer: Arc::new(Mutex::new(stream)),
            shared,
            reader_thread: Some(reader_thread),
            client_id,
            max_frame,
            next_submission: AtomicU64::new(1),
            epoch,
            clock_offset_micros,
        })
    }

    /// The service client id the server assigned to this connection.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Microseconds since this client's monotonic epoch — the timebase for
    /// client-side trace spans that will be merged with the server's.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Estimated `server clock − client clock` (microseconds), from the
    /// handshake round trip. Server trace timestamps minus this offset land on
    /// this client's [`Client::now_micros`] timeline.
    pub fn clock_offset_micros(&self) -> i64 {
        self.clock_offset_micros
    }

    fn send(&self, request: &Request) -> Result<(), RemoteError> {
        if self.shared.lost.load(Ordering::SeqCst) {
            return Err(RemoteError::Disconnected);
        }
        // audit:allow(guard_blocking): the writer lock IS the frame serializer —
        // holding it across write_frame keeps request frames whole.
        let mut stream = self.writer.lock();
        write_frame(&mut *stream, request, self.max_frame)?;
        Ok(())
    }

    /// Submits work at the connection's negotiated priority.
    ///
    /// # Errors
    ///
    /// Fails if the connection is lost. Admission-level refusals (queue full,
    /// shed) surface on the returned job's stream, not here.
    pub fn submit(&self, payload: SubmitPayload) -> Result<RemoteJob, RemoteError> {
        self.submit_with(payload, None)
    }

    /// Submits work, optionally overriding the negotiated priority.
    ///
    /// # Errors
    ///
    /// Fails if the connection is lost.
    pub fn submit_with(
        &self,
        payload: SubmitPayload,
        priority: Option<Priority>,
    ) -> Result<RemoteJob, RemoteError> {
        self.submit_traced(payload, priority, None)
    }

    /// Submits work carrying a client-assigned causal trace id. The id lands
    /// in the `detail` of the server's `submitted` trace event, correlating
    /// client-side spans with the server's in a merged trace
    /// (`vqc-submit --trace-out`).
    ///
    /// # Errors
    ///
    /// Fails if the connection is lost.
    pub fn submit_traced(
        &self,
        payload: SubmitPayload,
        priority: Option<Priority>,
        trace: Option<u64>,
    ) -> Result<RemoteJob, RemoteError> {
        let id = self.next_submission.fetch_add(1, Ordering::Relaxed);
        let (sender, receiver) = std::sync::mpsc::channel();
        {
            let mut table = self.shared.table.lock();
            table.routes.insert(id, sender);
        }
        if let Err(error) = self.send(&Request::Submit {
            id,
            payload,
            priority: priority.map(|p| p.0),
            trace,
        }) {
            self.shared.table.lock().routes.remove(&id);
            return Err(error);
        }
        Ok(RemoteJob {
            id,
            updates: receiver,
            writer: Arc::clone(&self.writer),
            max_frame: self.max_frame,
        })
    }

    /// Fetches the server's global metrics plus this client's slice.
    ///
    /// # Errors
    ///
    /// Fails if the connection is lost or the server reports an error.
    pub fn stats(&self) -> Result<ServerStats, RemoteError> {
        let (sender, receiver) = std::sync::mpsc::channel();
        {
            let mut table = self.shared.table.lock();
            table.control.push(sender);
        }
        self.send(&Request::Stats)?;
        receiver.recv().map_err(|_| RemoteError::Disconnected)?
    }

    /// Subscribes to the server's metrics stream: the returned receiver yields
    /// one [`MetricsSnapshot`] immediately, then one per server aggregator
    /// tick, with strictly increasing `seq`. The receiver disconnects when the
    /// connection is lost or the server drains. Repeated calls share the
    /// single per-connection server stream — every returned receiver sees
    /// every tick.
    ///
    /// # Errors
    ///
    /// Fails if the connection is lost.
    pub fn watch(&self) -> Result<Receiver<MetricsSnapshot>, RemoteError> {
        let (sender, receiver) = std::sync::mpsc::channel();
        {
            let mut table = self.shared.table.lock();
            table.watchers.push(sender);
        }
        self.send(&Request::Watch)?;
        Ok(receiver)
    }

    /// Fetches the server's lifecycle trace ring (most recent events, oldest
    /// first). Render it with [`vqc_runtime::chrome_trace_json`].
    ///
    /// # Errors
    ///
    /// Fails if the connection is lost or the server reports an error.
    pub fn trace(&self) -> Result<Vec<TraceEvent>, RemoteError> {
        let (sender, receiver) = std::sync::mpsc::channel();
        {
            let mut table = self.shared.table.lock();
            table.trace.push(sender);
        }
        self.send(&Request::Trace)?;
        receiver.recv().map_err(|_| RemoteError::Disconnected)?
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Fails if the connection is already lost.
    pub fn shutdown_server(&self) -> Result<(), RemoteError> {
        self.send(&Request::Shutdown)
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Closing the socket ends the reader thread; dropping the connection
        // server-side cancels whatever this client still had in flight.
        {
            let stream = self.writer.lock();
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.reader_thread.take() {
            let _ = handle.join();
        }
    }
}

fn route_response(shared: &ClientShared, response: Response) {
    let (id, update) = match response {
        Response::Event { id, event } => (id, JobUpdate::Event(event)),
        Response::Report { id, results } => (id, JobUpdate::Report(results)),
        Response::Rejected { id, reason } => (id, JobUpdate::Rejected(reason)),
        Response::Stats { stats } => {
            let mut table = shared.table.lock();
            if !table.control.is_empty() {
                let _ = table.control.remove(0).send(Ok(stats));
            }
            return;
        }
        Response::Error { message } => {
            let mut table = shared.table.lock();
            if !table.control.is_empty() {
                let _ = table
                    .control
                    .remove(0)
                    .send(Err(RemoteError::Protocol(message)));
            }
            return;
        }
        Response::MetricsTick { snapshot } => {
            let mut table = shared.table.lock();
            // Broadcast; a failed send means that subscriber's receiver was
            // dropped, so prune it.
            table
                .watchers
                .retain(|watcher| watcher.send(snapshot.clone()).is_ok());
            return;
        }
        Response::Trace { events } => {
            let mut table = shared.table.lock();
            if !table.trace.is_empty() {
                let _ = table.trace.remove(0).send(Ok(events));
            }
            return;
        }
        Response::Accepted { .. } => return,
    };
    let mut table = shared.table.lock();
    let terminal = matches!(update, JobUpdate::Report(_) | JobUpdate::Rejected(_))
        || matches!(update, JobUpdate::Event(JobEvent::Canceled));
    if terminal {
        if let Some(route) = table.routes.remove(&id) {
            let _ = route.send(Routed::Update(update));
        }
    } else if let Some(route) = table.routes.get(&id) {
        let _ = route.send(Routed::Update(update));
    }
}

/// A submission in flight on a remote server.
#[derive(Debug)]
pub struct RemoteJob {
    id: u64,
    updates: Receiver<Routed>,
    writer: Arc<Mutex<TcpStream>>,
    max_frame: usize,
}

impl RemoteJob {
    /// The correlation id this submission travels under.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks for the next progress update.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Disconnected`] once the connection is lost.
    pub fn next_update(&self) -> Result<JobUpdate, RemoteError> {
        match self.updates.recv() {
            Ok(Routed::Update(update)) => Ok(update),
            Ok(Routed::Lost) | Err(_) => Err(RemoteError::Disconnected),
        }
    }

    /// Blocks until the terminal frame and returns the per-job results.
    ///
    /// # Errors
    ///
    /// [`RemoteError::Rejected`] if the server refused or shed the submission,
    /// [`RemoteError::Canceled`] if it was canceled,
    /// [`RemoteError::Disconnected`] if the connection died first.
    #[allow(clippy::type_complexity)]
    pub fn wait(&self) -> Result<Vec<Result<CompilationReport, WireError>>, RemoteError> {
        loop {
            match self.next_update()? {
                JobUpdate::Event(JobEvent::Canceled) => return Err(RemoteError::Canceled),
                JobUpdate::Event(_) => continue,
                JobUpdate::Report(results) => return Ok(results),
                JobUpdate::Rejected(reason) => return Err(RemoteError::Rejected(reason)),
            }
        }
    }

    /// Asks the server to cancel this submission. The cancellation is
    /// confirmed by a terminal `Canceled` event on the stream.
    ///
    /// # Errors
    ///
    /// Fails if the request cannot be written.
    pub fn cancel(&self) -> Result<(), RemoteError> {
        // audit:allow(guard_blocking): the writer lock IS the frame serializer —
        // holding it across write_frame keeps request frames whole.
        let mut stream = self.writer.lock();
        write_frame(
            &mut *stream,
            &Request::Cancel { id: self.id },
            self.max_frame,
        )?;
        Ok(())
    }
}
