//! The typed wire protocol: framing, requests, responses, events.
//!
//! Every message travels as one *frame*: a little-endian `u32` length prefix
//! followed by that many bytes of bincode-encoded payload (the workspace's
//! fixed little-endian binary format). Frames are bounded by a negotiated
//! maximum ([`DEFAULT_MAX_FRAME`], `VQC_MAX_FRAME` on the server) so a hostile
//! or corrupt length prefix cannot trigger an unbounded allocation; an
//! oversized frame is a protocol fault that closes the connection, while a
//! well-framed payload that fails to decode is survivable (the stream remains
//! frame-aligned and the peer is told via [`Response::Error`]).
//!
//! The protocol is versioned out-of-band of the payload encoding: the first
//! frame on every connection must be [`Request::Hello`] carrying
//! [`PROTOCOL_VERSION`]; the server answers [`Response::Accepted`] (assigning
//! the connection its service client id) or [`Response::Rejected`] with
//! [`RejectReason::VersionMismatch`] and hangs up.

use serde::{Deserialize, Serialize};
use std::io::{ErrorKind, Read, Write};
use vqc_circuit::Circuit;
use vqc_core::{CompilationReport, CompileError, Strategy};
use vqc_runtime::{ClientMetrics, JobStatus, MetricsSnapshot, RuntimeMetrics, TraceEvent};

/// Version of the wire protocol spoken by this build. Bumped on any change to
/// the frame layout or the message enums below. Version 2 added
/// [`Request::Watch`] / [`Response::MetricsTick`], [`Request::Trace`] /
/// [`Response::Trace`], and the uptime/snapshot fields of [`ServerStats`].
/// Version 3 added the causal-trace fields: `sent_micros` on
/// [`Request::Hello`] and `server_micros` on [`Response::Accepted`] (one
/// round-trip clock-offset estimate), the client-assigned `trace` id on
/// [`Request::Submit`], and the `span_micros` duration on
/// [`vqc_runtime::TraceEvent`].
pub const PROTOCOL_VERSION: u32 = 3;

/// Default cap on one frame's payload size (8 MiB), server- and client-side.
pub const DEFAULT_MAX_FRAME: usize = 8 * 1024 * 1024;

/// Bytes of the length prefix that precedes every payload.
pub const FRAME_HEADER_BYTES: usize = 4;

/// A fault at the framing layer.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// An underlying socket read or write failed.
    Io(std::io::Error),
    /// A frame declared a payload larger than the configured bound. The stream
    /// cannot be re-aligned (the declared length is untrustworthy), so the
    /// connection must be closed.
    Oversized {
        /// Declared payload length.
        declared: usize,
        /// The configured bound it exceeded.
        max: usize,
    },
    /// A complete frame arrived but its payload did not decode as the expected
    /// type. The stream is still frame-aligned; the connection may continue.
    Decode(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::Oversized { declared, max } => {
                write!(
                    f,
                    "frame declares {declared} bytes, exceeding the {max}-byte bound"
                )
            }
            FrameError::Decode(message) => write!(f, "undecodable frame: {message}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Fails if the encoded payload exceeds `max_frame` or the write fails.
pub fn write_frame<W: Write, T: Serialize>(
    writer: &mut W,
    message: &T,
    max_frame: usize,
) -> Result<(), FrameError> {
    let mut frame = vec![0u8; FRAME_HEADER_BYTES];
    bincode::serialize_into(&mut frame, message)
        .map_err(|e| FrameError::Decode(format!("encoding failed: {e}")))?;
    let declared = frame.len() - FRAME_HEADER_BYTES;
    if declared > max_frame {
        return Err(FrameError::Oversized {
            declared,
            max: max_frame,
        });
    }
    frame[..FRAME_HEADER_BYTES].copy_from_slice(&(declared as u32).to_le_bytes());
    // One write per frame: header and payload in a single segment keeps a
    // naive TCP stack from pairing Nagle's algorithm with the peer's delayed
    // ACK (a ~40ms stall per round trip on small frames).
    writer.write_all(&frame)?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame and decodes it.
///
/// # Errors
///
/// [`FrameError::Closed`] on a clean EOF at a frame boundary,
/// [`FrameError::Oversized`] if the declared length exceeds `max_frame`,
/// [`FrameError::Decode`] if the payload does not decode, [`FrameError::Io`]
/// otherwise.
pub fn read_frame<R: Read, T: Deserialize>(
    reader: &mut R,
    max_frame: usize,
) -> Result<T, FrameError> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    if let Err(e) = reader.read_exact(&mut header) {
        return Err(if e.kind() == ErrorKind::UnexpectedEof {
            FrameError::Closed
        } else {
            FrameError::Io(e)
        });
    }
    let declared = u32::from_le_bytes(header) as usize;
    if declared > max_frame {
        return Err(FrameError::Oversized {
            declared,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; declared];
    reader.read_exact(&mut payload)?;
    bincode::deserialize(&payload).map_err(|e| FrameError::Decode(e.to_string()))
}

/// One compile job of a wire submission (mirrors `vqc_runtime::CompileJob`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireJob {
    /// The (possibly parameterized) circuit to compile.
    pub circuit: Circuit,
    /// Parameter binding for this job.
    pub params: Vec<f64>,
    /// Compilation strategy.
    pub strategy: Strategy,
}

/// What a [`Request::Submit`] asks the service to compile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SubmitPayload {
    /// Independent jobs, one result each.
    Batch(Vec<WireJob>),
    /// One circuit at many parameter bindings under one strategy (planned once —
    /// the paper's variational-loop workload).
    Iterations {
        /// The parameterized circuit.
        circuit: Circuit,
        /// One binding per variational iteration.
        parameter_sets: Vec<Vec<f64>>,
        /// Compilation strategy shared by every binding.
        strategy: Strategy,
    },
}

impl SubmitPayload {
    /// Number of jobs (and therefore results) the payload expands to.
    pub fn job_count(&self) -> usize {
        match self {
            SubmitPayload::Batch(jobs) => jobs.len(),
            SubmitPayload::Iterations { parameter_sets, .. } => parameter_sets.len(),
        }
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Connection handshake; must be the first frame. Negotiates the protocol
    /// version and the connection's default scheduling class.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Human-readable client name (for logs and dashboards; not an identity).
        client_name: String,
        /// Default priority class for this connection's submissions.
        priority: u8,
        /// Fair-share weight within the class (clamped server-side).
        weight: f64,
        /// The client's monotonic clock (microseconds since its own epoch) at
        /// the instant the Hello was sent. Paired with
        /// [`Response::Accepted::server_micros`] and the client's receive
        /// timestamp, one round trip yields a clock-offset estimate good
        /// enough to merge client and server trace spans onto one timeline.
        sent_micros: u64,
    },
    /// Submit work. `id` is a client-chosen correlation id echoed on every
    /// response concerning this submission; reusing a live id is rejected.
    Submit {
        /// Client-chosen correlation id.
        id: u64,
        /// What to compile.
        payload: SubmitPayload,
        /// Overrides the connection's negotiated priority for this submission.
        priority: Option<u8>,
        /// Client-assigned causal trace id, surfaced in the `detail` of the
        /// server's `submitted` trace event so merged traces can correlate the
        /// two processes' spans.
        trace: Option<u64>,
    },
    /// Poll one submission's life-cycle stage.
    Status {
        /// Correlation id of the submission.
        id: u64,
    },
    /// Cancel one submission (queued or running).
    Cancel {
        /// Correlation id of the submission.
        id: u64,
    },
    /// Request the server's global metrics plus this client's slice.
    Stats,
    /// Subscribe this connection to the periodic metrics-snapshot stream: the
    /// server immediately sends one [`Response::MetricsTick`], then one per
    /// telemetry aggregator tick (strictly increasing `seq`), until the
    /// connection closes or the server drains. Idempotent — a second Watch on
    /// the same connection is ignored (one stream per connection).
    Watch,
    /// Fetch the server's buffered lifecycle trace ring (oldest event first),
    /// answered with [`Response::Trace`] — render it with
    /// `vqc_runtime::chrome_trace_json` for `chrome://tracing` / Perfetto.
    Trace,
    /// Ask the server to shut down gracefully (drains in-flight work).
    Shutdown,
}

/// Life-cycle stage of a submission, as reported over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireStatus {
    /// Admitted, not yet expanded into block tasks.
    Queued,
    /// Expanded; block tasks queued on or running on the worker pool.
    Running,
    /// All jobs have results.
    Done,
    /// Load-shed before it started.
    Shed,
    /// Canceled (by request or by disconnect).
    Canceled,
}

impl From<JobStatus> for WireStatus {
    fn from(status: JobStatus) -> Self {
        match status {
            JobStatus::Queued => WireStatus::Queued,
            JobStatus::Running => WireStatus::Running,
            JobStatus::Done => WireStatus::Done,
            JobStatus::Shed => WireStatus::Shed,
            JobStatus::Canceled => WireStatus::Canceled,
        }
    }
}

/// An asynchronous per-submission notification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobEvent {
    /// The submission was admitted into the service queue.
    Queued,
    /// The submission expanded into block tasks and compilation began.
    Running {
        /// Number of jobs the submission plans to resolve.
        jobs: usize,
    },
    /// One job of the submission completed — streamed as its blocks finish,
    /// before the terminal [`Response::Report`] carries the full result set.
    JobDone {
        /// Submission-order index of the completed job.
        job: usize,
        /// Whether the job compiled successfully.
        ok: bool,
        /// The compiled pulse duration (ns); `0.0` for failed jobs.
        pulse_duration_ns: f64,
    },
    /// The submission was canceled (client request or disconnect).
    Canceled,
    /// Answer to a [`Request::Status`] poll.
    Status {
        /// Current life-cycle stage.
        status: WireStatus,
        /// Jobs completed so far.
        completed_jobs: usize,
    },
}

/// Why the server refused a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The Hello's protocol version does not match the server's.
    VersionMismatch {
        /// The server's [`PROTOCOL_VERSION`].
        server: u32,
        /// The version the client sent.
        client: u32,
    },
    /// The admission queue is at its configured depth (`Backpressure::Reject`).
    QueueFull {
        /// The configured depth.
        depth: usize,
    },
    /// The submission was load-shed for higher-priority work.
    Shed,
    /// The service (or server) is shutting down.
    ShuttingDown,
    /// The correlation id names no live submission of this connection.
    UnknownSubmission,
    /// The correlation id is already bound to a live submission.
    DuplicateSubmission,
    /// A non-Hello frame arrived before the handshake completed.
    HelloRequired,
    /// The server is at its connection limit.
    ConnectionLimit {
        /// The configured limit.
        max: usize,
    },
    /// The submission completed but its encoded result set exceeds the frame
    /// bound; the work is done (and cached server-side) but the report cannot
    /// be delivered. Raise `VQC_MAX_FRAME` or split the submission.
    ReportTooLarge {
        /// Encoded size of the report that could not be sent.
        declared: usize,
        /// The configured frame bound.
        max: usize,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::VersionMismatch { server, client } => {
                write!(
                    f,
                    "protocol version mismatch: server speaks {server}, client sent {client}"
                )
            }
            RejectReason::QueueFull { depth } => {
                write!(f, "admission queue is at its configured depth of {depth}")
            }
            RejectReason::Shed => write!(f, "submission was load-shed for higher-priority work"),
            RejectReason::ShuttingDown => write!(f, "the server is shutting down"),
            RejectReason::UnknownSubmission => write!(f, "unknown submission id"),
            RejectReason::DuplicateSubmission => write!(f, "submission id is already in use"),
            RejectReason::HelloRequired => write!(f, "the first frame must be Hello"),
            RejectReason::ConnectionLimit { max } => {
                write!(f, "server is at its connection limit of {max}")
            }
            RejectReason::ReportTooLarge { declared, max } => {
                write!(
                    f,
                    "the {declared}-byte report exceeds the {max}-byte frame bound; raise VQC_MAX_FRAME or split the submission"
                )
            }
        }
    }
}

/// A compile failure flattened for the wire. `vqc_core::CompileError` wraps
/// crate-internal error types that do not serialize; the structured case remote
/// clients act on (wrong parameter count) survives, everything else carries its
/// rendered message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireError {
    /// The parameter vector is shorter than the circuit requires.
    MissingParameters {
        /// Number of parameters supplied.
        supplied: usize,
        /// Number the circuit references.
        required: usize,
    },
    /// Any other compile error, rendered.
    Message(String),
}

impl From<&CompileError> for WireError {
    fn from(error: &CompileError) -> Self {
        match error {
            CompileError::MissingParameters { supplied, required } => {
                WireError::MissingParameters {
                    supplied: *supplied,
                    required: *required,
                }
            }
            other => WireError::Message(other.to_string()),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::MissingParameters { supplied, required } => write!(
                f,
                "parameter binding has {supplied} entries but the circuit references {required} parameters"
            ),
            WireError::Message(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for WireError {}

/// The server's counters as returned by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Global runtime counters (cache, compilations, admissions, workers).
    pub runtime: RuntimeMetrics,
    /// The requesting connection's service client id.
    pub client_id: u64,
    /// The requesting client's slice of the counters.
    pub client: ClientMetrics,
    /// Seconds since the server's service core started. A poller seeing this
    /// decrease knows the server restarted between reads.
    pub uptime_seconds: f64,
    /// Sequence number of the most recent telemetry snapshot (0 before the
    /// first). Strictly monotonic per server process: a repeated value means
    /// the read is stale (no new snapshot since), a smaller value means a
    /// restart.
    pub snapshot_seq: u64,
    /// Server uptime at which that snapshot was assembled (0.0 before the
    /// first).
    pub snapshot_uptime_seconds: f64,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Hello accepted: the connection is authenticated and mapped to a service
    /// client id; all fair-share accounting and per-client metrics key on it.
    Accepted {
        /// The client id assigned to this connection.
        client_id: u64,
        /// The server's protocol version (equals the client's after a
        /// successful handshake).
        protocol: u32,
        /// The server's monotonic clock (microseconds since its service core
        /// started — the timebase of every [`vqc_runtime::TraceEvent`]) when
        /// it answered the Hello. The client estimates
        /// `offset = server_micros - (send + receive) / 2` and maps server
        /// trace timestamps into its own timeline by subtracting it.
        server_micros: u64,
    },
    /// An asynchronous notification about one submission.
    Event {
        /// Correlation id the client chose at submit.
        id: u64,
        /// What happened.
        event: JobEvent,
    },
    /// Terminal result of a submission: one result per job, submission order.
    Report {
        /// Correlation id the client chose at submit.
        id: u64,
        /// Per-job results.
        results: Vec<Result<CompilationReport, WireError>>,
    },
    /// A request was refused.
    Rejected {
        /// Correlation id of the refused request (`0` for connection-level
        /// refusals such as the handshake).
        id: u64,
        /// Why.
        reason: RejectReason,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// The counters.
        stats: ServerStats,
    },
    /// One telemetry snapshot of the [`Request::Watch`] stream (also sent once
    /// immediately on subscription). `snapshot.seq` increases strictly within a
    /// connection's stream.
    MetricsTick {
        /// The snapshot.
        snapshot: MetricsSnapshot,
    },
    /// Answer to [`Request::Trace`]: the server's buffered lifecycle events,
    /// oldest first.
    Trace {
        /// The buffered trace events.
        events: Vec<TraceEvent>,
    },
    /// A protocol-level failure (malformed frame, internal error). The
    /// connection survives when the stream is still frame-aligned.
    Error {
        /// Rendered description.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: Request) {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, &request, DEFAULT_MAX_FRAME).unwrap();
        let mut cursor = &buffer[..];
        let decoded: Request = read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(decoded, request);
        assert!(cursor.is_empty(), "frame consumed exactly");
    }

    #[test]
    fn requests_round_trip_through_frames() {
        let mut circuit = Circuit::new(2);
        circuit.h(0);
        circuit.cx(0, 1);
        round_trip_request(Request::Hello {
            protocol: PROTOCOL_VERSION,
            client_name: "test".into(),
            priority: 8,
            weight: 2.0,
            sent_micros: 123_456,
        });
        round_trip_request(Request::Submit {
            id: 7,
            payload: SubmitPayload::Iterations {
                circuit: circuit.clone(),
                parameter_sets: vec![vec![0.1], vec![0.9]],
                strategy: Strategy::StrictPartial,
            },
            priority: Some(16),
            trace: Some(0xDEAD_BEEF),
        });
        round_trip_request(Request::Submit {
            id: 8,
            payload: SubmitPayload::Batch(vec![WireJob {
                circuit,
                params: vec![],
                strategy: Strategy::GateBased,
            }]),
            priority: None,
            trace: None,
        });
        round_trip_request(Request::Status { id: 7 });
        round_trip_request(Request::Cancel { id: 7 });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Watch);
        round_trip_request(Request::Trace);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip_through_frames() {
        for response in [
            Response::Accepted {
                client_id: 3,
                protocol: PROTOCOL_VERSION,
                server_micros: 42_000,
            },
            Response::Event {
                id: 7,
                event: JobEvent::JobDone {
                    job: 1,
                    ok: true,
                    pulse_duration_ns: 120.5,
                },
            },
            Response::Rejected {
                id: 0,
                reason: RejectReason::VersionMismatch {
                    server: PROTOCOL_VERSION,
                    client: 999,
                },
            },
            Response::Error {
                message: "undecodable frame".into(),
            },
            Response::MetricsTick {
                snapshot: MetricsSnapshot {
                    seq: 5,
                    uptime_seconds: 12.25,
                    workers: 4,
                    busy_workers: 2,
                    queued_by_class: [1, 2, 3],
                    classes: vec![vqc_runtime::ClassLatency {
                        class: 2,
                        queue_wait: vqc_runtime::HistogramSnapshot {
                            count: 3,
                            total_seconds: 0.5,
                            buckets: vec![0, 1, 2],
                        },
                        ..vqc_runtime::ClassLatency::default()
                    }],
                    ..MetricsSnapshot::default()
                },
            },
            Response::Trace {
                events: vec![TraceEvent {
                    submission: 9,
                    client: Some(4),
                    stage: vqc_runtime::TraceStage::Dispatched,
                    micros: 1234,
                    detail: 7,
                    span_micros: 0,
                }],
            },
        ] {
            let mut buffer = Vec::new();
            write_frame(&mut buffer, &response, DEFAULT_MAX_FRAME).unwrap();
            let decoded: Response = read_frame(&mut &buffer[..], DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn oversized_and_truncated_frames_are_faults() {
        // A header declaring more than the bound.
        let header = (64u32).to_le_bytes();
        assert!(matches!(
            read_frame::<_, Request>(&mut &header[..], 16),
            Err(FrameError::Oversized {
                declared: 64,
                max: 16
            })
        ));
        // A clean EOF between frames is Closed, not Io.
        assert!(matches!(
            read_frame::<_, Request>(&mut &[][..], 16),
            Err(FrameError::Closed)
        ));
        // Garbage of the declared length is a Decode fault (stream stays aligned).
        let mut buffer = (4u32).to_le_bytes().to_vec();
        buffer.extend_from_slice(&[0xff, 0xff, 0xff, 0xff]);
        assert!(matches!(
            read_frame::<_, Request>(&mut &buffer[..], 16),
            Err(FrameError::Decode(_))
        ));
    }
}
