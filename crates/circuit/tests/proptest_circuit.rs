//! Property-based tests for the circuit IR and transpiler passes.

use proptest::prelude::*;
use vqc_circuit::passes::{cancel_adjacent_pairs, decompose_to_basis, merge_rotations, optimize};
use vqc_circuit::timing::{critical_path_ns, serial_duration_ns, GateTimes};
use vqc_circuit::{mapping::map_to_topology, Circuit, ParamExpr, Topology};

/// A random instruction description we can replay onto a `Circuit`.
#[derive(Debug, Clone)]
enum Instr {
    H(usize),
    X(usize),
    RxConst(usize, f64),
    RzConst(usize, f64),
    RzTheta(usize, usize),
    Cx(usize, usize),
    Cz(usize, usize),
    Swap(usize, usize),
    Rzz(usize, usize, usize),
}

fn arb_instr(num_qubits: usize, num_params: usize) -> impl Strategy<Value = Instr> {
    let q = 0..num_qubits;
    let q2 = (0..num_qubits, 0..num_qubits).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(Instr::H),
        q.clone().prop_map(Instr::X),
        (q.clone(), -3.0..3.0f64).prop_map(|(a, v)| Instr::RxConst(a, v)),
        (q.clone(), -3.0..3.0f64).prop_map(|(a, v)| Instr::RzConst(a, v)),
        (q.clone(), 0..num_params).prop_map(|(a, p)| Instr::RzTheta(a, p)),
        q2.clone().prop_map(|(a, b)| Instr::Cx(a, b)),
        q2.clone().prop_map(|(a, b)| Instr::Cz(a, b)),
        q2.clone().prop_map(|(a, b)| Instr::Swap(a, b)),
        (q2, 0..num_params).prop_map(|((a, b), p)| Instr::Rzz(a, b, p)),
    ]
}

fn build(num_qubits: usize, instrs: &[Instr]) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for i in instrs {
        match *i {
            Instr::H(a) => c.h(a),
            Instr::X(a) => c.x(a),
            Instr::RxConst(a, v) => c.rx(a, v),
            Instr::RzConst(a, v) => c.rz(a, v),
            Instr::RzTheta(a, p) => c.rz_expr(a, ParamExpr::theta(p)),
            Instr::Cx(a, b) => c.cx(a, b),
            Instr::Cz(a, b) => c.cz(a, b),
            Instr::Swap(a, b) => c.swap(a, b),
            Instr::Rzz(a, b, p) => c.rzz_expr(a, b, ParamExpr::theta(p)),
        }
    }
    c
}

fn arb_circuit(
    num_qubits: usize,
    num_params: usize,
    max_len: usize,
) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_instr(num_qubits, num_params), 0..max_len)
        .prop_map(move |instrs| build(num_qubits, &instrs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decompose_produces_only_basis_gates(c in arb_circuit(4, 3, 30)) {
        let lowered = decompose_to_basis(&c);
        prop_assert!(lowered.iter().all(|op| op.gate.is_basis_gate()));
    }

    #[test]
    fn passes_never_grow_the_circuit(c in arb_circuit(4, 3, 30)) {
        let lowered = decompose_to_basis(&c);
        prop_assert!(merge_rotations(&lowered).len() <= lowered.len());
        prop_assert!(cancel_adjacent_pairs(&lowered).len() <= lowered.len());
    }

    #[test]
    fn optimize_never_increases_runtime(c in arb_circuit(4, 3, 30)) {
        let times = GateTimes::default();
        let baseline = critical_path_ns(&decompose_to_basis(&c), &times);
        let optimized = critical_path_ns(&optimize(&c), &times);
        prop_assert!(optimized <= baseline + 1e-9);
    }

    #[test]
    fn optimize_preserves_parameter_set_or_shrinks_it(c in arb_circuit(4, 3, 30)) {
        let before = c.parameter_indices();
        let after = optimize(&c).parameter_indices();
        prop_assert!(after.is_subset(&before));
    }

    #[test]
    fn critical_path_is_at_most_serial_time(c in arb_circuit(5, 3, 40)) {
        let times = GateTimes::default();
        let lowered = decompose_to_basis(&c);
        let cp = critical_path_ns(&lowered, &times);
        let serial = serial_duration_ns(&lowered, &times).unwrap();
        prop_assert!(cp <= serial + 1e-9);
    }

    #[test]
    fn binding_removes_all_parameters(c in arb_circuit(4, 3, 30), params in prop::collection::vec(-3.0..3.0f64, 3)) {
        let bound = c.bind(&params);
        prop_assert_eq!(bound.num_parameters(), 0);
        prop_assert_eq!(bound.len(), c.len());
    }

    #[test]
    fn routing_to_a_line_makes_all_two_qubit_gates_local(c in arb_circuit(5, 3, 25)) {
        let topo = Topology::line(5);
        let lowered = decompose_to_basis(&c);
        let mapped = map_to_topology(&lowered, &topo).unwrap();
        for op in mapped.circuit.iter() {
            if op.qubits.len() == 2 {
                prop_assert!(topo.are_connected(op.qubits[0], op.qubits[1]));
            }
        }
        // Routing only ever adds SWAP gates.
        prop_assert!(mapped.circuit.len() >= lowered.len());
        prop_assert_eq!(mapped.circuit.len() - lowered.len(), mapped.swaps_inserted);
    }

    #[test]
    fn grid_routing_also_succeeds(c in arb_circuit(6, 3, 25)) {
        let topo = Topology::grid(2, 3);
        let lowered = decompose_to_basis(&c);
        let mapped = map_to_topology(&lowered, &topo).unwrap();
        for op in mapped.circuit.iter() {
            if op.qubits.len() == 2 {
                prop_assert!(topo.are_connected(op.qubits[0], op.qubits[1]));
            }
        }
    }
}
