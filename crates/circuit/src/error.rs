//! Error type for circuit construction and transformation.

use std::error::Error;
use std::fmt;

/// Errors produced by circuit-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A circuit of unexpected width was supplied.
    WidthMismatch {
        /// Width the operation expected (receiving circuit).
        expected: usize,
        /// Width that was actually supplied.
        actual: usize,
    },
    /// A two-qubit gate acts on qubits that are not connected in the device topology.
    UnroutableGate {
        /// First operand.
        a: usize,
        /// Second operand.
        b: usize,
    },
    /// A gate outside the compilation basis was encountered where only basis gates are
    /// allowed (e.g. when computing a gate-based runtime).
    NonBasisGate {
        /// Name of the offending gate.
        gate: &'static str,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::WidthMismatch { expected, actual } => {
                write!(
                    f,
                    "circuit width mismatch: expected at most {expected} qubits, got {actual}"
                )
            }
            CircuitError::UnroutableGate { a, b } => {
                write!(
                    f,
                    "no path between qubits {a} and {b} in the device topology"
                )
            }
            CircuitError::NonBasisGate { gate } => {
                write!(
                    f,
                    "gate '{gate}' is not in the compilation basis; run decompose_to_basis first"
                )
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_problem() {
        assert!(CircuitError::WidthMismatch {
            expected: 2,
            actual: 4
        }
        .to_string()
        .contains("width"));
        assert!(CircuitError::UnroutableGate { a: 0, b: 5 }
            .to_string()
            .contains("path"));
        assert!(CircuitError::NonBasisGate { gate: "cz" }
            .to_string()
            .contains("cz"));
    }
}
