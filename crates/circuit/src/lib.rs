//! Quantum circuit intermediate representation and transpiler.
//!
//! This crate provides everything the compilation strategies in `vqc-core` need to
//! reason about *variational* circuits:
//!
//! * [`Gate`] / [`GateOp`] — the compiler's gate set from Table 1 of the paper
//!   (`Rz`, `Rx`, `H`, `CX`, `SWAP`, plus `CZ`/`Rzz`/`Ry` helpers used when building
//!   benchmark circuits), each carrying its operand qubits.
//! * [`ParamExpr`] — symbolic parameter expressions. Variational circuits are
//!   parameterized by a vector `θ`; a rotation angle is either a constant or a linear
//!   function `a·θᵢ + b` of exactly one parameter. This explicit tagging is what lets
//!   the partial compiler discover *parameter monotonicity* (Section 7.1) even after
//!   circuit optimizations rewrite angles into `−θᵢ` or `θᵢ/2`.
//! * [`Circuit`] — an ordered list of gate operations with builder methods.
//! * [`timing`] — ASAP (as-soon-as-possible) parallel scheduling and critical-path
//!   runtime, indexed to the Table-1 pulse durations.
//! * [`passes`] — the circuit optimizations the paper applies before measuring its
//!   gate-based baseline: rotation merging, CX/CZ/H/SWAP cancellation, and removal of
//!   zero rotations.
//! * [`topology`] / [`mapping`] — device connectivity graphs and SWAP-insertion
//!   routing to nearest-neighbour topologies.
//!
//! # Example
//!
//! ```
//! use vqc_circuit::{Circuit, ParamExpr, timing::GateTimes};
//!
//! // A two-qubit variational circuit with one parameter θ₀.
//! let mut c = Circuit::new(2);
//! c.h(0);
//! c.cx(0, 1);
//! c.rz_expr(1, ParamExpr::theta(0));
//! c.cx(0, 1);
//!
//! assert_eq!(c.num_parameters(), 1);
//! let runtime = timing::critical_path_ns(&c, &GateTimes::default());
//! assert!(runtime > 0.0);
//! # use vqc_circuit::timing;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod circuit;
mod error;
mod gate;
pub mod mapping;
mod param;
pub mod passes;
pub mod timing;
pub mod topology;

pub use circuit::Circuit;
pub use error::CircuitError;
pub use gate::{Gate, GateOp};
pub use param::ParamExpr;
pub use topology::Topology;
