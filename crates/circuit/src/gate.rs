//! Gate set and gate operations.

use crate::ParamExpr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A quantum gate from the compiler's gate set.
///
/// The *compilation basis* matching Table 1 of the paper is
/// `{Rz(φ), Rx(θ), H, CX, SWAP}`; the remaining variants (`X`, `Z`, `Ry`, `CZ`, `Rzz`)
/// are construction conveniences used by the benchmark generators and are lowered to the
/// basis by [`crate::passes::decompose_to_basis`] before any runtime is measured.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Rotation about the Z axis by the given angle (fast flux drive on gmon hardware).
    Rz(ParamExpr),
    /// Rotation about the X axis by the given angle (charge drive).
    Rx(ParamExpr),
    /// Rotation about the Y axis (convenience; lowered to Rz·Rx·Rz).
    Ry(ParamExpr),
    /// Hadamard gate.
    H,
    /// Pauli-X (NOT) gate; lowered to `Rx(π)`.
    X,
    /// Pauli-Z gate; lowered to `Rz(π)`.
    Z,
    /// Controlled-NOT gate.
    Cx,
    /// Controlled-Z gate (convenience; lowered to H·CX·H on the target).
    Cz,
    /// SWAP gate.
    Swap,
    /// Two-qubit ZZ rotation `exp(-i θ/2 Z⊗Z)` (convenience; lowered to CX·Rz·CX).
    Rzz(ParamExpr),
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::Rz(_) | Gate::Rx(_) | Gate::Ry(_) | Gate::H | Gate::X | Gate::Z => 1,
            Gate::Cx | Gate::Cz | Gate::Swap | Gate::Rzz(_) => 2,
        }
    }

    /// Short mnemonic name.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::Rz(_) => "rz",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::H => "h",
            Gate::X => "x",
            Gate::Z => "z",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Swap => "swap",
            Gate::Rzz(_) => "rzz",
        }
    }

    /// The angle expression carried by a rotation gate, if any.
    pub fn angle(&self) -> Option<&ParamExpr> {
        match self {
            Gate::Rz(e) | Gate::Rx(e) | Gate::Ry(e) | Gate::Rzz(e) => Some(e),
            _ => None,
        }
    }

    /// Returns `true` if the gate's angle depends on a variational parameter.
    pub fn is_parameterized(&self) -> bool {
        self.angle()
            .map(ParamExpr::is_parameterized)
            .unwrap_or(false)
    }

    /// Index of the variational parameter the gate depends on, if any.
    pub fn parameter(&self) -> Option<usize> {
        self.angle().and_then(ParamExpr::parameter)
    }

    /// Returns `true` if the gate belongs to the Table-1 compilation basis
    /// `{Rz, Rx, H, CX, SWAP}`.
    pub fn is_basis_gate(&self) -> bool {
        matches!(
            self,
            Gate::Rz(_) | Gate::Rx(_) | Gate::H | Gate::Cx | Gate::Swap
        )
    }

    /// Returns the same gate with its angle expression replaced, for rotation gates.
    pub(crate) fn with_angle(&self, e: ParamExpr) -> Gate {
        match self {
            Gate::Rz(_) => Gate::Rz(e),
            Gate::Rx(_) => Gate::Rx(e),
            Gate::Ry(_) => Gate::Ry(e),
            Gate::Rzz(_) => Gate::Rzz(e),
            other => *other,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.angle() {
            Some(e) => write!(f, "{}({})", self.name(), e),
            None => write!(f, "{}", self.name()),
        }
    }
}

/// A gate applied to specific qubits: one instruction of a [`crate::Circuit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateOp {
    /// The gate being applied.
    pub gate: Gate,
    /// Operand qubits, in gate order (control first for `Cx`/`Cz`).
    pub qubits: Vec<usize>,
}

impl GateOp {
    /// Creates a gate operation, validating the operand count.
    ///
    /// # Panics
    ///
    /// Panics if the number of qubits does not match the gate arity or the operands of a
    /// two-qubit gate coincide.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        assert_eq!(
            qubits.len(),
            gate.num_qubits(),
            "gate {} expects {} operand(s), got {}",
            gate.name(),
            gate.num_qubits(),
            qubits.len()
        );
        if qubits.len() == 2 {
            assert_ne!(
                qubits[0], qubits[1],
                "two-qubit gate operands must be distinct"
            );
        }
        GateOp { gate, qubits }
    }

    /// Returns `true` if this operation touches the given qubit.
    pub fn acts_on(&self, qubit: usize) -> bool {
        self.qubits.contains(&qubit)
    }

    /// Returns `true` if this operation shares any qubit with `other`.
    pub fn overlaps(&self, other: &GateOp) -> bool {
        self.qubits.iter().any(|q| other.qubits.contains(q))
    }

    /// Index of the variational parameter the operation depends on, if any.
    pub fn parameter(&self) -> Option<usize> {
        self.gate.parameter()
    }

    /// Returns `true` if the operation depends on a variational parameter.
    pub fn is_parameterized(&self) -> bool {
        self.gate.is_parameterized()
    }
}

impl fmt::Display for GateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qubits: Vec<String> = self.qubits.iter().map(|q| format!("q{q}")).collect();
        write!(f, "{} {}", self.gate, qubits.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_names() {
        assert_eq!(Gate::H.num_qubits(), 1);
        assert_eq!(Gate::Cx.num_qubits(), 2);
        assert_eq!(Gate::Swap.name(), "swap");
        assert_eq!(Gate::Rzz(ParamExpr::theta(0)).num_qubits(), 2);
    }

    #[test]
    fn parameterization_is_visible() {
        let g = Gate::Rz(ParamExpr::theta(4).scaled(-0.5));
        assert!(g.is_parameterized());
        assert_eq!(g.parameter(), Some(4));
        assert!(!Gate::Rz(ParamExpr::constant(1.0)).is_parameterized());
        assert!(!Gate::H.is_parameterized());
    }

    #[test]
    fn basis_membership_matches_table1() {
        assert!(Gate::Rz(ParamExpr::constant(0.1)).is_basis_gate());
        assert!(Gate::Rx(ParamExpr::constant(0.1)).is_basis_gate());
        assert!(Gate::H.is_basis_gate());
        assert!(Gate::Cx.is_basis_gate());
        assert!(Gate::Swap.is_basis_gate());
        assert!(!Gate::Cz.is_basis_gate());
        assert!(!Gate::Ry(ParamExpr::constant(0.1)).is_basis_gate());
        assert!(!Gate::Rzz(ParamExpr::constant(0.1)).is_basis_gate());
    }

    #[test]
    fn gate_op_overlap() {
        let a = GateOp::new(Gate::Cx, vec![0, 1]);
        let b = GateOp::new(Gate::H, vec![1]);
        let c = GateOp::new(Gate::H, vec![2]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.acts_on(0));
        assert!(!a.acts_on(2));
    }

    #[test]
    #[should_panic(expected = "expects 2 operand(s)")]
    fn wrong_arity_panics() {
        GateOp::new(Gate::Cx, vec![0]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn repeated_operands_panic() {
        GateOp::new(Gate::Cx, vec![1, 1]);
    }

    #[test]
    fn display_is_readable() {
        let op = GateOp::new(Gate::Rz(ParamExpr::theta(0)), vec![3]);
        assert_eq!(op.to_string(), "rz(θ0) q3");
    }
}
