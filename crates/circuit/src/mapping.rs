//! SWAP-insertion routing to a device topology.
//!
//! The benchmark circuits assume all-to-all logical connectivity; before a gate-based
//! runtime is meaningful, two-qubit gates between non-adjacent physical qubits must be
//! routed with SWAP chains. This module implements the greedy nearest-neighbour router
//! used to prepare the paper's baseline circuits: for every non-local two-qubit gate,
//! SWAP the control along the shortest path until it neighbours the target, then apply
//! the gate. The logical→physical assignment is updated as SWAPs are inserted, so later
//! gates benefit from earlier movement.

use crate::{Circuit, CircuitError, GateOp, Topology};

/// Result of routing a circuit onto a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedCircuit {
    /// The routed circuit, expressed over *physical* qubit indices.
    pub circuit: Circuit,
    /// Number of SWAP gates inserted by the router.
    pub swaps_inserted: usize,
    /// Final logical→physical qubit assignment.
    pub final_layout: Vec<usize>,
}

/// Routes `circuit` onto `topology` with a trivial initial layout (logical qubit `i`
/// starts on physical qubit `i`).
///
/// # Errors
///
/// Returns [`CircuitError::WidthMismatch`] if the topology has fewer qubits than the
/// circuit, or [`CircuitError::UnroutableGate`] if two operands of a gate lie in
/// disconnected components of the topology.
pub fn map_to_topology(
    circuit: &Circuit,
    topology: &Topology,
) -> Result<MappedCircuit, CircuitError> {
    if topology.num_qubits() < circuit.num_qubits() {
        return Err(CircuitError::WidthMismatch {
            expected: circuit.num_qubits(),
            actual: topology.num_qubits(),
        });
    }

    // layout[logical] = physical
    let mut layout: Vec<usize> = (0..circuit.num_qubits()).collect();
    let mut out = Circuit::new(topology.num_qubits());
    let mut swaps = 0usize;

    for op in circuit.iter() {
        match op.qubits.len() {
            1 => {
                out.push(GateOp::new(op.gate, vec![layout[op.qubits[0]]]));
            }
            2 => {
                let (la, lb) = (op.qubits[0], op.qubits[1]);
                let (mut pa, pb) = (layout[la], layout[lb]);
                if !topology.are_connected(pa, pb) {
                    let path = topology
                        .shortest_path(pa, pb)
                        .ok_or(CircuitError::UnroutableGate { a: pa, b: pb })?;
                    // Move the first operand along the path until adjacent to pb.
                    for window in path.windows(2).take(path.len().saturating_sub(2)) {
                        let (from, to) = (window[0], window[1]);
                        out.swap(from, to);
                        swaps += 1;
                        // Update the layout: whichever logical qubits live on `from` and
                        // `to` exchange places.
                        for slot in layout.iter_mut() {
                            if *slot == from {
                                *slot = to;
                            } else if *slot == to {
                                *slot = from;
                            }
                        }
                        pa = to;
                    }
                }
                debug_assert!(topology.are_connected(pa, layout[lb]));
                out.push(GateOp::new(op.gate, vec![layout[la], layout[lb]]));
            }
            _ => unreachable!("gates act on at most two qubits"),
        }
    }

    Ok(MappedCircuit {
        circuit: out,
        swaps_inserted: swaps,
        final_layout: layout,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    #[test]
    fn local_gates_need_no_swaps() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        let mapped = map_to_topology(&c, &Topology::line(3)).unwrap();
        assert_eq!(mapped.swaps_inserted, 0);
        assert_eq!(mapped.circuit.len(), 3);
        assert_eq!(mapped.final_layout, vec![0, 1, 2]);
    }

    #[test]
    fn distant_gate_inserts_swaps() {
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let topo = Topology::line(4);
        let mapped = map_to_topology(&c, &topo).unwrap();
        // Distance 3 -> 2 swaps to become adjacent.
        assert_eq!(mapped.swaps_inserted, 2);
        // The CX in the routed circuit must act on adjacent physical qubits.
        let cx = mapped
            .circuit
            .iter()
            .find(|op| matches!(op.gate, Gate::Cx))
            .unwrap();
        assert!(topo.are_connected(cx.qubits[0], cx.qubits[1]));
    }

    #[test]
    fn layout_updates_benefit_later_gates() {
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        c.cx(0, 3);
        let mapped = map_to_topology(&c, &Topology::line(4)).unwrap();
        // After routing the first CX the operands are adjacent, so the second needs no
        // further swaps.
        assert_eq!(mapped.swaps_inserted, 2);
    }

    #[test]
    fn fully_connected_topology_is_identity_routing() {
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        c.cx(2, 3);
        let mapped = map_to_topology(&c, &Topology::fully_connected(5)).unwrap();
        assert_eq!(mapped.swaps_inserted, 0);
    }

    #[test]
    fn too_small_topology_is_rejected() {
        let c = Circuit::new(4);
        assert!(matches!(
            map_to_topology(&c, &Topology::line(2)),
            Err(CircuitError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn disconnected_topology_is_unroutable() {
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let topo = Topology::new(4, &[(0, 1), (2, 3)]);
        assert!(matches!(
            map_to_topology(&c, &topo),
            Err(CircuitError::UnroutableGate { .. })
        ));
    }

    #[test]
    fn mapped_circuit_lives_on_physical_register() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let mapped = map_to_topology(&c, &Topology::grid(2, 2)).unwrap();
        assert_eq!(mapped.circuit.num_qubits(), 4);
    }
}
