//! Gate pulse durations (Table 1) and ASAP parallel scheduling.
//!
//! The paper's gate-based baseline is "the critical path through the parallelized
//! circuit", indexed to the pulse durations of Table 1. This module implements exactly
//! that: a greedy as-soon-as-possible (ASAP) schedule where each gate starts as soon as
//! all of its operand qubits are free, and the runtime is the maximum completion time.

use crate::{Circuit, CircuitError, Gate, GateOp};
use serde::{Deserialize, Serialize};

/// Pulse durations (in nanoseconds) for the compilation basis gate set, Table 1 of the
/// paper. These were originally produced by running GRAPE on each basis gate against the
/// gmon Hamiltonian of Appendix A.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateTimes {
    /// Duration of `Rz(φ)` (fast flux drive): 0.4 ns.
    pub rz_ns: f64,
    /// Duration of `Rx(θ)` (charge drive): 2.5 ns.
    pub rx_ns: f64,
    /// Duration of the Hadamard gate: 1.4 ns.
    pub h_ns: f64,
    /// Duration of the CNOT gate: 3.8 ns.
    pub cx_ns: f64,
    /// Duration of the SWAP gate: 7.4 ns.
    pub swap_ns: f64,
}

impl Default for GateTimes {
    /// The Table-1 durations.
    fn default() -> Self {
        GateTimes {
            rz_ns: 0.4,
            rx_ns: 2.5,
            h_ns: 1.4,
            cx_ns: 3.8,
            swap_ns: 7.4,
        }
    }
}

impl GateTimes {
    /// Duration in nanoseconds of a single basis gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NonBasisGate`] for gates outside the Table-1 basis; run
    /// [`crate::passes::decompose_to_basis`] first.
    pub fn duration_ns(&self, gate: &Gate) -> Result<f64, CircuitError> {
        match gate {
            Gate::Rz(_) => Ok(self.rz_ns),
            Gate::Rx(_) => Ok(self.rx_ns),
            Gate::H => Ok(self.h_ns),
            Gate::Cx => Ok(self.cx_ns),
            Gate::Swap => Ok(self.swap_ns),
            other => Err(CircuitError::NonBasisGate { gate: other.name() }),
        }
    }
}

/// One scheduled operation: the index of the gate in the circuit, its start time, and
/// its duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledOp {
    /// Index of the operation in the source circuit's program order.
    pub op_index: usize,
    /// Start time in nanoseconds.
    pub start_ns: f64,
    /// Duration in nanoseconds.
    pub duration_ns: f64,
}

impl ScheduledOp {
    /// Completion time in nanoseconds.
    pub fn end_ns(&self) -> f64 {
        self.start_ns + self.duration_ns
    }
}

/// An ASAP schedule of a circuit: every gate starts as soon as its operands are free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    ops: Vec<ScheduledOp>,
    total_ns: f64,
}

impl Schedule {
    /// The scheduled operations in program order.
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// Critical-path duration of the schedule in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.total_ns
    }
}

/// Computes the ASAP schedule of a basis-gate circuit under the given gate durations.
///
/// # Errors
///
/// Returns [`CircuitError::NonBasisGate`] if the circuit contains gates outside the
/// Table-1 compilation basis.
pub fn schedule_asap(circuit: &Circuit, times: &GateTimes) -> Result<Schedule, CircuitError> {
    let mut qubit_free_at = vec![0.0_f64; circuit.num_qubits()];
    let mut ops = Vec::with_capacity(circuit.len());
    let mut total = 0.0_f64;
    for (i, op) in circuit.iter().enumerate() {
        let duration = times.duration_ns(&op.gate)?;
        let start = op
            .qubits
            .iter()
            .map(|&q| qubit_free_at[q])
            .fold(0.0_f64, f64::max);
        let end = start + duration;
        for &q in &op.qubits {
            qubit_free_at[q] = end;
        }
        total = total.max(end);
        ops.push(ScheduledOp {
            op_index: i,
            start_ns: start,
            duration_ns: duration,
        });
    }
    Ok(Schedule {
        ops,
        total_ns: total,
    })
}

/// Critical-path runtime (ns) of a basis-gate circuit: the paper's "gate-based runtime".
///
/// # Panics
///
/// Panics if the circuit contains non-basis gates; use [`schedule_asap`] for a fallible
/// variant.
pub fn critical_path_ns(circuit: &Circuit, times: &GateTimes) -> f64 {
    schedule_asap(circuit, times)
        // audit:allow(unwrap): documented panicking variant; schedule_asap is the fallible API
        .expect("circuit must be decomposed to the compilation basis before timing")
        .total_ns()
}

/// Sum of all gate durations, ignoring parallelism (the serial runtime).
///
/// Useful as an upper bound and in tests: the critical path can never exceed it.
///
/// # Errors
///
/// Returns [`CircuitError::NonBasisGate`] if the circuit contains non-basis gates.
pub fn serial_duration_ns(circuit: &Circuit, times: &GateTimes) -> Result<f64, CircuitError> {
    circuit
        .iter()
        .map(|op: &GateOp| times.duration_ns(&op.gate))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamExpr;

    #[test]
    fn default_times_match_table1() {
        let t = GateTimes::default();
        assert_eq!(t.rz_ns, 0.4);
        assert_eq!(t.rx_ns, 2.5);
        assert_eq!(t.h_ns, 1.4);
        assert_eq!(t.cx_ns, 3.8);
        assert_eq!(t.swap_ns, 7.4);
    }

    #[test]
    fn serial_chain_adds_durations() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.rx(0, 1.0);
        c.rz(0, 0.5);
        let t = GateTimes::default();
        let runtime = critical_path_ns(&c, &t);
        assert!((runtime - (1.4 + 2.5 + 0.4)).abs() < 1e-12);
        assert!((serial_duration_ns(&c, &t).unwrap() - runtime).abs() < 1e-12);
    }

    #[test]
    fn parallel_gates_overlap() {
        let mut c = Circuit::new(2);
        c.rx(0, 1.0);
        c.rx(1, 1.0);
        let runtime = critical_path_ns(&c, &GateTimes::default());
        // Both Rx gates run in parallel.
        assert!((runtime - 2.5).abs() < 1e-12);
    }

    #[test]
    fn two_qubit_gate_waits_for_both_operands() {
        let mut c = Circuit::new(2);
        c.rx(0, 1.0); // qubit 0 busy until 2.5
        c.rz(1, 1.0); // qubit 1 busy until 0.4
        c.cx(0, 1); // must start at 2.5
        let schedule = schedule_asap(&c, &GateTimes::default()).unwrap();
        let cx = schedule.ops()[2];
        assert!((cx.start_ns - 2.5).abs() < 1e-12);
        assert!((schedule.total_ns() - (2.5 + 3.8)).abs() < 1e-12);
    }

    #[test]
    fn critical_path_never_exceeds_serial_time() {
        let mut c = Circuit::new(3);
        for i in 0..3 {
            c.h(i);
        }
        c.cx(0, 1);
        c.cx(1, 2);
        c.swap(0, 2);
        let t = GateTimes::default();
        assert!(critical_path_ns(&c, &t) <= serial_duration_ns(&c, &t).unwrap() + 1e-12);
    }

    #[test]
    fn non_basis_gate_is_rejected() {
        let mut c = Circuit::new(2);
        c.cz(0, 1);
        assert!(matches!(
            schedule_asap(&c, &GateTimes::default()),
            Err(CircuitError::NonBasisGate { gate: "cz" })
        ));
    }

    #[test]
    fn parameterized_basis_gates_are_timed() {
        let mut c = Circuit::new(1);
        c.rz_expr(0, ParamExpr::theta(0));
        assert!((critical_path_ns(&c, &GateTimes::default()) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_circuit_has_zero_runtime() {
        let c = Circuit::new(4);
        assert_eq!(critical_path_ns(&c, &GateTimes::default()), 0.0);
    }
}
