//! The circuit container and builder API.

use crate::{CircuitError, Gate, GateOp, ParamExpr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// An ordered sequence of gate operations on `num_qubits` qubits.
///
/// A `Circuit` is the unit of work every compilation strategy consumes. Variational
/// circuits carry symbolic [`ParamExpr`] angles; [`Circuit::bind`] substitutes a concrete
/// parameter vector to produce a fully numeric circuit.
///
/// ```
/// use vqc_circuit::{Circuit, ParamExpr};
///
/// let mut qaoa_block = Circuit::new(3);
/// qaoa_block.h(0);
/// qaoa_block.cx(0, 1);
/// qaoa_block.rz_expr(1, ParamExpr::theta(0).scaled(2.0));
/// qaoa_block.cx(0, 1);
///
/// assert_eq!(qaoa_block.len(), 4);
/// assert_eq!(qaoa_block.num_parameters(), 1);
/// let bound = qaoa_block.bind(&[0.7]);
/// assert_eq!(bound.num_parameters(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<GateOp>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits (circuit width).
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of gate operations (circuit size, not depth).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The gate operations in program order.
    pub fn ops(&self) -> &[GateOp] {
        &self.ops
    }

    /// Iterator over the gate operations in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, GateOp> {
        self.ops.iter()
    }

    /// Appends a gate operation, validating qubit indices.
    ///
    /// # Panics
    ///
    /// Panics if any operand index is out of range for this circuit's width.
    pub fn push(&mut self, op: GateOp) {
        for &q in &op.qubits {
            assert!(
                q < self.num_qubits,
                "qubit index {q} out of range for a {}-qubit circuit",
                self.num_qubits
            );
        }
        self.ops.push(op);
    }

    /// Appends a gate to the given qubits.
    pub fn add(&mut self, gate: Gate, qubits: &[usize]) {
        self.push(GateOp::new(gate, qubits.to_vec()));
    }

    /// Appends a Hadamard gate.
    pub fn h(&mut self, q: usize) {
        self.add(Gate::H, &[q]);
    }

    /// Appends a Pauli-X gate.
    pub fn x(&mut self, q: usize) {
        self.add(Gate::X, &[q]);
    }

    /// Appends a Pauli-Z gate.
    pub fn z(&mut self, q: usize) {
        self.add(Gate::Z, &[q]);
    }

    /// Appends a constant-angle Z rotation.
    pub fn rz(&mut self, q: usize, angle: f64) {
        self.add(Gate::Rz(ParamExpr::constant(angle)), &[q]);
    }

    /// Appends a Z rotation with a symbolic angle expression.
    pub fn rz_expr(&mut self, q: usize, angle: ParamExpr) {
        self.add(Gate::Rz(angle), &[q]);
    }

    /// Appends a constant-angle X rotation.
    pub fn rx(&mut self, q: usize, angle: f64) {
        self.add(Gate::Rx(ParamExpr::constant(angle)), &[q]);
    }

    /// Appends an X rotation with a symbolic angle expression.
    pub fn rx_expr(&mut self, q: usize, angle: ParamExpr) {
        self.add(Gate::Rx(angle), &[q]);
    }

    /// Appends a constant-angle Y rotation.
    pub fn ry(&mut self, q: usize, angle: f64) {
        self.add(Gate::Ry(ParamExpr::constant(angle)), &[q]);
    }

    /// Appends a Y rotation with a symbolic angle expression.
    pub fn ry_expr(&mut self, q: usize, angle: ParamExpr) {
        self.add(Gate::Ry(angle), &[q]);
    }

    /// Appends a CNOT with the given control and target.
    pub fn cx(&mut self, control: usize, target: usize) {
        self.add(Gate::Cx, &[control, target]);
    }

    /// Appends a controlled-Z gate.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.add(Gate::Cz, &[a, b]);
    }

    /// Appends a SWAP gate.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.add(Gate::Swap, &[a, b]);
    }

    /// Appends a ZZ rotation with a constant angle.
    pub fn rzz(&mut self, a: usize, b: usize, angle: f64) {
        self.add(Gate::Rzz(ParamExpr::constant(angle)), &[a, b]);
    }

    /// Appends a ZZ rotation with a symbolic angle expression.
    pub fn rzz_expr(&mut self, a: usize, b: usize, angle: ParamExpr) {
        self.add(Gate::Rzz(angle), &[a, b]);
    }

    /// Appends all operations of `other` to this circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::WidthMismatch`] if `other` is wider than this circuit.
    pub fn append(&mut self, other: &Circuit) -> Result<(), CircuitError> {
        if other.num_qubits > self.num_qubits {
            return Err(CircuitError::WidthMismatch {
                expected: self.num_qubits,
                actual: other.num_qubits,
            });
        }
        self.ops.extend(other.ops.iter().cloned());
        Ok(())
    }

    /// Set of distinct variational parameter indices referenced by the circuit.
    pub fn parameter_indices(&self) -> BTreeSet<usize> {
        self.ops.iter().filter_map(GateOp::parameter).collect()
    }

    /// Number of distinct variational parameters referenced by the circuit.
    pub fn num_parameters(&self) -> usize {
        self.parameter_indices().len()
    }

    /// Number of gate operations whose angle depends on a variational parameter.
    pub fn num_parameterized_ops(&self) -> usize {
        self.ops.iter().filter(|op| op.is_parameterized()).count()
    }

    /// The ordered list of parameter indices as they first appear in program order.
    ///
    /// Used to verify *parameter monotonicity* (Section 7.1 of the paper).
    pub fn parameter_appearance_order(&self) -> Vec<usize> {
        let mut seen = Vec::new();
        for op in &self.ops {
            if let Some(p) = op.parameter() {
                if seen.last() != Some(&p) && !seen.contains(&p) {
                    seen.push(p);
                }
            }
        }
        seen
    }

    /// Returns `true` if the parameter-dependent gates appear in monotonically
    /// non-decreasing parameter order (θ₀ gates before θ₁ gates, and so on), which is
    /// the structural property flexible partial compilation relies on.
    pub fn is_parameter_monotonic(&self) -> bool {
        let mut max_seen: Option<usize> = None;
        for op in &self.ops {
            if let Some(p) = op.parameter() {
                if let Some(m) = max_seen {
                    if p < m {
                        return false;
                    }
                }
                max_seen = Some(max_seen.map_or(p, |m| m.max(p)));
            }
        }
        true
    }

    /// Substitutes a concrete parameter vector, producing a circuit whose angles are all
    /// constants.
    ///
    /// # Panics
    ///
    /// Panics if a gate references a parameter index `>= params.len()`.
    pub fn bind(&self, params: &[f64]) -> Circuit {
        let ops = self
            .ops
            .iter()
            .map(|op| {
                let gate = match op.gate.angle() {
                    Some(expr) => op
                        .gate
                        .with_angle(ParamExpr::Constant(expr.evaluate(params))),
                    None => op.gate,
                };
                GateOp {
                    gate,
                    qubits: op.qubits.clone(),
                }
            })
            .collect();
        Circuit {
            num_qubits: self.num_qubits,
            ops,
        }
    }

    /// Returns the sub-circuit containing only the given operation indices (in order),
    /// on the same number of qubits.
    pub fn subcircuit(&self, indices: &[usize]) -> Circuit {
        let ops = indices.iter().map(|&i| self.ops[i].clone()).collect();
        Circuit {
            num_qubits: self.num_qubits,
            ops,
        }
    }

    /// Returns a circuit on `qubits.len()` qubits containing the given operations with
    /// operands re-indexed according to the position of each qubit in `qubits`.
    ///
    /// This is used when handing a ≤4-qubit block to GRAPE, which wants a compact
    /// register.
    ///
    /// # Panics
    ///
    /// Panics if an operation touches a qubit not listed in `qubits`.
    pub fn extract_on_qubits(&self, indices: &[usize], qubits: &[usize]) -> Circuit {
        let mut out = Circuit::new(qubits.len());
        for &i in indices {
            let op = &self.ops[i];
            let mapped: Vec<usize> = op
                .qubits
                .iter()
                .map(|q| {
                    qubits
                        .iter()
                        .position(|&x| x == *q)
                        // audit:allow(unwrap): the extraction set was collected from these operations' qubits
                        .expect("operation touches a qubit outside the extraction set")
                })
                .collect();
            out.push(GateOp::new(op.gate, mapped));
        }
        out
    }

    /// Counts operations per gate name, useful for reporting benchmark statistics.
    pub fn gate_counts(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for op in &self.ops {
            *counts.entry(op.gate.name()).or_insert(0) += 1;
        }
        counts
    }

    /// Fraction of gates that are parameter-dependent (the paper reports 5–8 % for
    /// VQE-UCCSD and 15–28 % for QAOA).
    pub fn parameterized_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            0.0
        } else {
            self.num_parameterized_ops() as f64 / self.ops.len() as f64
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit on {} qubits, {} ops:",
            self.num_qubits,
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a GateOp;
    type IntoIter = std::slice::Iter<'a, GateOp>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.rz_expr(1, ParamExpr::theta(0));
        c.cx(0, 1);
        c.rx_expr(2, ParamExpr::theta(1).scaled(0.5));
        c
    }

    #[test]
    fn builder_tracks_width_and_size() {
        let c = sample_circuit();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
    }

    #[test]
    fn parameters_are_discovered() {
        let c = sample_circuit();
        assert_eq!(c.num_parameters(), 2);
        assert_eq!(c.num_parameterized_ops(), 2);
        assert_eq!(c.parameter_appearance_order(), vec![0, 1]);
        assert!(c.is_parameter_monotonic());
        assert!((c.parameterized_fraction() - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn non_monotonic_parameters_detected() {
        let mut c = Circuit::new(1);
        c.rz_expr(0, ParamExpr::theta(1));
        c.rz_expr(0, ParamExpr::theta(0));
        assert!(!c.is_parameter_monotonic());
    }

    #[test]
    fn binding_replaces_all_parameters() {
        let c = sample_circuit();
        let bound = c.bind(&[0.3, 0.8]);
        assert_eq!(bound.num_parameters(), 0);
        // The rz angle must equal θ0 = 0.3.
        let rz = &bound.ops()[2];
        assert!(matches!(
            rz.gate,
            Gate::Rz(ParamExpr::Constant(v)) if (v - 0.3).abs() < 1e-12
        ));
        // The rx angle must equal θ1/2 = 0.4.
        let rx = &bound.ops()[4];
        assert!(matches!(
            rx.gate,
            Gate::Rx(ParamExpr::Constant(v)) if (v - 0.4).abs() < 1e-12
        ));
    }

    #[test]
    fn append_respects_width() {
        let mut big = Circuit::new(3);
        let small = sample_circuit();
        big.append(&small).unwrap();
        assert_eq!(big.len(), small.len());

        let mut tiny = Circuit::new(2);
        assert!(tiny.append(&small).is_err());
    }

    #[test]
    fn extract_on_qubits_reindexes() {
        let c = sample_circuit();
        // Operations 1..=3 touch qubits {0,1}.
        let block = c.extract_on_qubits(&[1, 2, 3], &[0, 1]);
        assert_eq!(block.num_qubits(), 2);
        assert_eq!(block.len(), 3);
        assert_eq!(block.ops()[0].qubits, vec![0, 1]);
        assert_eq!(block.ops()[1].qubits, vec![1]);
    }

    #[test]
    fn gate_counts_by_name() {
        let c = sample_circuit();
        let counts = c.gate_counts();
        assert_eq!(counts["cx"], 2);
        assert_eq!(counts["h"], 1);
        assert_eq!(counts["rz"], 1);
        assert_eq!(counts["rx"], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(2);
        c.h(2);
    }
}
