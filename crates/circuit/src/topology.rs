//! Device connectivity graphs.
//!
//! The paper's Appendix A models a gmon device with a rectangular-grid topology and
//! nearest-neighbour connectivity; circuits are mapped to such a topology before the
//! gate-based runtime is measured.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// An undirected device connectivity graph over `num_qubits` physical qubits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    num_qubits: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl Topology {
    /// Creates a topology from an explicit edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `>= num_qubits` or is a self-loop.
    pub fn new(num_qubits: usize, edges: &[(usize, usize)]) -> Self {
        let mut set = BTreeSet::new();
        for &(a, b) in edges {
            assert!(
                a < num_qubits && b < num_qubits,
                "edge ({a},{b}) out of range"
            );
            assert_ne!(a, b, "self-loop edges are not allowed");
            set.insert((a.min(b), a.max(b)));
        }
        Topology {
            num_qubits,
            edges: set,
        }
    }

    /// A 1-D chain `0 — 1 — 2 — … — n-1`.
    pub fn line(num_qubits: usize) -> Self {
        let edges: Vec<_> = (1..num_qubits).map(|i| (i - 1, i)).collect();
        Topology::new(num_qubits, &edges)
    }

    /// A rectangular grid with `rows x cols` qubits and nearest-neighbour connectivity,
    /// the layout assumed in Appendix A. Qubits are numbered row-major.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        Topology::new(rows * cols, &edges)
    }

    /// All-to-all connectivity (no routing needed).
    pub fn fully_connected(num_qubits: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..num_qubits {
            for b in a + 1..num_qubits {
                edges.push((a, b));
            }
        }
        Topology::new(num_qubits, &edges)
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over the edges as `(low, high)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Returns `true` if qubits `a` and `b` are directly connected.
    pub fn are_connected(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// Neighbours of a qubit.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Shortest path between two qubits (inclusive of both endpoints), by BFS.
    ///
    /// Returns `None` if the qubits are disconnected.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev = vec![usize::MAX; self.num_qubits];
        let mut visited = vec![false; self.num_qubits];
        let mut queue = VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(q) = queue.pop_front() {
            for n in self.neighbors(q) {
                if !visited[n] {
                    visited[n] = true;
                    prev[n] = q;
                    if n == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while prev[cur] != usize::MAX {
                            cur = prev[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(n);
                }
            }
        }
        None
    }

    /// Graph distance (number of edges on the shortest path), or `None` if disconnected.
    pub fn distance(&self, from: usize, to: usize) -> Option<usize> {
        self.shortest_path(from, to).map(|p| p.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_topology_connectivity() {
        let t = Topology::line(4);
        assert_eq!(t.num_edges(), 3);
        assert!(t.are_connected(0, 1));
        assert!(!t.are_connected(0, 2));
        assert_eq!(t.distance(0, 3), Some(3));
        assert_eq!(t.shortest_path(0, 3).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn grid_topology_shape() {
        let t = Topology::grid(2, 3);
        assert_eq!(t.num_qubits(), 6);
        // 2 rows x 2 horizontal edges + 3 vertical edges = 4 + 3
        assert_eq!(t.num_edges(), 7);
        assert!(t.are_connected(0, 3));
        assert!(t.are_connected(1, 2));
        assert!(!t.are_connected(0, 4));
        assert_eq!(t.distance(0, 5), Some(3));
    }

    #[test]
    fn fully_connected_needs_no_routing() {
        let t = Topology::fully_connected(5);
        assert_eq!(t.num_edges(), 10);
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    assert_eq!(t.distance(a, b), Some(1));
                }
            }
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let t = Topology::grid(2, 2);
        for (a, b) in t.edges() {
            assert!(t.neighbors(a).contains(&b));
            assert!(t.neighbors(b).contains(&a));
        }
    }

    #[test]
    fn disconnected_qubits_have_no_path() {
        let t = Topology::new(4, &[(0, 1), (2, 3)]);
        assert_eq!(t.shortest_path(0, 3), None);
        assert_eq!(t.distance(1, 2), None);
    }

    #[test]
    fn path_to_self_is_trivial() {
        let t = Topology::line(3);
        assert_eq!(t.shortest_path(1, 1).unwrap(), vec![1]);
        assert_eq!(t.distance(2, 2), Some(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Topology::new(2, &[(0, 5)]);
    }
}
