//! Symbolic parameter expressions for variational circuits.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A rotation-angle expression: either a constant or a linear function of exactly one
/// variational parameter `θᵢ`.
///
/// The paper observes (Section 7.1) that circuit construction and optimization rewrite
/// angles into forms like `−θᵢ` or `θᵢ/2`; tracking the dependence explicitly — rather
/// than trying to recover it from numeric values — is what makes parameter monotonicity
/// detectable and flexible partial compilation possible.
///
/// ```
/// use vqc_circuit::ParamExpr;
/// let half = ParamExpr::theta(3).scaled(0.5);
/// assert_eq!(half.parameter(), Some(3));
/// assert!((half.evaluate(&[0.0, 0.0, 0.0, 2.0]) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ParamExpr {
    /// A fixed angle known at circuit-construction time.
    Constant(f64),
    /// A linear function `scale · θ[index] + offset` of one variational parameter.
    Linear {
        /// Index of the variational parameter this expression depends on.
        index: usize,
        /// Multiplicative coefficient applied to the parameter.
        scale: f64,
        /// Constant additive offset.
        offset: f64,
    },
}

impl ParamExpr {
    /// The bare parameter `θ[index]`.
    pub fn theta(index: usize) -> Self {
        ParamExpr::Linear {
            index,
            scale: 1.0,
            offset: 0.0,
        }
    }

    /// A constant angle.
    pub fn constant(value: f64) -> Self {
        ParamExpr::Constant(value)
    }

    /// Index of the variational parameter this expression depends on, if any.
    pub fn parameter(&self) -> Option<usize> {
        match self {
            ParamExpr::Constant(_) => None,
            ParamExpr::Linear { index, .. } => Some(*index),
        }
    }

    /// Returns `true` if the expression depends on a variational parameter.
    pub fn is_parameterized(&self) -> bool {
        self.parameter().is_some()
    }

    /// Evaluates the expression against a full parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if the expression references a parameter index outside `params`.
    pub fn evaluate(&self, params: &[f64]) -> f64 {
        match self {
            ParamExpr::Constant(v) => *v,
            ParamExpr::Linear {
                index,
                scale,
                offset,
            } => {
                assert!(
                    *index < params.len(),
                    "parameter index {index} out of range (got {} parameters)",
                    params.len()
                );
                scale * params[*index] + offset
            }
        }
    }

    /// Returns the expression multiplied by a real factor.
    pub fn scaled(&self, k: f64) -> Self {
        match self {
            ParamExpr::Constant(v) => ParamExpr::Constant(v * k),
            ParamExpr::Linear {
                index,
                scale,
                offset,
            } => ParamExpr::Linear {
                index: *index,
                scale: scale * k,
                offset: offset * k,
            },
        }
    }

    /// Returns the negated expression.
    pub fn negated(&self) -> Self {
        self.scaled(-1.0)
    }

    /// Attempts to add two expressions, succeeding when the result is still a constant
    /// or depends on a single parameter (which is what rotation merging needs).
    ///
    /// Returns `None` when the two expressions depend on *different* parameters.
    pub fn try_add(&self, other: &ParamExpr) -> Option<ParamExpr> {
        match (self, other) {
            (ParamExpr::Constant(a), ParamExpr::Constant(b)) => Some(ParamExpr::Constant(a + b)),
            (
                ParamExpr::Constant(a),
                ParamExpr::Linear {
                    index,
                    scale,
                    offset,
                },
            ) => Some(ParamExpr::Linear {
                index: *index,
                scale: *scale,
                offset: offset + a,
            }),
            (
                ParamExpr::Linear {
                    index,
                    scale,
                    offset,
                },
                ParamExpr::Constant(b),
            ) => Some(ParamExpr::Linear {
                index: *index,
                scale: *scale,
                offset: offset + b,
            }),
            (
                ParamExpr::Linear {
                    index: i1,
                    scale: s1,
                    offset: o1,
                },
                ParamExpr::Linear {
                    index: i2,
                    scale: s2,
                    offset: o2,
                },
            ) => {
                if i1 == i2 {
                    Some(ParamExpr::Linear {
                        index: *i1,
                        scale: s1 + s2,
                        offset: o1 + o2,
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Returns `true` if the expression is the constant zero (within `tol`).
    pub fn is_zero(&self, tol: f64) -> bool {
        match self {
            ParamExpr::Constant(v) => v.abs() <= tol,
            ParamExpr::Linear { scale, offset, .. } => scale.abs() <= tol && offset.abs() <= tol,
        }
    }
}

impl Default for ParamExpr {
    fn default() -> Self {
        ParamExpr::Constant(0.0)
    }
}

impl From<f64> for ParamExpr {
    fn from(v: f64) -> Self {
        ParamExpr::Constant(v)
    }
}

impl fmt::Display for ParamExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamExpr::Constant(v) => write!(f, "{v:.4}"),
            ParamExpr::Linear {
                index,
                scale,
                offset,
            } => {
                if *offset == 0.0 {
                    if *scale == 1.0 {
                        write!(f, "θ{index}")
                    } else {
                        write!(f, "{scale:.4}·θ{index}")
                    }
                } else {
                    write!(f, "{scale:.4}·θ{index}+{offset:.4}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_constant_and_linear() {
        assert_eq!(ParamExpr::constant(1.5).evaluate(&[]), 1.5);
        let e = ParamExpr::Linear {
            index: 1,
            scale: 2.0,
            offset: -0.5,
        };
        assert_eq!(e.evaluate(&[0.0, 3.0]), 5.5);
    }

    #[test]
    fn scaling_and_negation() {
        let e = ParamExpr::theta(0).scaled(0.5);
        assert_eq!(e.evaluate(&[4.0]), 2.0);
        assert_eq!(e.negated().evaluate(&[4.0]), -2.0);
        assert_eq!(ParamExpr::constant(2.0).negated().evaluate(&[]), -2.0);
    }

    #[test]
    fn merging_same_parameter_succeeds() {
        let a = ParamExpr::theta(2);
        let b = ParamExpr::theta(2).scaled(-0.5);
        let sum = a.try_add(&b).expect("same parameter should merge");
        assert_eq!(sum.parameter(), Some(2));
        assert!((sum.evaluate(&[0.0, 0.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merging_different_parameters_fails() {
        assert!(ParamExpr::theta(0).try_add(&ParamExpr::theta(1)).is_none());
    }

    #[test]
    fn merging_with_constants() {
        let sum = ParamExpr::theta(0)
            .try_add(&ParamExpr::constant(0.25))
            .unwrap();
        assert_eq!(sum.parameter(), Some(0));
        assert!((sum.evaluate(&[1.0]) - 1.25).abs() < 1e-12);

        let sum2 = ParamExpr::constant(0.25)
            .try_add(&ParamExpr::theta(0))
            .unwrap();
        assert!((sum2.evaluate(&[1.0]) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn zero_detection() {
        assert!(ParamExpr::constant(0.0).is_zero(1e-12));
        assert!(!ParamExpr::constant(0.1).is_zero(1e-12));
        assert!(!ParamExpr::theta(0).is_zero(1e-12));
        let cancelled = ParamExpr::theta(0)
            .try_add(&ParamExpr::theta(0).negated())
            .unwrap();
        assert!(cancelled.is_zero(1e-12));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ParamExpr::theta(3).to_string(), "θ3");
        assert_eq!(ParamExpr::theta(1).scaled(0.5).to_string(), "0.5000·θ1");
    }

    #[test]
    #[should_panic(expected = "parameter index")]
    fn evaluate_out_of_range_panics() {
        ParamExpr::theta(5).evaluate(&[1.0]);
    }
}
