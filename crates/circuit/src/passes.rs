//! Circuit optimization passes.
//!
//! The paper's gate-based baseline applies IBM Qiskit's transpiler plus a custom pass
//! that merges consecutive rotations about the same axis. This module reimplements that
//! pipeline:
//!
//! * [`decompose_to_basis`] — lower convenience gates (X, Z, Ry, CZ, Rzz) to the
//!   Table-1 basis `{Rz, Rx, H, CX, SWAP}`.
//! * [`merge_rotations`] — merge adjacent same-axis rotations on the same qubit
//!   (`Rx(α)·Rx(β) → Rx(α+β)`), including symbolic angles on the same parameter.
//! * [`cancel_adjacent_pairs`] — cancel adjacent self-inverse pairs (CX·CX, H·H,
//!   SWAP·SWAP, CZ·CZ on identical operands).
//! * [`remove_zero_rotations`] — drop rotations whose angle is identically zero.
//! * [`optimize`] — run the full pipeline to a fixed point.

use crate::{Circuit, Gate, GateOp};
use std::f64::consts::{FRAC_PI_2, PI};

/// Tolerance used when deciding whether an angle is exactly zero.
const ZERO_TOL: f64 = 1e-12;

/// Lowers every gate to the Table-1 compilation basis `{Rz, Rx, H, CX, SWAP}`.
///
/// Decompositions used (in time order):
/// * `X → Rx(π)`, `Z → Rz(π)`
/// * `Ry(θ) → Rz(−π/2) · Rx(θ) · Rz(π/2)`
/// * `CZ(a,b) → H(b) · CX(a,b) · H(b)`
/// * `Rzz(θ)(a,b) → CX(a,b) · Rz(θ)(b) · CX(a,b)`
pub fn decompose_to_basis(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for op in circuit.iter() {
        match &op.gate {
            Gate::X => out.rx(op.qubits[0], PI),
            Gate::Z => out.rz(op.qubits[0], PI),
            Gate::Ry(angle) => {
                let q = op.qubits[0];
                out.rz(q, -FRAC_PI_2);
                out.rx_expr(q, *angle);
                out.rz(q, FRAC_PI_2);
            }
            Gate::Cz => {
                let (a, b) = (op.qubits[0], op.qubits[1]);
                out.h(b);
                out.cx(a, b);
                out.h(b);
            }
            Gate::Rzz(angle) => {
                let (a, b) = (op.qubits[0], op.qubits[1]);
                out.cx(a, b);
                out.rz_expr(b, *angle);
                out.cx(a, b);
            }
            _ => out.push(op.clone()),
        }
    }
    out
}

/// Returns `true` when the two gates are the same axis of rotation (both `Rz`, both
/// `Rx`, or both `Rzz`) so their angles can be summed.
fn same_rotation_axis(a: &Gate, b: &Gate) -> bool {
    matches!(
        (a, b),
        (Gate::Rz(_), Gate::Rz(_)) | (Gate::Rx(_), Gate::Rx(_)) | (Gate::Rzz(_), Gate::Rzz(_))
    )
}

/// Merges consecutive rotations about the same axis on the same qubit(s).
///
/// Two rotations merge when no other gate touches their qubits in between and their
/// angle expressions can be added symbolically (constants always merge; parameterized
/// angles merge when they reference the same θᵢ).
pub fn merge_rotations(circuit: &Circuit) -> Circuit {
    let mut ops: Vec<Option<GateOp>> = circuit.iter().cloned().map(Some).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..ops.len() {
            let Some(op) = ops[i].clone() else { continue };
            if op.gate.angle().is_none() {
                continue;
            }
            // Find the next live op touching the same qubits.
            let live: Vec<usize> = (i + 1..ops.len()).filter(|&j| ops[j].is_some()).collect();
            let mut next = None;
            for j in live {
                // audit:allow(unwrap): the index list was just filtered to live ops
                let other = ops[j].as_ref().expect("filtered to live ops");
                if op.overlaps(other) {
                    next = Some(j);
                    break;
                }
            }
            let Some(j) = next else { continue };
            // audit:allow(unwrap): next is only set to an index that held Some above
            let other = ops[j].clone().expect("index points at a live op");
            if other.qubits == op.qubits && same_rotation_axis(&op.gate, &other.gate) {
                let (Some(a), Some(b)) = (op.gate.angle(), other.gate.angle()) else {
                    continue;
                };
                if let Some(sum) = a.try_add(b) {
                    ops[i] = Some(GateOp::new(op.gate.with_angle(sum), op.qubits.clone()));
                    ops[j] = None;
                    changed = true;
                }
            }
        }
    }
    rebuild(circuit.num_qubits(), ops)
}

/// Cancels adjacent self-inverse gate pairs: `CX·CX`, `H·H`, `SWAP·SWAP`, `CZ·CZ`,
/// `X·X`, `Z·Z` acting on identical operands with nothing touching those qubits in
/// between.
pub fn cancel_adjacent_pairs(circuit: &Circuit) -> Circuit {
    let mut ops: Vec<Option<GateOp>> = circuit.iter().cloned().map(Some).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..ops.len() {
            let Some(op) = ops[i].clone() else { continue };
            let self_inverse = matches!(
                op.gate,
                Gate::Cx | Gate::H | Gate::Swap | Gate::Cz | Gate::X | Gate::Z
            );
            if !self_inverse {
                continue;
            }
            let live: Vec<usize> = (i + 1..ops.len()).filter(|&j| ops[j].is_some()).collect();
            // For a two-qubit gate the *next* op overlapping either qubit must be the
            // identical gate; for SWAP the operand order may be reversed.
            let mut blocked = false;
            let mut partner = None;
            for j in live {
                // audit:allow(unwrap): the index list was just filtered to live ops
                let other = ops[j].as_ref().expect("filtered to live ops");
                if !op.overlaps(other) {
                    continue;
                }
                let same_operands = other.qubits == op.qubits
                    || (matches!(op.gate, Gate::Swap | Gate::Cz)
                        && other.qubits.len() == 2
                        && other.qubits[0] == op.qubits[1]
                        && other.qubits[1] == op.qubits[0]);
                if other.gate == op.gate && same_operands {
                    // The partner must block *all* qubits of op: if op is two-qubit and
                    // `other` is found via only one shared qubit while the other qubit
                    // was touched earlier, overlap ordering already handled it because
                    // we scan in program order and stop at the first overlap.
                    partner = Some(j);
                } else {
                    blocked = true;
                }
                break;
            }
            if blocked {
                continue;
            }
            if let Some(j) = partner {
                ops[i] = None;
                ops[j] = None;
                changed = true;
            }
        }
    }
    rebuild(circuit.num_qubits(), ops)
}

/// Removes rotations whose angle is identically zero.
pub fn remove_zero_rotations(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for op in circuit.iter() {
        let drop = matches!(
            &op.gate,
            Gate::Rz(e) | Gate::Rx(e) | Gate::Ry(e) | Gate::Rzz(e) if e.is_zero(ZERO_TOL)
        );
        if !drop {
            out.push(op.clone());
        }
    }
    out
}

/// Runs the full optimization pipeline (decompose, then merge/cancel/remove to a fixed
/// point). This is the preparation the paper applies to every benchmark before
/// measuring its gate-based runtime.
pub fn optimize(circuit: &Circuit) -> Circuit {
    let mut current = decompose_to_basis(circuit);
    loop {
        let before = current.len();
        current = merge_rotations(&current);
        current = remove_zero_rotations(&current);
        current = cancel_adjacent_pairs(&current);
        if current.len() == before {
            return current;
        }
    }
}

fn rebuild(num_qubits: usize, ops: Vec<Option<GateOp>>) -> Circuit {
    let mut out = Circuit::new(num_qubits);
    for op in ops.into_iter().flatten() {
        out.push(op);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamExpr;

    #[test]
    fn decompose_covers_all_convenience_gates() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.z(1);
        c.ry(0, 0.7);
        c.cz(0, 1);
        c.rzz(0, 1, 0.3);
        let lowered = decompose_to_basis(&c);
        assert!(lowered.iter().all(|op| op.gate.is_basis_gate()));
        // x -> 1, z -> 1, ry -> 3, cz -> 3, rzz -> 3
        assert_eq!(lowered.len(), 11);
    }

    #[test]
    fn merge_constant_rotations() {
        let mut c = Circuit::new(1);
        c.rx(0, 0.25);
        c.rx(0, 0.50);
        let merged = merge_rotations(&c);
        assert_eq!(merged.len(), 1);
        assert!(matches!(
            merged.ops()[0].gate,
            Gate::Rx(ParamExpr::Constant(v)) if (v - 0.75).abs() < 1e-12
        ));
    }

    #[test]
    fn merge_symbolic_rotations_same_parameter() {
        let mut c = Circuit::new(1);
        c.rz_expr(0, ParamExpr::theta(2));
        c.rz_expr(0, ParamExpr::theta(2).scaled(0.5));
        let merged = merge_rotations(&c);
        assert_eq!(merged.len(), 1);
        let angle = merged.ops()[0].gate.angle().unwrap();
        assert_eq!(angle.parameter(), Some(2));
        assert!((angle.evaluate(&[0.0, 0.0, 2.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn different_parameters_do_not_merge() {
        let mut c = Circuit::new(1);
        c.rz_expr(0, ParamExpr::theta(0));
        c.rz_expr(0, ParamExpr::theta(1));
        assert_eq!(merge_rotations(&c).len(), 2);
    }

    #[test]
    fn rotation_merge_blocked_by_intervening_gate() {
        let mut c = Circuit::new(2);
        c.rx(0, 0.25);
        c.cx(0, 1);
        c.rx(0, 0.50);
        assert_eq!(merge_rotations(&c).len(), 3);
    }

    #[test]
    fn different_axes_do_not_merge() {
        let mut c = Circuit::new(1);
        c.rx(0, 0.25);
        c.rz(0, 0.50);
        assert_eq!(merge_rotations(&c).len(), 2);
    }

    #[test]
    fn cancel_cx_pairs() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.cx(0, 1);
        assert!(cancel_adjacent_pairs(&c).is_empty());
    }

    #[test]
    fn cx_with_intervening_gate_not_cancelled() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.rz(1, 0.3);
        c.cx(0, 1);
        assert_eq!(cancel_adjacent_pairs(&c).len(), 3);
    }

    #[test]
    fn cancel_h_pairs_and_swap_reversed_operands() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(0);
        c.swap(0, 1);
        c.swap(1, 0);
        assert!(cancel_adjacent_pairs(&c).is_empty());
    }

    #[test]
    fn reversed_cx_is_not_cancelled() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.cx(1, 0);
        assert_eq!(cancel_adjacent_pairs(&c).len(), 2);
    }

    #[test]
    fn zero_rotations_are_removed() {
        let mut c = Circuit::new(1);
        c.rz(0, 0.0);
        c.rx(0, 0.5);
        let out = remove_zero_rotations(&c);
        assert_eq!(out.len(), 1);
        assert_eq!(out.ops()[0].gate.name(), "rx");
    }

    #[test]
    fn optimize_reaches_fixed_point_and_preserves_parameters() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.h(0);
        c.rzz_expr(0, 1, ParamExpr::theta(0).scaled(2.0));
        c.rx(2, 0.3);
        c.rx(2, -0.3);
        let out = optimize(&c);
        // h,h cancel; rx,rx merge to zero and are removed; rzz expands to cx,rz,cx.
        assert_eq!(out.len(), 3);
        assert_eq!(out.num_parameters(), 1);
        assert!(out.iter().all(|op| op.gate.is_basis_gate()));
    }

    #[test]
    fn optimize_preserves_parameter_monotonicity() {
        let mut c = Circuit::new(2);
        for p in 0..3 {
            c.h(0);
            c.rzz_expr(0, 1, ParamExpr::theta(p));
            c.rx_expr(1, ParamExpr::theta(p).negated());
        }
        let out = optimize(&c);
        assert!(out.is_parameter_monotonic());
        assert_eq!(out.num_parameters(), 3);
    }
}
