//! Unitary matrices for every gate in the IR.

use vqc_circuit::{Gate, GateOp};
use vqc_linalg::{c64, Matrix, C64};

/// `Rz(φ) = diag(1, e^{iφ})`, the convention printed in Section 2.2 of the paper.
pub fn rz(phi: f64) -> Matrix {
    Matrix::diag(&[C64::ONE, C64::cis(phi)])
}

/// `Rx(θ) = exp(-i θ X / 2)`.
pub fn rx(theta: f64) -> Matrix {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Matrix::from_rows(&[&[c64(c, 0.0), c64(0.0, -s)], &[c64(0.0, -s), c64(c, 0.0)]])
}

/// `Ry(θ) = exp(-i θ Y / 2)`.
pub fn ry(theta: f64) -> Matrix {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Matrix::from_rows(&[&[c64(c, 0.0), c64(-s, 0.0)], &[c64(s, 0.0), c64(c, 0.0)]])
}

/// The Hadamard gate.
pub fn h() -> Matrix {
    let s = 1.0 / 2.0_f64.sqrt();
    Matrix::from_rows(&[&[c64(s, 0.0), c64(s, 0.0)], &[c64(s, 0.0), c64(-s, 0.0)]])
}

/// The Pauli-X gate.
pub fn x() -> Matrix {
    Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]])
}

/// The Pauli-Y gate.
pub fn y() -> Matrix {
    Matrix::from_rows(&[&[C64::ZERO, -C64::I], &[C64::I, C64::ZERO]])
}

/// The Pauli-Z gate.
pub fn z() -> Matrix {
    Matrix::diag(&[C64::ONE, -C64::ONE])
}

/// The 2x2 identity.
pub fn identity() -> Matrix {
    Matrix::identity(2)
}

/// CNOT with the first (most-significant) qubit as control.
pub fn cx() -> Matrix {
    let mut m = Matrix::identity(4);
    m[(2, 2)] = C64::ZERO;
    m[(3, 3)] = C64::ZERO;
    m[(2, 3)] = C64::ONE;
    m[(3, 2)] = C64::ONE;
    m
}

/// Controlled-Z.
pub fn cz() -> Matrix {
    Matrix::diag(&[C64::ONE, C64::ONE, C64::ONE, -C64::ONE])
}

/// SWAP.
pub fn swap() -> Matrix {
    let mut m = Matrix::zeros(4, 4);
    m[(0, 0)] = C64::ONE;
    m[(1, 2)] = C64::ONE;
    m[(2, 1)] = C64::ONE;
    m[(3, 3)] = C64::ONE;
    m
}

/// Two-qubit ZZ rotation `diag(1, e^{iθ}, e^{iθ}, 1)`, matching the
/// `CX · (I ⊗ Rz(θ)) · CX` decomposition used by the transpiler.
pub fn rzz(theta: f64) -> Matrix {
    let p = C64::cis(theta);
    Matrix::diag(&[C64::ONE, p, p, C64::ONE])
}

/// The unitary of a *bound* (constant-angle) gate.
///
/// # Panics
///
/// Panics if the gate still carries a symbolic parameter; call
/// [`vqc_circuit::Circuit::bind`] first.
pub fn gate_matrix(gate: &Gate) -> Matrix {
    let angle = |g: &Gate| -> f64 {
        // audit:allow(unwrap): documented panic; callers must bind symbolic parameters first
        let expr = g.angle().expect("rotation gate must carry an angle");
        assert!(
            !expr.is_parameterized(),
            "cannot build the matrix of an unbound parameterized gate; bind the circuit first"
        );
        expr.evaluate(&[])
    };
    match gate {
        Gate::Rz(_) => rz(angle(gate)),
        Gate::Rx(_) => rx(angle(gate)),
        Gate::Ry(_) => ry(angle(gate)),
        Gate::H => h(),
        Gate::X => x(),
        Gate::Z => z(),
        Gate::Cx => cx(),
        Gate::Cz => cz(),
        Gate::Swap => swap(),
        Gate::Rzz(_) => rzz(angle(gate)),
    }
}

/// The unitary of a bound gate operation (same as [`gate_matrix`], taking the op).
pub fn gate_op_matrix(op: &GateOp) -> Matrix {
    gate_matrix(&op.gate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;
    use vqc_circuit::ParamExpr;

    #[test]
    fn all_gates_are_unitary() {
        for m in [
            rz(0.7),
            rx(1.3),
            ry(-0.4),
            h(),
            x(),
            y(),
            z(),
            cx(),
            cz(),
            swap(),
            rzz(0.9),
        ] {
            assert!(m.is_unitary(1e-12), "gate is not unitary");
        }
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        assert!(rx(PI).approx_eq_up_to_phase(&x(), 1e-12));
    }

    #[test]
    fn rz_pi_is_z_up_to_phase() {
        assert!(rz(PI).approx_eq_up_to_phase(&z(), 1e-12));
    }

    #[test]
    fn hadamard_squares_to_identity() {
        assert!(h().matmul(&h()).approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn cx_flips_target_when_control_set() {
        let m = cx();
        // |10> (index 2) -> |11> (index 3)
        assert_eq!(m[(3, 2)], C64::ONE);
        // |00> unchanged.
        assert_eq!(m[(0, 0)], C64::ONE);
    }

    #[test]
    fn rzz_matches_cx_rz_cx() {
        let theta = 0.83;
        let composed = cx()
            .matmul(&Matrix::identity(2).kron(&rz(theta)))
            .matmul(&cx());
        assert!(rzz(theta).approx_eq(&composed, 1e-12));
    }

    #[test]
    fn cz_matches_h_cx_h() {
        let eye_h = Matrix::identity(2).kron(&h());
        let composed = eye_h.matmul(&cx()).matmul(&eye_h);
        assert!(cz().approx_eq(&composed, 1e-12));
    }

    #[test]
    fn ry_decomposition_matches_passes() {
        // passes::decompose_to_basis lowers Ry(θ) to (time order) Rz(-π/2), Rx(θ), Rz(π/2);
        // as a matrix product that is Rz(π/2)·Rx(θ)·Rz(-π/2).
        let theta = 1.1;
        let composed = rz(PI / 2.0).matmul(&rx(theta)).matmul(&rz(-PI / 2.0));
        assert!(composed.approx_eq_up_to_phase(&ry(theta), 1e-12));
    }

    #[test]
    #[should_panic(expected = "bind the circuit first")]
    fn unbound_gate_matrix_panics() {
        gate_matrix(&Gate::Rz(ParamExpr::theta(0)));
    }
}
