//! Pauli-string operators and expectation values.
//!
//! VQE measures the energy `⟨ψ(θ)| H |ψ(θ)⟩` of a molecular Hamiltonian expressed as a
//! weighted sum of Pauli strings; QAOA measures a MAXCUT cost Hamiltonian of `Z·Z`
//! terms. Both are represented here as a [`PauliOperator`].

use crate::gates;
use crate::StateVector;
use serde::{Deserialize, Serialize};
use std::fmt;
use vqc_linalg::Matrix;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl Pauli {
    /// The 2x2 matrix of this Pauli.
    pub fn matrix(self) -> Matrix {
        match self {
            Pauli::I => Matrix::identity(2),
            Pauli::X => gates::x(),
            Pauli::Y => gates::y(),
            Pauli::Z => gates::z(),
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// A tensor product of single-qubit Paulis, one per qubit (qubit 0 first).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PauliString {
    paulis: Vec<Pauli>,
}

impl PauliString {
    /// Creates a Pauli string from one Pauli per qubit.
    pub fn new(paulis: Vec<Pauli>) -> Self {
        PauliString { paulis }
    }

    /// The all-identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            paulis: vec![Pauli::I; n],
        }
    }

    /// Creates the string with a single non-identity Pauli `p` on `qubit`.
    pub fn single(n: usize, qubit: usize, p: Pauli) -> Self {
        let mut paulis = vec![Pauli::I; n];
        paulis[qubit] = p;
        PauliString { paulis }
    }

    /// Creates the two-qubit string `Z_a Z_b` used by MAXCUT cost Hamiltonians.
    pub fn zz(n: usize, a: usize, b: usize) -> Self {
        let mut paulis = vec![Pauli::I; n];
        paulis[a] = Pauli::Z;
        paulis[b] = Pauli::Z;
        PauliString { paulis }
    }

    /// Parses a string like `"XIZY"` (qubit 0 first).
    ///
    /// # Panics
    ///
    /// Panics on characters outside `IXYZ`.
    pub fn parse(s: &str) -> Self {
        let paulis = s
            .chars()
            .map(|c| match c {
                'I' | 'i' => Pauli::I,
                'X' | 'x' => Pauli::X,
                'Y' | 'y' => Pauli::Y,
                'Z' | 'z' => Pauli::Z,
                other => panic!("invalid Pauli character '{other}'"),
            })
            .collect();
        PauliString { paulis }
    }

    /// Number of qubits the string acts on.
    pub fn num_qubits(&self) -> usize {
        self.paulis.len()
    }

    /// The per-qubit Paulis.
    pub fn paulis(&self) -> &[Pauli] {
        &self.paulis
    }

    /// Number of non-identity factors (the string's weight).
    pub fn weight(&self) -> usize {
        self.paulis.iter().filter(|p| **p != Pauli::I).count()
    }

    /// Applies the string to a state (in place).
    pub fn apply(&self, state: &mut StateVector) {
        assert_eq!(
            self.num_qubits(),
            state.num_qubits(),
            "Pauli string width must match the state"
        );
        for (q, p) in self.paulis.iter().enumerate() {
            if *p != Pauli::I {
                state.apply_one_qubit(&p.matrix(), q);
            }
        }
    }

    /// Dense matrix of the string (small qubit counts only).
    pub fn matrix(&self) -> Matrix {
        let mut m = Matrix::identity(1);
        for p in &self.paulis {
            m = m.kron(&p.matrix());
        }
        m
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.paulis {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

/// A Hermitian operator expressed as a real-weighted sum of Pauli strings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PauliOperator {
    num_qubits: usize,
    terms: Vec<(f64, PauliString)>,
}

impl PauliOperator {
    /// Creates an empty (zero) operator on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        PauliOperator {
            num_qubits,
            terms: Vec::new(),
        }
    }

    /// Adds a weighted Pauli-string term.
    ///
    /// # Panics
    ///
    /// Panics if the string width does not match the operator width.
    pub fn add_term(&mut self, coefficient: f64, string: PauliString) {
        assert_eq!(string.num_qubits(), self.num_qubits, "term width mismatch");
        self.terms.push((coefficient, string));
    }

    /// Builder-style variant of [`PauliOperator::add_term`].
    pub fn with_term(mut self, coefficient: f64, string: PauliString) -> Self {
        self.add_term(coefficient, string);
        self
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The weighted terms.
    pub fn terms(&self) -> &[(f64, PauliString)] {
        &self.terms
    }

    /// Number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Expectation value `⟨ψ| H |ψ⟩` against a pure state.
    ///
    /// # Panics
    ///
    /// Panics if the state width does not match the operator width.
    pub fn expectation(&self, state: &StateVector) -> f64 {
        assert_eq!(state.num_qubits(), self.num_qubits, "state width mismatch");
        let mut total = 0.0;
        for (coeff, string) in &self.terms {
            let mut transformed = state.clone();
            string.apply(&mut transformed);
            total += coeff * state.inner(&transformed).re;
        }
        total
    }

    /// Dense matrix of the operator (small qubit counts only).
    pub fn matrix(&self) -> Matrix {
        let dim = 1usize << self.num_qubits;
        let mut m = Matrix::zeros(dim, dim);
        for (coeff, string) in &self.terms {
            m = &m + &string.matrix().scale_real(*coeff);
        }
        m
    }

    /// Minimum eigenvalue estimated by dense diagonalization-free power iteration on
    /// `(c·I − H)`; used in tests and examples to know the true ground-state energy of
    /// small Hamiltonians.
    ///
    /// The shift `c` is chosen from the operator's 1-norm so that `c·I − H` is positive
    /// semi-definite; repeated multiplication then converges to the largest eigenvalue
    /// of the shifted operator, i.e. the smallest eigenvalue of `H`.
    pub fn min_eigenvalue(&self, iterations: usize) -> f64 {
        let m = self.matrix();
        let dim = m.rows();
        let shift: f64 = self.terms.iter().map(|(c, _)| c.abs()).sum::<f64>() + 1.0;
        let shifted = &Matrix::identity(dim).scale_real(shift) - &m;
        // Power iteration with a deterministic, dense starting vector.
        let mut v = vqc_linalg::Vector::from_vec(
            (0..dim)
                .map(|i| vqc_linalg::c64(1.0 + (i as f64 * 0.37).sin(), (i as f64 * 0.73).cos()))
                .collect(),
        );
        v.normalize();
        let mut eigenvalue = 0.0;
        for _ in 0..iterations {
            let w = shifted.matvec(&v);
            eigenvalue = v.inner(&w).re;
            v = w;
            v.normalize();
        }
        shift - eigenvalue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqc_circuit::Circuit;

    #[test]
    fn z_expectation_on_basis_states() {
        let h = PauliOperator::new(1).with_term(1.0, PauliString::single(1, 0, Pauli::Z));
        let zero = StateVector::zero_state(1);
        assert!((h.expectation(&zero) - 1.0).abs() < 1e-12);

        let mut c = Circuit::new(1);
        c.x(0);
        let one = StateVector::from_circuit(&c);
        assert!((h.expectation(&one) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let h = PauliOperator::new(1).with_term(1.0, PauliString::single(1, 0, Pauli::X));
        let mut c = Circuit::new(1);
        c.h(0);
        let plus = StateVector::from_circuit(&c);
        assert!((h.expectation(&plus) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zz_expectation_on_bell_state() {
        let h = PauliOperator::new(2).with_term(1.0, PauliString::zz(2, 0, 1));
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let bell = StateVector::from_circuit(&c);
        // Bell state is a +1 eigenstate of ZZ.
        assert!((h.expectation(&bell) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn operator_matrix_is_hermitian() {
        let h = PauliOperator::new(2)
            .with_term(0.5, PauliString::parse("XY"))
            .with_term(-1.25, PauliString::parse("ZI"))
            .with_term(0.75, PauliString::parse("ZZ"));
        assert!(h.matrix().is_hermitian(1e-12));
    }

    #[test]
    fn expectation_matches_matrix_form() {
        let h = PauliOperator::new(2)
            .with_term(0.7, PauliString::parse("XX"))
            .with_term(-0.3, PauliString::parse("ZI"))
            .with_term(0.2, PauliString::parse("IZ"));
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.rz(1, 0.4);
        let state = StateVector::from_circuit(&c);
        let via_terms = h.expectation(&state);
        let via_matrix = {
            let transformed = h.matrix().matvec(state.amplitudes());
            state.amplitudes().inner(&transformed).re
        };
        assert!((via_terms - via_matrix).abs() < 1e-10);
    }

    #[test]
    fn min_eigenvalue_of_z_is_minus_one() {
        let h = PauliOperator::new(1).with_term(1.0, PauliString::single(1, 0, Pauli::Z));
        let min = h.min_eigenvalue(200);
        assert!((min + 1.0).abs() < 1e-6, "got {min}");
    }

    #[test]
    fn string_weight_and_parse() {
        let s = PauliString::parse("XIZY");
        assert_eq!(s.num_qubits(), 4);
        assert_eq!(s.weight(), 3);
        assert_eq!(s.to_string(), "XIZY");
        assert_eq!(PauliString::identity(3).weight(), 0);
    }

    #[test]
    #[should_panic(expected = "term width mismatch")]
    fn mismatched_term_width_panics() {
        PauliOperator::new(2).add_term(1.0, PauliString::identity(3));
    }
}
