//! State-vector simulation.

use crate::gates::gate_op_matrix;
use vqc_circuit::{Circuit, GateOp};
use vqc_linalg::{Matrix, Vector, C64};

/// A pure quantum state on `n` qubits, stored as a dense vector of `2^n` amplitudes.
///
/// Qubit 0 is the most-significant bit of a basis-state index.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amplitudes: Vector,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩` on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` exceeds 24 (the dense representation would not fit in
    /// memory long before that, but the explicit cap gives a clear failure).
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= 24,
            "dense state-vector simulation capped at 24 qubits"
        );
        StateVector {
            num_qubits,
            amplitudes: Vector::basis_state(1 << num_qubits, 0),
        }
    }

    /// Builds a state from explicit amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amplitudes: Vector) -> Self {
        let len = amplitudes.len();
        assert!(
            len.is_power_of_two(),
            "amplitude count must be a power of two"
        );
        StateVector {
            num_qubits: len.trailing_zeros() as usize,
            amplitudes,
        }
    }

    /// Simulates a bound circuit starting from `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the circuit still contains unbound parameters.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut state = StateVector::zero_state(circuit.num_qubits());
        state.apply_circuit(circuit);
        state
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Dimension `2^n` of the state.
    pub fn dim(&self) -> usize {
        self.amplitudes.len()
    }

    /// The underlying amplitude vector.
    pub fn amplitudes(&self) -> &Vector {
        &self.amplitudes
    }

    /// Probability of measuring the computational basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amplitudes.probability(index)
    }

    /// All basis-state probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amplitudes.probabilities()
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner(&self, other: &StateVector) -> C64 {
        self.amplitudes.inner(&other.amplitudes)
    }

    /// Applies every gate of a bound circuit in program order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit width exceeds the state width or contains unbound
    /// parameters.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(
            circuit.num_qubits() <= self.num_qubits,
            "circuit is wider than the state"
        );
        for op in circuit.iter() {
            self.apply_op(op);
        }
    }

    /// Applies a single bound gate operation.
    pub fn apply_op(&mut self, op: &GateOp) {
        let matrix = gate_op_matrix(op);
        match op.qubits.len() {
            1 => self.apply_one_qubit(&matrix, op.qubits[0]),
            2 => self.apply_two_qubit(&matrix, op.qubits[0], op.qubits[1]),
            _ => unreachable!("gates act on at most two qubits"),
        }
    }

    /// Applies an arbitrary 2x2 unitary to the given qubit.
    pub fn apply_one_qubit(&mut self, gate: &Matrix, qubit: usize) {
        assert_eq!(gate.shape(), (2, 2), "one-qubit gate must be 2x2");
        assert!(qubit < self.num_qubits, "qubit index out of range");
        let bit = 1usize << (self.num_qubits - 1 - qubit);
        let amps = self.amplitudes.as_mut_slice();
        for base in 0..amps.len() {
            if base & bit != 0 {
                continue;
            }
            let i0 = base;
            let i1 = base | bit;
            let a0 = amps[i0];
            let a1 = amps[i1];
            amps[i0] = gate[(0, 0)] * a0 + gate[(0, 1)] * a1;
            amps[i1] = gate[(1, 0)] * a0 + gate[(1, 1)] * a1;
        }
    }

    /// Applies an arbitrary 4x4 unitary to the ordered qubit pair `(q0, q1)`,
    /// where `q0` is the first (most-significant) operand of the gate matrix.
    pub fn apply_two_qubit(&mut self, gate: &Matrix, q0: usize, q1: usize) {
        assert_eq!(gate.shape(), (4, 4), "two-qubit gate must be 4x4");
        assert!(
            q0 < self.num_qubits && q1 < self.num_qubits,
            "qubit index out of range"
        );
        assert_ne!(q0, q1, "two-qubit gate operands must be distinct");
        let bit0 = 1usize << (self.num_qubits - 1 - q0);
        let bit1 = 1usize << (self.num_qubits - 1 - q1);
        let amps = self.amplitudes.as_mut_slice();
        for base in 0..amps.len() {
            if base & bit0 != 0 || base & bit1 != 0 {
                continue;
            }
            let idx = [base, base | bit1, base | bit0, base | bit0 | bit1];
            let old = [amps[idx[0]], amps[idx[1]], amps[idx[2]], amps[idx[3]]];
            for (row, &target) in idx.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (col, &value) in old.iter().enumerate() {
                    acc += gate[(row, col)] * value;
                }
                amps[target] = acc;
            }
        }
    }

    /// Samples `shots` measurement outcomes in the computational basis using the
    /// supplied uniform random values in `[0, 1)` (one per shot).
    ///
    /// Taking the randomness as input keeps this crate free of RNG dependencies and the
    /// results reproducible.
    pub fn sample_with(&self, uniform_draws: &[f64]) -> Vec<usize> {
        let probs = self.probabilities();
        uniform_draws
            .iter()
            .map(|&u| {
                let mut acc = 0.0;
                for (i, p) in probs.iter().enumerate() {
                    acc += p;
                    if u < acc {
                        return i;
                    }
                }
                probs.len() - 1
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use std::f64::consts::PI;
    use vqc_circuit::Circuit;

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero_state(3);
        assert_eq!(s.dim(), 8);
        assert!((s.probability(0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn x_flips_qubit_zero_into_high_bit() {
        let mut s = StateVector::zero_state(2);
        s.apply_one_qubit(&gates::x(), 0);
        // Qubit 0 is the most significant bit: |10> = index 2.
        assert!((s.probability(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_flips_qubit_one_into_low_bit() {
        let mut s = StateVector::zero_state(2);
        s.apply_one_qubit(&gates::x(), 1);
        assert!((s.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let s = StateVector::from_circuit(&c);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(3) - 0.5).abs() < 1e-12);
        assert!(s.probability(1) < 1e-12);
        assert!(s.probability(2) < 1e-12);
    }

    #[test]
    fn ghz_state_on_four_qubits() {
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        c.cx(2, 3);
        let s = StateVector::from_circuit(&c);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(15) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.swap(0, 1);
        let s = StateVector::from_circuit(&c);
        // |10> swapped -> |01> = index 1.
        assert!((s.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_produces_expected_population() {
        let mut c = Circuit::new(1);
        c.rx(0, PI / 2.0);
        let s = StateVector::from_circuit(&c);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn circuit_preserves_norm() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.rz(1, 0.3);
        c.rx(2, 1.2);
        c.cz(1, 2);
        c.swap(0, 2);
        let s = StateVector::from_circuit(&c);
        let total: f64 = s.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_probabilities() {
        let mut c = Circuit::new(1);
        c.x(0);
        let s = StateVector::from_circuit(&c);
        let outcomes = s.sample_with(&[0.1, 0.5, 0.99]);
        assert_eq!(outcomes, vec![1, 1, 1]);
    }

    #[test]
    fn control_ordering_matters() {
        // CX with control=1, target=0 acting on |01> (qubit 1 set) flips qubit 0.
        let mut c = Circuit::new(2);
        c.x(1);
        c.cx(1, 0);
        let s = StateVector::from_circuit(&c);
        assert!((s.probability(3) - 1.0).abs() < 1e-12);
    }
}
