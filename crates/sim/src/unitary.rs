//! Building the full unitary matrix of a (sub)circuit.
//!
//! GRAPE consumes a target unitary, not a gate list (Section 5 of the paper). The
//! blocking pass in `vqc-core` keeps subcircuits at ≤ 4 qubits precisely so these
//! matrices stay small (16x16).

use crate::gates::gate_op_matrix;
use crate::StateVector;
use vqc_circuit::{Circuit, GateOp};
use vqc_linalg::{Matrix, Vector};

/// Maximum width for which we will materialize a dense circuit unitary.
///
/// `2^12 x 2^12` is already 134 M complex entries; anything larger is a usage error.
pub const MAX_UNITARY_QUBITS: usize = 12;

/// Computes the `2^n x 2^n` unitary implemented by a bound circuit.
///
/// The unitary is assembled column-by-column by simulating the circuit on each
/// computational basis state, which costs `O(4^n · gates)` — fine for the ≤4-qubit
/// blocks handed to GRAPE and for verification of small benchmark circuits.
///
/// # Panics
///
/// Panics if the circuit is wider than [`MAX_UNITARY_QUBITS`] or contains unbound
/// parameters.
pub fn circuit_unitary(circuit: &Circuit) -> Matrix {
    let n = circuit.num_qubits();
    assert!(
        n <= MAX_UNITARY_QUBITS,
        "refusing to build a dense unitary for {n} qubits (max {MAX_UNITARY_QUBITS})"
    );
    let dim = 1usize << n;
    let mut out = Matrix::zeros(dim, dim);
    for col in 0..dim {
        let mut state = StateVector::from_amplitudes(Vector::basis_state(dim, col));
        state.apply_circuit(circuit);
        for row in 0..dim {
            out[(row, col)] = state.amplitudes().get(row);
        }
    }
    out
}

/// Computes the full-register unitary of a single bound gate operation embedded in an
/// `n`-qubit register.
///
/// # Panics
///
/// Panics if `n` exceeds [`MAX_UNITARY_QUBITS`] or operands are out of range.
pub fn gate_op_unitary(op: &GateOp, num_qubits: usize) -> Matrix {
    assert!(num_qubits <= MAX_UNITARY_QUBITS);
    let dim = 1usize << num_qubits;
    let small = gate_op_matrix(op);
    let mut out = Matrix::zeros(dim, dim);
    for col in 0..dim {
        let mut state = StateVector::from_amplitudes(Vector::basis_state(dim, col));
        match op.qubits.len() {
            1 => state.apply_one_qubit(&small, op.qubits[0]),
            2 => state.apply_two_qubit(&small, op.qubits[0], op.qubits[1]),
            _ => unreachable!("gates act on at most two qubits"),
        }
        for row in 0..dim {
            out[(row, col)] = state.amplitudes().get(row);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use vqc_circuit::{Circuit, Gate};

    #[test]
    fn empty_circuit_is_identity() {
        let c = Circuit::new(3);
        assert!(circuit_unitary(&c).approx_eq(&Matrix::identity(8), 1e-12));
    }

    #[test]
    fn single_gate_circuit_matches_gate_matrix() {
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(circuit_unitary(&c).approx_eq(&gates::h(), 1e-12));
    }

    #[test]
    fn two_qubit_circuit_matches_kron_composition() {
        // H on qubit 0 then CX(0,1): U = CX · (H ⊗ I).
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let expected = gates::cx().matmul(&gates::h().kron(&Matrix::identity(2)));
        assert!(circuit_unitary(&c).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn program_order_is_right_to_left_matrix_order() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.z(0);
        // Time order H then Z  =>  matrix Z · H.
        let expected = gates::z().matmul(&gates::h());
        assert!(circuit_unitary(&c).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn circuit_unitary_is_unitary() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.rz(1, 0.7);
        c.cz(1, 2);
        c.rx(2, 1.1);
        c.swap(0, 2);
        assert!(circuit_unitary(&c).is_unitary(1e-10));
    }

    #[test]
    fn gate_op_unitary_embeds_correctly() {
        let op = vqc_circuit::GateOp::new(Gate::X, vec![1]);
        let u = gate_op_unitary(&op, 2);
        // I ⊗ X
        let expected = Matrix::identity(2).kron(&gates::x());
        assert!(u.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn gate_op_unitary_for_non_adjacent_qubits() {
        // CX with control qubit 2, target qubit 0 on a 3-qubit register.
        let op = vqc_circuit::GateOp::new(Gate::Cx, vec![2, 0]);
        let u = gate_op_unitary(&op, 3);
        assert!(u.is_unitary(1e-12));
        // |001> (control set) must map to |101>.
        assert!((u[(0b101, 0b001)].abs() - 1.0).abs() < 1e-12);
        // |000> unchanged.
        assert!((u[(0b000, 0b000)].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decomposed_circuits_preserve_unitary_up_to_phase() {
        use vqc_circuit::passes::decompose_to_basis;
        let mut c = Circuit::new(2);
        c.ry(0, 0.9);
        c.cz(0, 1);
        c.rzz(0, 1, 1.3);
        c.x(1);
        let lowered = decompose_to_basis(&c);
        let u1 = circuit_unitary(&c);
        let u2 = circuit_unitary(&lowered);
        assert!(u1.approx_eq_up_to_phase(&u2, 1e-10));
    }

    #[test]
    #[should_panic(expected = "refusing to build")]
    fn oversized_unitary_is_rejected() {
        circuit_unitary(&Circuit::new(13));
    }
}
