//! Unitary and state-vector simulation of quantum circuits.
//!
//! The partial-compilation pipeline needs two things from a simulator:
//!
//! 1. **Target unitaries for GRAPE** — every subcircuit handed to the pulse optimizer
//!    must first be turned into its `2^n x 2^n` unitary matrix ([`circuit_unitary`]).
//! 2. **Expectation values for the variational loop** — running VQE/QAOA end-to-end
//!    (as the examples do) requires simulating the ansatz state and measuring a
//!    [`PauliOperator`] Hamiltonian against it ([`StateVector`]).
//!
//! Gate-matrix conventions: `Rz(φ) = diag(1, e^{iφ})` (as printed in the paper),
//! `Rx(θ) = exp(-i θ X / 2)`, `CX` with the first operand as control. Qubit 0 is the
//! most-significant bit of a basis-state index, matching the Kronecker-product order
//! `q0 ⊗ q1 ⊗ …`.
//!
//! # Example
//!
//! ```
//! use vqc_circuit::Circuit;
//! use vqc_sim::{StateVector, circuit_unitary};
//!
//! // Bell state preparation.
//! let mut c = Circuit::new(2);
//! c.h(0);
//! c.cx(0, 1);
//!
//! let state = StateVector::from_circuit(&c);
//! assert!((state.probability(0b00) - 0.5).abs() < 1e-12);
//! assert!((state.probability(0b11) - 0.5).abs() < 1e-12);
//!
//! let u = circuit_unitary(&c);
//! assert!(u.is_unitary(1e-10));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gates;
pub mod pauli;
mod statevector;
mod unitary;

pub use pauli::{Pauli, PauliOperator, PauliString};
pub use statevector::StateVector;
pub use unitary::{circuit_unitary, gate_op_unitary};
