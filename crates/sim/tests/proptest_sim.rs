//! Property-based tests for the simulator: unitarity, norm preservation, and agreement
//! between the state-vector and dense-unitary code paths.

use proptest::prelude::*;
use vqc_circuit::passes::{decompose_to_basis, optimize};
use vqc_circuit::{Circuit, ParamExpr};
use vqc_linalg::fidelity::trace_fidelity;
use vqc_sim::{circuit_unitary, PauliOperator, PauliString, StateVector};

#[derive(Debug, Clone)]
enum Instr {
    H(usize),
    RxConst(usize, f64),
    RzConst(usize, f64),
    Ry(usize, f64),
    Cx(usize, usize),
    Cz(usize, usize),
    Swap(usize, usize),
    Rzz(usize, usize, f64),
}

fn arb_instr(n: usize) -> impl Strategy<Value = Instr> {
    let q = 0..n;
    let q2 = (0..n, 0..n).prop_filter("distinct", |(a, b)| a != b);
    prop_oneof![
        q.clone().prop_map(Instr::H),
        (q.clone(), -3.0..3.0f64).prop_map(|(a, v)| Instr::RxConst(a, v)),
        (q.clone(), -3.0..3.0f64).prop_map(|(a, v)| Instr::RzConst(a, v)),
        (q, -3.0..3.0f64).prop_map(|(a, v)| Instr::Ry(a, v)),
        q2.clone().prop_map(|(a, b)| Instr::Cx(a, b)),
        q2.clone().prop_map(|(a, b)| Instr::Cz(a, b)),
        q2.clone().prop_map(|(a, b)| Instr::Swap(a, b)),
        (q2, -3.0..3.0f64).prop_map(|((a, b), v)| Instr::Rzz(a, b, v)),
    ]
}

fn build(n: usize, instrs: &[Instr]) -> Circuit {
    let mut c = Circuit::new(n);
    for i in instrs {
        match *i {
            Instr::H(a) => c.h(a),
            Instr::RxConst(a, v) => c.rx(a, v),
            Instr::RzConst(a, v) => c.rz(a, v),
            Instr::Ry(a, v) => c.ry(a, v),
            Instr::Cx(a, b) => c.cx(a, b),
            Instr::Cz(a, b) => c.cz(a, b),
            Instr::Swap(a, b) => c.swap(a, b),
            Instr::Rzz(a, b, v) => c.rzz(a, b, v),
        }
    }
    c
}

fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_instr(n), 0..max_len).prop_map(move |instrs| build(n, &instrs))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn circuit_unitaries_are_unitary(c in arb_circuit(3, 20)) {
        prop_assert!(circuit_unitary(&c).is_unitary(1e-9));
    }

    #[test]
    fn statevector_matches_unitary_column(c in arb_circuit(3, 20)) {
        let u = circuit_unitary(&c);
        let state = StateVector::from_circuit(&c);
        // The state from |000> must equal the first column of the unitary.
        for row in 0..u.rows() {
            prop_assert!((u[(row, 0)] - state.amplitudes().get(row)).abs() < 1e-9);
        }
    }

    #[test]
    fn simulation_preserves_norm(c in arb_circuit(4, 25)) {
        let state = StateVector::from_circuit(&c);
        let total: f64 = state.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn decomposition_to_basis_preserves_semantics(c in arb_circuit(3, 15)) {
        let u1 = circuit_unitary(&c);
        let u2 = circuit_unitary(&decompose_to_basis(&c));
        prop_assert!(trace_fidelity(&u1, &u2) > 1.0 - 1e-8);
    }

    #[test]
    fn optimization_preserves_semantics(c in arb_circuit(3, 15)) {
        let u1 = circuit_unitary(&decompose_to_basis(&c));
        let u2 = circuit_unitary(&optimize(&c));
        prop_assert!(trace_fidelity(&u1, &u2) > 1.0 - 1e-8);
    }

    #[test]
    fn pauli_expectations_are_real_and_bounded(c in arb_circuit(3, 15)) {
        let h = PauliOperator::new(3)
            .with_term(1.0, PauliString::parse("ZZI"))
            .with_term(1.0, PauliString::parse("IZZ"))
            .with_term(0.5, PauliString::parse("XII"));
        let state = StateVector::from_circuit(&c);
        let e = h.expectation(&state);
        // |<H>| is bounded by the sum of |coefficients|.
        prop_assert!(e.abs() <= 2.5 + 1e-9);
    }

    #[test]
    fn binding_then_simulating_is_consistent(
        params in prop::collection::vec(-3.0..3.0f64, 2),
    ) {
        // A small parameterized circuit evaluated two ways: bind-then-simulate must equal
        // simulating a circuit built directly with the numeric angles.
        let mut sym = Circuit::new(2);
        sym.h(0);
        sym.rz_expr(0, ParamExpr::theta(0));
        sym.cx(0, 1);
        sym.rx_expr(1, ParamExpr::theta(1).scaled(0.5));
        let bound = sym.bind(&params);

        let mut direct = Circuit::new(2);
        direct.h(0);
        direct.rz(0, params[0]);
        direct.cx(0, 1);
        direct.rx(1, params[1] * 0.5);

        let s1 = StateVector::from_circuit(&bound);
        let s2 = StateVector::from_circuit(&direct);
        prop_assert!((s1.inner(&s2).abs() - 1.0).abs() < 1e-9);
    }
}
