//! The pulse library: a cache of GRAPE results keyed by block content.
//!
//! Strict partial compilation's whole point is that Fixed blocks can be compiled once
//! and looked up forever after; and even for full GRAPE, identical blocks recur both
//! within a circuit (repeated QAOA rounds) and across variational iterations. The
//! library is shared behind a mutex so the benchmark harness can compile blocks from
//! multiple worker threads.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use vqc_circuit::Circuit;
use vqc_pulse::{SeedEntry, TableConfig, TranspositionTable, WarmStartStats};

/// A canonical fingerprint of a (bound or structural) block circuit.
///
/// Two blocks with the same key are guaranteed to have the same gates on the same
/// local qubit indices with the same angles (rounded to 10⁻⁹), so a cached compilation
/// result can be reused.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockKey(String);

impl BlockKey {
    /// Builds the key of a *bound* block circuit (angles included).
    pub fn from_bound_circuit(circuit: &Circuit) -> Self {
        let mut key = format!("q{}|", circuit.num_qubits());
        for op in circuit.iter() {
            key.push_str(op.gate.name());
            for q in &op.qubits {
                key.push_str(&format!(",{q}"));
            }
            if let Some(angle) = op.gate.angle() {
                if angle.is_parameterized() {
                    // audit:allow(unwrap): guarded by angle.is_parameterized() on the line above
                    key.push_str(&format!("[θ{}]", angle.parameter().expect("parameterized")));
                } else {
                    key.push_str(&format!("[{:.9}]", angle.evaluate(&[])));
                }
            }
            key.push(';');
        }
        BlockKey(key)
    }

    /// The qubit count encoded in the key's `q{n}|` prefix (0 if the key is
    /// malformed). Both bound and structural keys carry it, so cache layers can
    /// estimate a cached entry's recompute cost (which scales as `dim³ = 8ⁿ`) without
    /// access to the originating circuit.
    pub fn num_qubits(&self) -> usize {
        let digits = self
            .0
            .strip_prefix("s|")
            .unwrap_or(&self.0)
            .strip_prefix('q')
            .and_then(|rest| rest.split('|').next());
        digits.and_then(|d| d.parse().ok()).unwrap_or(0)
    }

    /// Builds a *structural* key that ignores the numeric values of parameterized
    /// angles (but keeps constant angles). Used to cache per-subcircuit hyperparameters
    /// and minimum durations, which the paper observes are robust to the θ argument.
    pub fn structural(circuit: &Circuit) -> Self {
        let mut key = format!("s|q{}|", circuit.num_qubits());
        for op in circuit.iter() {
            key.push_str(op.gate.name());
            for q in &op.qubits {
                key.push_str(&format!(",{q}"));
            }
            if let Some(angle) = op.gate.angle() {
                if angle.is_parameterized() {
                    key.push_str("[θ]");
                } else {
                    key.push_str(&format!("[{:.9}]", angle.evaluate(&[])));
                }
            }
            key.push(';');
        }
        BlockKey(key)
    }
}

/// A cached block compilation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedBlock {
    /// Minimum pulse duration found for the block, in nanoseconds.
    pub duration_ns: f64,
    /// Whether GRAPE converged (if not, `duration_ns` is the gate-based fallback).
    pub converged: bool,
    /// Total GRAPE iterations that were spent producing this entry.
    pub grape_iterations: usize,
}

/// A cached flexible-compilation precompute result: tuned hyperparameters plus the
/// minimum block duration found with them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedTuning {
    /// Tuned ADAM learning rate.
    pub learning_rate: f64,
    /// Tuned learning-rate decay.
    pub decay_rate: f64,
    /// Minimum pulse duration found for the subcircuit (ns).
    pub duration_ns: f64,
    /// Whether the tuned GRAPE converged at `duration_ns`.
    pub converged: bool,
    /// GRAPE iterations spent during tuning and duration search (pre-compute latency).
    pub precompute_iterations: usize,
    /// GRAPE iterations one runtime compilation needs with the tuned hyperparameters.
    pub runtime_iterations: usize,
}

/// The storage interface behind the compiler's block/tuning caches.
///
/// [`PulseLibrary`] is the in-process reference implementation; `vqc-runtime`
/// provides a lock-striped, sharded, snapshot-persistable implementation for
/// concurrent workloads. [`crate::PartialCompiler`] only talks to this trait, so the
/// two are interchangeable.
pub trait PulseCache: Send + Sync + std::fmt::Debug {
    /// Looks up a cached block compilation.
    fn block(&self, key: &BlockKey) -> Option<CachedBlock>;

    /// Inserts a block compilation result.
    fn insert_block(&self, key: BlockKey, value: CachedBlock);

    /// Looks up a cached flexible-compilation tuning.
    fn tuning(&self, key: &BlockKey) -> Option<CachedTuning>;

    /// Inserts a tuning result.
    fn insert_tuning(&self, key: BlockKey, value: CachedTuning);

    /// Number of cached block compilations.
    fn num_blocks(&self) -> usize;

    /// Number of cached tunings.
    fn num_tunings(&self) -> usize;

    /// Clears both caches.
    fn clear(&self);

    /// Records the measured wall-clock seconds one *real* compilation of `key` took
    /// (cache hits are never recorded). Implementations keep this feedback separate
    /// from the bounded entry storage so it survives eviction: once a block has run
    /// anywhere, its observed cost replaces the a-priori latency-model estimate in
    /// LPT scheduling and eviction ranking. The default implementation drops the
    /// observation.
    fn record_observed_cost(&self, _key: &BlockKey, _seconds: f64) {}

    /// The most recently recorded compilation wall time for `key`, if the block has
    /// ever been compiled for real. The default implementation knows nothing.
    fn observed_cost(&self, _key: &BlockKey) -> Option<f64> {
        None
    }

    /// Records one (raw model estimate, observed wall seconds) pair from a real
    /// compilation, feeding the cache's [`crate::latency::CostCalibration`]. The
    /// estimate must be the *unscaled* model value — recording an already-calibrated
    /// estimate would make the fit feed back on itself. The default implementation
    /// drops the sample.
    fn record_cost_sample(&self, _estimated_seconds: f64, _observed_seconds: f64) {}

    /// The fitted model→host cost scale factor, once enough samples support it;
    /// estimates of never-compiled blocks multiplied by this land on the same
    /// wall-clock axis as observed costs. The default implementation is
    /// uncalibrated.
    fn cost_model_scale(&self) -> Option<f64> {
        None
    }

    /// Probes the warm-start transposition table for what past compilations of
    /// this *structure* (a [`BlockKey::structural`] key) learned: tuned
    /// hyperparameters, a converged duration window, and best-so-far amplitudes.
    /// The default implementation has no table.
    fn seed(&self, _key: &BlockKey) -> Option<SeedEntry> {
        None
    }

    /// Records what one compilation learned about a structural key into the
    /// warm-start table (same-key records merge; the window only tightens). The
    /// default implementation drops it.
    fn record_seed(&self, _key: &BlockKey, _entry: SeedEntry) {}

    /// Adds one finished duration search's GRAPE iteration total to the
    /// seeded-vs-cold warm-start accounting. The default implementation drops it.
    fn record_search_outcome(&self, _seeded: bool, _grape_iterations: u64) {}

    /// Adds one compilation's [`vqc_pulse::EigenMemo`] counter totals to the
    /// warm-start accounting. The default implementation drops them.
    fn record_memo_outcome(&self, _hits: u64, _misses: u64, _rejected: u64) {}

    /// Current warm-start counters (table and memo traffic, seeded-vs-cold
    /// iteration totals). The default implementation reports zeroes.
    fn warm_start_stats(&self) -> WarmStartStats {
        WarmStartStats::default()
    }
}

/// Cap on retained observed-cost entries. Every new θ binding of a bound block is
/// a distinct key, so under parameter churn the feedback table would otherwise
/// grow without bound even in a process that clears its caches; losing an old
/// observation merely falls back to the latency model.
const OBSERVED_CAPACITY: usize = 65_536;

/// FIFO-bounded key → measured-seconds table (overwrites keep the original queue
/// position; the bound caps memory, it does not implement recency).
#[derive(Debug, Default)]
struct ObservedCosts {
    costs: HashMap<BlockKey, f64>,
    order: VecDeque<BlockKey>,
}

impl ObservedCosts {
    fn record(&mut self, key: &BlockKey, seconds: f64) {
        if self.costs.insert(key.clone(), seconds).is_none() {
            self.order.push_back(key.clone());
            while self.order.len() > OBSERVED_CAPACITY {
                if let Some(evicted) = self.order.pop_front() {
                    self.costs.remove(&evicted);
                }
            }
        }
    }

    fn get(&self, key: &BlockKey) -> Option<f64> {
        self.costs.get(key).copied()
    }
}

/// Thread-safe cache of block compilations and flexible-compilation tunings.
#[derive(Debug, Default)]
pub struct PulseLibrary {
    blocks: Mutex<HashMap<BlockKey, CachedBlock>>,
    tunings: Mutex<HashMap<BlockKey, CachedTuning>>,
    /// Measured wall-clock compile seconds per key (kept even if entries go away,
    /// up to the [`OBSERVED_CAPACITY`] feedback bound).
    observed: Mutex<ObservedCosts>,
    /// Model→host scale fit from every real compilation's (estimate, observation).
    calibration: Mutex<crate::latency::CostCalibration>,
    /// Warm-start transposition table keyed by [`BlockKey::structural`]
    /// (environment-configured: `VQC_TT` / `VQC_TT_CAPACITY` / `VQC_CACHE_BYTES`).
    seeds: TranspositionTable<BlockKey>,
}

impl PulseCache for PulseLibrary {
    fn block(&self, key: &BlockKey) -> Option<CachedBlock> {
        PulseLibrary::block(self, key)
    }

    fn insert_block(&self, key: BlockKey, value: CachedBlock) {
        PulseLibrary::insert_block(self, key, value)
    }

    fn tuning(&self, key: &BlockKey) -> Option<CachedTuning> {
        PulseLibrary::tuning(self, key)
    }

    fn insert_tuning(&self, key: BlockKey, value: CachedTuning) {
        PulseLibrary::insert_tuning(self, key, value)
    }

    fn num_blocks(&self) -> usize {
        PulseLibrary::num_blocks(self)
    }

    fn num_tunings(&self) -> usize {
        PulseLibrary::num_tunings(self)
    }

    fn clear(&self) {
        PulseLibrary::clear(self)
    }

    fn record_observed_cost(&self, key: &BlockKey, seconds: f64) {
        PulseLibrary::record_observed_cost(self, key, seconds)
    }

    fn observed_cost(&self, key: &BlockKey) -> Option<f64> {
        PulseLibrary::observed_cost(self, key)
    }

    fn record_cost_sample(&self, estimated_seconds: f64, observed_seconds: f64) {
        self.calibration
            .lock()
            .record(estimated_seconds, observed_seconds);
    }

    fn cost_model_scale(&self) -> Option<f64> {
        self.calibration.lock().scale()
    }

    fn seed(&self, key: &BlockKey) -> Option<SeedEntry> {
        self.seeds.probe(key)
    }

    fn record_seed(&self, key: &BlockKey, entry: SeedEntry) {
        self.seeds.record(key, entry);
    }

    fn record_search_outcome(&self, seeded: bool, grape_iterations: u64) {
        self.seeds.record_search_outcome(seeded, grape_iterations);
    }

    fn record_memo_outcome(&self, hits: u64, misses: u64, rejected: u64) {
        self.seeds.record_memo_outcome(hits, misses, rejected);
    }

    fn warm_start_stats(&self) -> WarmStartStats {
        self.seeds.stats()
    }
}

impl PulseLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        PulseLibrary::default()
    }

    /// An empty library whose warm-start table uses `config` instead of the
    /// environment-configured default, so callers (and tests) can arm or
    /// disarm seeding independently of `VQC_TT`.
    pub fn with_seed_table(config: TableConfig) -> Self {
        PulseLibrary {
            seeds: TranspositionTable::new(config),
            ..PulseLibrary::default()
        }
    }

    /// Looks up a cached block compilation.
    pub fn block(&self, key: &BlockKey) -> Option<CachedBlock> {
        self.blocks.lock().get(key).cloned()
    }

    /// Inserts a block compilation result.
    pub fn insert_block(&self, key: BlockKey, value: CachedBlock) {
        self.blocks.lock().insert(key, value);
    }

    /// Looks up a cached tuning.
    pub fn tuning(&self, key: &BlockKey) -> Option<CachedTuning> {
        self.tunings.lock().get(key).cloned()
    }

    /// Inserts a tuning result.
    pub fn insert_tuning(&self, key: BlockKey, value: CachedTuning) {
        self.tunings.lock().insert(key, value);
    }

    /// Number of cached block compilations.
    pub fn num_blocks(&self) -> usize {
        self.blocks.lock().len()
    }

    /// Number of cached tunings.
    pub fn num_tunings(&self) -> usize {
        self.tunings.lock().len()
    }

    /// Clears both caches. Observed compile times are kept: they describe the cost
    /// of the *work*, which clearing stored results does not change.
    pub fn clear(&self) {
        self.blocks.lock().clear();
        self.tunings.lock().clear();
    }

    /// Records the measured wall-clock seconds one real compilation of `key` took.
    pub fn record_observed_cost(&self, key: &BlockKey, seconds: f64) {
        self.observed.lock().record(key, seconds);
    }

    /// The most recently recorded compilation wall time for `key`, if any.
    pub fn observed_cost(&self, key: &BlockKey) -> Option<f64> {
        self.observed.lock().get(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqc_circuit::ParamExpr;

    #[test]
    fn bound_keys_distinguish_angles() {
        let mut a = Circuit::new(1);
        a.rz(0, 0.5);
        let mut b = Circuit::new(1);
        b.rz(0, 0.6);
        assert_ne!(
            BlockKey::from_bound_circuit(&a),
            BlockKey::from_bound_circuit(&b)
        );
        assert_eq!(
            BlockKey::from_bound_circuit(&a),
            BlockKey::from_bound_circuit(&a.clone())
        );
    }

    #[test]
    fn structural_keys_ignore_parameter_values() {
        let mut a = Circuit::new(1);
        a.rz_expr(0, ParamExpr::theta(0));
        a.h(0);
        let bound_1 = a.bind(&[0.3]);
        let bound_2 = a.bind(&[1.7]);
        assert_ne!(
            BlockKey::from_bound_circuit(&bound_1),
            BlockKey::from_bound_circuit(&bound_2)
        );
        assert_eq!(BlockKey::structural(&a), BlockKey::structural(&a.clone()));
    }

    #[test]
    fn library_round_trips_entries() {
        let library = PulseLibrary::new();
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let key = BlockKey::from_bound_circuit(&c);
        assert!(library.block(&key).is_none());
        library.insert_block(
            key.clone(),
            CachedBlock {
                duration_ns: 3.5,
                converged: true,
                grape_iterations: 120,
            },
        );
        assert_eq!(library.num_blocks(), 1);
        let cached = library.block(&key).unwrap();
        assert_eq!(cached.duration_ns, 3.5);
        assert!(cached.converged);

        library.insert_tuning(
            BlockKey::structural(&c),
            CachedTuning {
                learning_rate: 0.2,
                decay_rate: 0.99,
                duration_ns: 3.5,
                converged: true,
                precompute_iterations: 500,
                runtime_iterations: 40,
            },
        );
        assert_eq!(library.num_tunings(), 1);
        library.clear();
        assert_eq!(library.num_blocks(), 0);
        assert_eq!(library.num_tunings(), 0);
    }

    #[test]
    fn observed_costs_round_trip_and_survive_entry_clearing() {
        let library = PulseLibrary::new();
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let key = BlockKey::from_bound_circuit(&c);
        assert_eq!(PulseCache::observed_cost(&library, &key), None);
        library.record_observed_cost(&key, 0.125);
        assert_eq!(library.observed_cost(&key), Some(0.125));
        // A later run overwrites (the latest measurement wins)...
        library.record_observed_cost(&key, 0.25);
        assert_eq!(library.observed_cost(&key), Some(0.25));
        // ...and clearing cached *results* does not erase what the work cost.
        library.clear();
        assert_eq!(library.observed_cost(&key), Some(0.25));
    }

    #[test]
    fn seeds_round_trip_through_the_trait_under_structural_keys() {
        // Armed explicitly so the round trip holds even under `VQC_TT=0`.
        let library = PulseLibrary::with_seed_table(TableConfig::default());
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.rz_expr(1, ParamExpr::theta(0));
        // The structural key is taken on the *unbound* subcircuit (as the
        // compiler's `dedup_key` does), so any θ binding maps to the same key.
        // A separately-built circuit with identical structure must agree.
        let key_a = BlockKey::structural(&c);
        let mut c2 = Circuit::new(2);
        c2.cx(0, 1);
        c2.rz_expr(1, ParamExpr::theta(0));
        let key_b = BlockKey::structural(&c2);
        assert_eq!(key_a, key_b, "structural keys must be θ-invariant");

        assert!(PulseCache::seed(&library, &key_a).is_none());
        let entry = SeedEntry {
            learning_rate: 0.2,
            decay_rate: 0.999,
            tuned: true,
            converged_duration_ns: Some(7.5),
            failed_below_ns: 6.0,
            probe_iterations: vec![(7.5, 40)],
            pulse: None,
        };
        PulseCache::record_seed(&library, &key_a, entry.clone());
        // A different binding of the same structure finds the entry.
        let found = PulseCache::seed(&library, &key_b).expect("structural neighbor must hit");
        assert_eq!(found, entry);

        PulseCache::record_search_outcome(&library, true, 40);
        PulseCache::record_memo_outcome(&library, 5, 2, 0);
        let stats = PulseCache::warm_start_stats(&library);
        assert_eq!(stats.table_hits, 1);
        assert_eq!(stats.seeded_iterations, 40);
        assert_eq!(stats.memo_hits, 5);
    }

    #[test]
    fn observed_cost_table_is_bounded() {
        let library = PulseLibrary::new();
        let key_for = |tag: usize| {
            let mut c = Circuit::new(1);
            c.rz(0, tag as f64 * 1e-6);
            BlockKey::from_bound_circuit(&c)
        };
        let total = OBSERVED_CAPACITY + 4;
        for tag in 0..total {
            library.record_observed_cost(&key_for(tag), tag as f64);
        }
        // The earliest observations age out; the newest survive.
        for tag in 0..4 {
            assert_eq!(library.observed_cost(&key_for(tag)), None);
        }
        for tag in (total - 4)..total {
            assert_eq!(library.observed_cost(&key_for(tag)), Some(tag as f64));
        }
    }
}
