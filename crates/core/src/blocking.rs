//! Circuit blocking / aggregation (Section 5.2, 6 and 7.1 of the paper).
//!
//! GRAPE only converges reliably for circuits of up to four qubits, so larger circuits
//! are partitioned into blocks of bounded width before pulse optimization. The three
//! compilation strategies differ only in the *parameter policy* applied during
//! blocking:
//!
//! * **Full GRAPE** — blocks are bounded in width only ([`ParameterPolicy::Unlimited`]).
//! * **Strict partial compilation** — blocks must be parameterization-independent
//!   ("Fixed" blocks); every parameterized gate becomes its own single-gate block
//!   ([`ParameterPolicy::Forbid`]).
//! * **Flexible partial compilation** — blocks may depend on at most one θᵢ
//!   ([`ParameterPolicy::AtMostOne`]); parameter monotonicity makes these blocks much
//!   deeper than strict Fixed blocks.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use vqc_circuit::Circuit;

/// How many distinct variational parameters a block may depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParameterPolicy {
    /// Blocks must be parameterization-independent; parameterized gates are isolated
    /// into their own blocks (strict partial compilation).
    Forbid,
    /// Blocks may depend on at most one variational parameter (flexible partial
    /// compilation).
    AtMostOne,
    /// No restriction (full GRAPE blocking).
    Unlimited,
}

/// One aggregated block: a contiguous-per-qubit group of operations on at most
/// `max_width` qubits.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Indices (into the source circuit's op list) of the operations in this block, in
    /// program order.
    pub op_indices: Vec<usize>,
    /// The qubits the block touches, ascending.
    pub qubits: Vec<usize>,
    /// The distinct variational parameters the block depends on.
    pub parameters: BTreeSet<usize>,
}

impl Block {
    /// Number of operations in the block.
    pub fn len(&self) -> usize {
        self.op_indices.len()
    }

    /// Returns `true` if the block contains no operations.
    pub fn is_empty(&self) -> bool {
        self.op_indices.is_empty()
    }

    /// Returns `true` if the block does not depend on any variational parameter
    /// (a "Fixed" block in the paper's terminology).
    pub fn is_fixed(&self) -> bool {
        self.parameters.is_empty()
    }

    /// Extracts the block as a standalone circuit on `self.qubits.len()` qubits.
    pub fn to_circuit(&self, source: &Circuit) -> Circuit {
        source.extract_on_qubits(&self.op_indices, &self.qubits)
    }
}

/// Greedy aggregation of a circuit into blocks of at most `max_width` qubits under a
/// parameter policy.
///
/// The scan maintains, per qubit, the block that most recently touched it. A gate joins
/// that block when (a) all of its operand qubits agree on the block (or are untouched),
/// (b) the union of qubits stays within `max_width`, and (c) the parameter policy is
/// satisfied; otherwise a fresh block is opened. This preserves per-qubit program order,
/// which is all the downstream ASAP block schedule needs.
///
/// # Panics
///
/// Panics if `max_width == 0`.
pub fn aggregate_blocks(
    circuit: &Circuit,
    max_width: usize,
    policy: ParameterPolicy,
) -> Vec<Block> {
    aggregate_blocks_with_cap(circuit, max_width, policy, usize::MAX)
}

/// [`aggregate_blocks`] with an additional cap on the number of operations per block.
///
/// The paper runs GRAPE on blocks of unbounded depth (at enormous compute cost); the
/// cap lets the benchmark harness trade pulse speedup for compilation effort at reduced
/// effort levels. `usize::MAX` disables the cap.
pub fn aggregate_blocks_with_cap(
    circuit: &Circuit,
    max_width: usize,
    policy: ParameterPolicy,
    max_ops_per_block: usize,
) -> Vec<Block> {
    assert!(max_width > 0, "blocks must be allowed at least one qubit");
    assert!(
        max_ops_per_block > 0,
        "blocks must be allowed at least one operation"
    );
    let mut blocks: Vec<Block> = Vec::new();
    // current_block[q] = index into `blocks` of the block that most recently touched q.
    let mut current_block: Vec<Option<usize>> = vec![None; circuit.num_qubits()];

    for (op_index, op) in circuit.iter().enumerate() {
        let op_param = op.parameter();
        let force_isolated = matches!(policy, ParameterPolicy::Forbid) && op_param.is_some();

        // Blocks that currently own the op's already-touched operands.
        let owners: BTreeSet<usize> = op.qubits.iter().filter_map(|&q| current_block[q]).collect();

        let mut target: Option<usize> = None;
        if !force_isolated && !owners.is_empty() {
            if owners.len() == 1 {
                // audit:allow(unwrap): guarded by owners.len() == 1
                let block_index = *owners.iter().next().expect("one owner");
                let block = &blocks[block_index];
                let mut union: BTreeSet<usize> = block.qubits.iter().copied().collect();
                union.extend(op.qubits.iter().copied());
                let width_ok = union.len() <= max_width && block.len() < max_ops_per_block;
                let param_ok = match policy {
                    ParameterPolicy::Unlimited => true,
                    ParameterPolicy::Forbid => op_param.is_none() && block.is_fixed(),
                    ParameterPolicy::AtMostOne => {
                        let mut params = block.parameters.clone();
                        if let Some(p) = op_param {
                            params.insert(p);
                        }
                        params.len() <= 1
                    }
                };
                if width_ok && param_ok {
                    target = Some(block_index);
                }
            } else {
                // The op bridges two (or more) existing blocks — e.g. a CX joining two
                // single-qubit blocks. They can be fused into one block, as the paper's
                // aggregation does, provided no other block has since taken over any of
                // their qubits (which would break per-qubit program order), and the
                // fused block still satisfies the width, depth, and parameter limits.
                let all_current = owners.iter().all(|&b| {
                    blocks[b]
                        .qubits
                        .iter()
                        .all(|&q| current_block[q] == Some(b))
                });
                if all_current {
                    let mut union: BTreeSet<usize> = op.qubits.iter().copied().collect();
                    let mut params: BTreeSet<usize> = op_param.into_iter().collect();
                    let mut total_ops = 1usize;
                    for &b in &owners {
                        union.extend(blocks[b].qubits.iter().copied());
                        params.extend(blocks[b].parameters.iter().copied());
                        total_ops += blocks[b].len();
                    }
                    let width_ok = union.len() <= max_width && total_ops <= max_ops_per_block;
                    let param_ok = match policy {
                        ParameterPolicy::Unlimited => true,
                        ParameterPolicy::Forbid => params.is_empty(),
                        ParameterPolicy::AtMostOne => params.len() <= 1,
                    };
                    if width_ok && param_ok {
                        // audit:allow(unwrap): guarded by the surrounding !owners.is_empty() branch
                        let fused = *owners.iter().min().expect("non-empty owner set");
                        let others: Vec<usize> =
                            owners.iter().copied().filter(|&b| b != fused).collect();
                        for other in others {
                            let drained = std::mem::take(&mut blocks[other]);
                            for &q in &drained.qubits {
                                current_block[q] = Some(fused);
                            }
                            blocks[fused].op_indices.extend(drained.op_indices);
                            blocks[fused].parameters.extend(drained.parameters);
                            let mut qubits: BTreeSet<usize> =
                                blocks[fused].qubits.iter().copied().collect();
                            qubits.extend(drained.qubits);
                            blocks[fused].qubits = qubits.into_iter().collect();
                        }
                        blocks[fused].op_indices.sort_unstable();
                        target = Some(fused);
                    }
                }
            }
        }

        let block_index = match target {
            Some(index) => {
                let block = &mut blocks[index];
                block.op_indices.push(op_index);
                let mut union: BTreeSet<usize> = block.qubits.iter().copied().collect();
                union.extend(op.qubits.iter().copied());
                block.qubits = union.into_iter().collect();
                if let Some(p) = op_param {
                    block.parameters.insert(p);
                }
                index
            }
            None => {
                let mut parameters = BTreeSet::new();
                if let Some(p) = op_param {
                    parameters.insert(p);
                }
                blocks.push(Block {
                    op_indices: vec![op_index],
                    qubits: {
                        let mut qs: Vec<usize> = op.qubits.clone();
                        qs.sort_unstable();
                        qs
                    },
                    parameters,
                });
                blocks.len() - 1
            }
        };
        for &q in &op.qubits {
            current_block[q] = Some(block_index);
        }
    }

    // Blocks emptied by fusion are dropped; the survivors keep program order.
    blocks.retain(|block| !block.is_empty());
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqc_circuit::ParamExpr;

    fn strict_alternating_example() -> Circuit {
        // The Figure-3 style circuit: fixed gates interleaved with Rz(θi) gates.
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.rz_expr(1, ParamExpr::theta(0));
        c.cx(0, 1);
        c.rz_expr(1, ParamExpr::theta(0));
        c.h(0);
        c.rz_expr(0, ParamExpr::theta(1));
        c.cx(0, 1);
        c.rz_expr(1, ParamExpr::theta(2));
        c
    }

    #[test]
    fn every_op_lands_in_exactly_one_block() {
        let c = strict_alternating_example();
        for policy in [
            ParameterPolicy::Forbid,
            ParameterPolicy::AtMostOne,
            ParameterPolicy::Unlimited,
        ] {
            let blocks = aggregate_blocks(&c, 4, policy);
            let mut covered: Vec<usize> =
                blocks.iter().flat_map(|b| b.op_indices.clone()).collect();
            covered.sort_unstable();
            assert_eq!(covered, (0..c.len()).collect::<Vec<_>>(), "{policy:?}");
        }
    }

    #[test]
    fn strict_policy_isolates_parameterized_gates() {
        let c = strict_alternating_example();
        let blocks = aggregate_blocks(&c, 4, ParameterPolicy::Forbid);
        // Every block is either fixed or a single parameterized gate.
        for block in &blocks {
            if !block.is_fixed() {
                assert_eq!(block.len(), 1);
            }
        }
        // There are 4 parameterized gates, hence at least 4 single-gate blocks.
        let parameterized_blocks = blocks.iter().filter(|b| !b.is_fixed()).count();
        assert_eq!(parameterized_blocks, 4);
    }

    #[test]
    fn flexible_policy_produces_fewer_deeper_blocks() {
        let c = strict_alternating_example();
        let strict = aggregate_blocks(&c, 4, ParameterPolicy::Forbid);
        let flexible = aggregate_blocks(&c, 4, ParameterPolicy::AtMostOne);
        assert!(flexible.len() < strict.len());
        // Flexible blocks depend on at most one parameter each.
        for block in &flexible {
            assert!(block.parameters.len() <= 1);
        }
        // And the deepest flexible block is deeper than the deepest strict fixed block.
        let deepest_flexible = flexible.iter().map(Block::len).max().unwrap();
        let deepest_strict_fixed = strict
            .iter()
            .filter(|b| b.is_fixed())
            .map(Block::len)
            .max()
            .unwrap();
        assert!(deepest_flexible >= deepest_strict_fixed);
    }

    #[test]
    fn unlimited_policy_merges_across_parameters() {
        let c = strict_alternating_example();
        let blocks = aggregate_blocks(&c, 4, ParameterPolicy::Unlimited);
        // The whole 2-qubit circuit fits in a single block.
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].parameters.len(), 3);
        assert_eq!(blocks[0].qubits, vec![0, 1]);
    }

    #[test]
    fn width_limit_is_respected() {
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.h(q);
        }
        for q in 0..5 {
            c.cx(q, q + 1);
        }
        for policy in [
            ParameterPolicy::Forbid,
            ParameterPolicy::AtMostOne,
            ParameterPolicy::Unlimited,
        ] {
            for max_width in [2usize, 3, 4] {
                let blocks = aggregate_blocks(&c, max_width, policy);
                for block in &blocks {
                    assert!(
                        block.qubits.len() <= max_width,
                        "{policy:?} width {max_width}"
                    );
                }
            }
        }
    }

    #[test]
    fn per_qubit_program_order_is_preserved() {
        let c = strict_alternating_example();
        let blocks = aggregate_blocks(&c, 2, ParameterPolicy::AtMostOne);
        // For every qubit, the sequence of blocks touching it must have strictly
        // increasing op indices.
        for q in 0..c.num_qubits() {
            let mut last = None;
            for block in &blocks {
                if block.qubits.contains(&q) {
                    let ops: Vec<usize> = block
                        .op_indices
                        .iter()
                        .copied()
                        .filter(|&i| c.ops()[i].acts_on(q))
                        .collect();
                    for i in ops {
                        if let Some(prev) = last {
                            assert!(i > prev);
                        }
                        last = Some(i);
                    }
                }
            }
        }
    }

    #[test]
    fn block_to_circuit_is_reindexed() {
        let mut c = Circuit::new(4);
        c.cx(2, 3);
        c.rz(3, 0.5);
        let blocks = aggregate_blocks(&c, 4, ParameterPolicy::Unlimited);
        assert_eq!(blocks.len(), 1);
        let sub = blocks[0].to_circuit(&c);
        assert_eq!(sub.num_qubits(), 2);
        assert_eq!(sub.len(), 2);
    }

    #[test]
    fn op_cap_limits_block_depth() {
        let mut c = Circuit::new(2);
        for _ in 0..10 {
            c.cx(0, 1);
            c.h(0);
        }
        let capped = aggregate_blocks_with_cap(&c, 4, ParameterPolicy::Unlimited, 5);
        assert!(capped.len() >= 4);
        for block in &capped {
            assert!(block.len() <= 5);
        }
        let uncapped = aggregate_blocks(&c, 4, ParameterPolicy::Unlimited);
        assert_eq!(uncapped.len(), 1);
    }

    #[test]
    fn empty_circuit_has_no_blocks() {
        let c = Circuit::new(3);
        assert!(aggregate_blocks(&c, 4, ParameterPolicy::Unlimited).is_empty());
    }
}
