//! Error type for the partial compiler.

use std::error::Error;
use std::fmt;
use vqc_circuit::CircuitError;
use vqc_pulse::PulseError;

/// Errors produced while compiling a variational circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The parameter vector is shorter than the circuit's highest parameter index.
    MissingParameters {
        /// Number of parameters supplied.
        supplied: usize,
        /// Number of parameters the circuit references.
        required: usize,
    },
    /// The circuit-level transpiler reported an error.
    Circuit(CircuitError),
    /// The pulse-level optimizer reported an error.
    Pulse(PulseError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::MissingParameters { supplied, required } => write!(
                f,
                "parameter binding has {supplied} entries but the circuit references {required} parameters"
            ),
            CompileError::Circuit(e) => write!(f, "circuit error: {e}"),
            CompileError::Pulse(e) => write!(f, "pulse error: {e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Circuit(e) => Some(e),
            CompileError::Pulse(e) => Some(e),
            CompileError::MissingParameters { .. } => None,
        }
    }
}

impl From<CircuitError> for CompileError {
    fn from(e: CircuitError) -> Self {
        CompileError::Circuit(e)
    }
}

impl From<PulseError> for CompileError {
    fn from(e: PulseError) -> Self {
        CompileError::Pulse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_conversions() {
        let e = CompileError::MissingParameters {
            supplied: 2,
            required: 5,
        };
        assert!(e.to_string().contains("5"));

        let from_circuit: CompileError = CircuitError::NonBasisGate { gate: "cz" }.into();
        assert!(matches!(from_circuit, CompileError::Circuit(_)));
        assert!(from_circuit.to_string().contains("cz"));

        let from_pulse: CompileError = PulseError::DurationTooShort {
            duration_ns: 0.1,
            dt_ns: 1.0,
        }
        .into();
        assert!(matches!(from_pulse, CompileError::Pulse(_)));
    }
}
