//! Compilation-latency accounting.
//!
//! The paper's Figure 7 reports the *reduction factor* in compilation latency of
//! flexible partial compilation relative to full GRAPE. Latency here is tracked two
//! ways: as wall-clock seconds actually spent by this process, and as an estimate
//! derived from the amount of GRAPE work performed (iterations × problem size), scaled
//! to the paper's hardware so that a 4-qubit block costs minutes — the regime the paper
//! describes. The reduction *factor* is insensitive to the calibration constant because
//! both strategies are scaled identically.

use crate::library::{BlockKey, CachedBlock, CachedTuning};
use serde::{Deserialize, Serialize};
use vqc_pulse::DeviceModel;

/// Canonical GRAPE sample period (ns) assumed when estimating the recompute cost of a
/// *cached* entry, which no longer carries the `GrapeOptions` it was produced with.
/// Cost-aware cache eviction only needs a consistent ordering of entries, so a fixed
/// sample period (the `GrapeOptions::fast` setting) is accurate enough.
pub const RECOMPUTE_DT_NS: f64 = 0.5;

/// Calibration constant: estimated seconds of compilation per unit of GRAPE work,
/// where one unit is `iterations × slices × dim³ × controls`. The default is chosen so
/// that a 4-qubit block at the paper's settings (0.05 ns samples, a few thousand
/// iterations) costs on the order of ten minutes, matching the paper's observation
/// that "running GRAPE control on a circuit with just four qubits takes several
/// minutes" to an hour.
pub const DEFAULT_SECONDS_PER_WORK_UNIT: f64 = 3.0e-8;

/// Minimum number of (estimate, observation) pairs before a fitted scale is
/// trusted. Below this, one anomalous block (a pathological binary search, a cache
/// shard resize mid-measurement) could swing the factor by orders of magnitude.
pub const MIN_CALIBRATION_SAMPLES: u64 = 3;

/// Online least-squares fit of the factor mapping model-scale cost estimates onto
/// this host's observed wall-clock seconds.
///
/// The [`LatencyModel`] is calibrated to the *paper's* hardware (a 4-qubit block
/// costs minutes), while observed compile times are *host* seconds — on a fast
/// machine with reduced GRAPE effort the two differ by orders of magnitude. Every
/// real block compilation contributes one `(model estimate, observed seconds)`
/// pair; the through-origin least-squares scale `Σ(e·o) / Σ(e²)` then converts the
/// model's a-priori estimate for a *never-seen* block into calibrated host seconds,
/// so LPT scheduling and cost-aware eviction rank unseen blocks on the same axis as
/// observed ones instead of mixing two incomparable unit systems.
///
/// Estimates recorded here must always be the **raw** model values, never already
/// scaled ones, or the fit would feed back on itself.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostCalibration {
    sum_estimate_observed: f64,
    sum_estimate_squared: f64,
    samples: u64,
}

impl CostCalibration {
    /// An empty calibration (no samples, no scale).
    pub fn new() -> Self {
        CostCalibration::default()
    }

    /// Records one (raw model estimate, observed seconds) pair. Non-finite or
    /// non-positive pairs are ignored: a zero estimate carries no slope
    /// information, and a zero observation is a cache hit mis-reported as work.
    pub fn record(&mut self, estimated_seconds: f64, observed_seconds: f64) {
        if !(estimated_seconds.is_finite() && observed_seconds.is_finite()) {
            return;
        }
        if estimated_seconds <= 0.0 || observed_seconds <= 0.0 {
            return;
        }
        self.sum_estimate_observed += estimated_seconds * observed_seconds;
        self.sum_estimate_squared += estimated_seconds * estimated_seconds;
        self.samples += 1;
    }

    /// Number of pairs recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The fitted model→host scale factor, once at least
    /// [`MIN_CALIBRATION_SAMPLES`] pairs support it; `None` while uncalibrated
    /// (callers fall back to the raw model estimate).
    pub fn scale(&self) -> Option<f64> {
        if self.samples < MIN_CALIBRATION_SAMPLES || self.sum_estimate_squared <= 0.0 {
            return None;
        }
        let scale = self.sum_estimate_observed / self.sum_estimate_squared;
        scale.is_finite().then_some(scale)
    }
}

/// Model converting GRAPE work into estimated wall-clock compilation latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Seconds per unit of GRAPE work (`iterations × slices × dim³ × controls`).
    pub seconds_per_work_unit: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            seconds_per_work_unit: DEFAULT_SECONDS_PER_WORK_UNIT,
        }
    }
}

impl LatencyModel {
    /// Estimated seconds for `iterations` GRAPE iterations on a problem with the given
    /// number of time slices, Hilbert-space dimension, and control knobs.
    pub fn estimate_seconds(
        &self,
        iterations: usize,
        slices: usize,
        dim: usize,
        controls: usize,
    ) -> f64 {
        self.seconds_per_work_unit
            * iterations as f64
            * slices as f64
            * (dim as f64).powi(3)
            * controls as f64
    }

    /// Estimated seconds of `iterations` GRAPE iterations on a `num_qubits`-wide
    /// line-device block whose pulse spans `duration_ns` at the `dt_ns` sample
    /// period. This is the one place the block-level work formula (slices from the
    /// duration, `dim³` and control count from the width) lives; both cache
    /// eviction and LPT scheduling rank blocks through it, so the two always agree
    /// on what makes a block expensive.
    pub fn block_work_seconds(
        &self,
        iterations: usize,
        duration_ns: f64,
        dt_ns: f64,
        num_qubits: usize,
    ) -> f64 {
        let device = DeviceModel::qubits_line(num_qubits.max(1));
        let slices = (duration_ns / dt_ns).ceil().max(1.0) as usize;
        self.estimate_seconds(iterations, slices, device.dim(), device.num_controls())
    }

    /// Estimated seconds of GRAPE work needed to recompute a cached block entry from
    /// scratch: the iterations it took to produce, on the device its key's qubit
    /// count implies, at the [`RECOMPUTE_DT_NS`] sample period. This is the value a
    /// bounded cache protects by keeping the entry — cost-aware eviction drops the
    /// entries with the smallest recompute cost first.
    pub fn block_recompute_seconds(&self, key: &BlockKey, entry: &CachedBlock) -> f64 {
        self.block_work_seconds(
            entry.grape_iterations,
            entry.duration_ns,
            RECOMPUTE_DT_NS,
            key.num_qubits(),
        )
    }

    /// Estimated seconds to recompute a cached flexible-compilation tuning from
    /// scratch (the hyperparameter probes plus the duration search it took).
    pub fn tuning_recompute_seconds(&self, key: &BlockKey, entry: &CachedTuning) -> f64 {
        self.block_work_seconds(
            entry.precompute_iterations,
            entry.duration_ns,
            RECOMPUTE_DT_NS,
            key.num_qubits(),
        )
    }
}

/// Accumulated compilation latency for one phase (pre-compute or runtime) of one
/// strategy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyEstimate {
    /// Total GRAPE iterations attributed to this phase.
    pub grape_iterations: usize,
    /// Estimated seconds on paper-scale hardware (via [`LatencyModel`]).
    pub estimated_seconds: f64,
    /// Wall-clock seconds this process actually spent.
    pub measured_seconds: f64,
}

impl LatencyEstimate {
    /// Adds another estimate into this one.
    pub fn accumulate(&mut self, other: &LatencyEstimate) {
        self.grape_iterations += other.grape_iterations;
        self.estimated_seconds += other.estimated_seconds;
        self.measured_seconds += other.measured_seconds;
    }

    /// Returns the ratio of this latency to another (e.g. full-GRAPE runtime over
    /// flexible runtime), using the estimated seconds; falls back to iteration counts
    /// when the estimate is degenerate.
    pub fn reduction_factor_vs(&self, other: &LatencyEstimate) -> f64 {
        if other.estimated_seconds > 0.0 {
            self.estimated_seconds / other.estimated_seconds
        } else if other.grape_iterations > 0 {
            self.grape_iterations as f64 / other.grape_iterations as f64
        } else if self.estimated_seconds > 0.0 || self.grape_iterations > 0 {
            f64::INFINITY
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_qubit_block_costs_minutes_under_the_default_model() {
        let model = LatencyModel::default();
        // Paper-scale: 4 qubits (dim 16), ~40 ns block at 0.05 ns samples = 800 slices,
        // 11 controls, ~2000 iterations across the binary search.
        let seconds = model.estimate_seconds(2000, 800, 16, 11);
        assert!(
            (60.0..7200.0).contains(&seconds),
            "estimated {seconds} s should be minutes-to-an-hour"
        );
    }

    #[test]
    fn estimates_scale_linearly_in_iterations() {
        let model = LatencyModel::default();
        let one = model.estimate_seconds(100, 50, 4, 5);
        let two = model.estimate_seconds(200, 50, 4, 5);
        assert!((two / one - 2.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_fits_the_least_squares_scale_after_enough_samples() {
        let mut calibration = CostCalibration::new();
        assert_eq!(calibration.scale(), None);
        // Observations exactly 0.05× the estimates: the fit must recover 0.05.
        calibration.record(100.0, 5.0);
        calibration.record(40.0, 2.0);
        assert_eq!(calibration.scale(), None, "two samples are not enough");
        calibration.record(200.0, 10.0);
        let scale = calibration.scale().expect("three samples calibrate");
        assert!((scale - 0.05).abs() < 1e-12, "fitted {scale}");
        assert_eq!(calibration.samples(), 3);

        // Degenerate pairs are ignored rather than poisoning the fit.
        calibration.record(0.0, 1.0);
        calibration.record(1.0, 0.0);
        calibration.record(f64::NAN, 1.0);
        calibration.record(1.0, f64::INFINITY);
        assert_eq!(calibration.samples(), 3);
        assert!((calibration.scale().unwrap() - 0.05).abs() < 1e-12);

        // The fit minimizes squared error through the origin, so a mixed
        // population lands between its extremes.
        let mut mixed = CostCalibration::new();
        mixed.record(10.0, 1.0);
        mixed.record(10.0, 2.0);
        mixed.record(10.0, 3.0);
        let scale = mixed.scale().unwrap();
        assert!(
            (scale - 0.2).abs() < 1e-12,
            "mean of 0.1/0.2/0.3 is {scale}"
        );
    }

    #[test]
    fn accumulation_and_reduction_factor() {
        let mut a = LatencyEstimate {
            grape_iterations: 1000,
            estimated_seconds: 100.0,
            measured_seconds: 1.0,
        };
        let b = LatencyEstimate {
            grape_iterations: 500,
            estimated_seconds: 50.0,
            measured_seconds: 0.5,
        };
        a.accumulate(&b);
        assert_eq!(a.grape_iterations, 1500);
        assert!((a.estimated_seconds - 150.0).abs() < 1e-12);

        let small = LatencyEstimate {
            grape_iterations: 15,
            estimated_seconds: 1.5,
            measured_seconds: 0.01,
        };
        assert!((a.reduction_factor_vs(&small) - 100.0).abs() < 1e-9);
        // Degenerate comparisons do not panic.
        assert_eq!(
            small.reduction_factor_vs(&LatencyEstimate::default()),
            f64::INFINITY
        );
        assert_eq!(
            LatencyEstimate::default().reduction_factor_vs(&LatencyEstimate::default()),
            1.0
        );
    }
}
