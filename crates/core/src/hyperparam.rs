//! Hyperparameter optimization for flexible partial compilation (Section 7.2).
//!
//! GRAPE's convergence speed depends strongly on the ADAM learning rate and its decay;
//! the paper observes (Figure 4) that a good configuration for a single-angle
//! subcircuit is robust to the *value* of its θ argument, so the configuration can be
//! tuned once per subcircuit in a pre-compute phase and reused at every variational
//! iteration. This module implements that tuning as a grid search scored by
//! iterations-to-convergence.

use serde::{Deserialize, Serialize};
use vqc_circuit::Circuit;
use vqc_pulse::grape::{try_optimize_pulse_with, GrapeOptions};
use vqc_pulse::profile::{self, Phase};
use vqc_pulse::{DeviceModel, EigenMemo, PulseError};
use vqc_sim::circuit_unitary;

/// The grid of hyperparameter candidates to evaluate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperparameterGrid {
    /// Candidate ADAM learning rates.
    pub learning_rates: Vec<f64>,
    /// Candidate learning-rate decay factors.
    pub decay_rates: Vec<f64>,
}

impl HyperparameterGrid {
    /// The default grid used by the benchmark harness.
    pub fn standard() -> Self {
        HyperparameterGrid {
            learning_rates: vec![0.02, 0.05, 0.1, 0.2, 0.3],
            decay_rates: vec![0.995, 0.999],
        }
    }

    /// A smaller grid for the `fast` effort level and the test-suite.
    pub fn fast() -> Self {
        HyperparameterGrid {
            learning_rates: vec![0.05, 0.15, 0.3],
            decay_rates: vec![0.999],
        }
    }

    /// Number of candidate configurations.
    pub fn len(&self) -> usize {
        self.learning_rates.len() * self.decay_rates.len()
    }

    /// Returns `true` if the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all `(learning_rate, decay_rate)` pairs.
    pub fn candidates(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.learning_rates
            .iter()
            .flat_map(move |&lr| self.decay_rates.iter().map(move |&d| (lr, d)))
    }
}

impl Default for HyperparameterGrid {
    fn default() -> Self {
        HyperparameterGrid::standard()
    }
}

/// The outcome of evaluating one hyperparameter candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperparamProbe {
    /// Learning rate evaluated.
    pub learning_rate: f64,
    /// Decay rate evaluated.
    pub decay_rate: f64,
    /// GRAPE iterations used (up to the budget).
    pub iterations: usize,
    /// Final infidelity reached.
    pub infidelity: f64,
    /// Whether the target infidelity was reached.
    pub converged: bool,
}

/// The result of tuning hyperparameters for one subcircuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningResult {
    /// The best learning rate found.
    pub learning_rate: f64,
    /// The best decay rate found.
    pub decay_rate: f64,
    /// GRAPE iterations a runtime compilation needs with the tuned configuration.
    pub runtime_iterations: usize,
    /// Whether the tuned configuration reached the target infidelity.
    pub converged: bool,
    /// Every candidate evaluated, for reporting (Figure 4 plots these curves).
    pub probes: Vec<HyperparamProbe>,
}

impl TuningResult {
    /// Total GRAPE iterations spent across all probes (the pre-compute latency).
    pub fn total_probe_iterations(&self) -> usize {
        self.probes.iter().map(|p| p.iterations).sum()
    }
}

/// Tunes the GRAPE hyperparameters for a bound subcircuit at a fixed pulse duration.
///
/// Candidates are ranked by convergence first, then by iterations-to-convergence, then
/// by final infidelity.
///
/// # Errors
///
/// Propagates [`PulseError`] for invalid inputs (e.g. a duration shorter than one
/// sample period).
pub fn tune_hyperparameters(
    bound_subcircuit: &Circuit,
    device: &DeviceModel,
    duration_ns: f64,
    base: &GrapeOptions,
    grid: &HyperparameterGrid,
) -> Result<TuningResult, PulseError> {
    assert!(!grid.is_empty(), "hyperparameter grid must not be empty");
    let target = circuit_unitary(bound_subcircuit);
    let mut probes = Vec::with_capacity(grid.len());
    // Every candidate starts from the same seeded guess and revisits overlapping
    // amplitude trajectories, so one shared eigendecomposition memo serves the
    // whole grid.
    let mut memo = EigenMemo::new();
    for (learning_rate, decay_rate) in grid.candidates() {
        let options = base.with_hyperparameters(learning_rate, decay_rate);
        // Profiled as self time: the kernel phases inside the candidate run
        // charge themselves, the scope keeps only the grid's own overhead.
        let _candidate = profile::scope(Phase::HyperparamTuning);
        let result = try_optimize_pulse_with(
            &target,
            device,
            duration_ns,
            &options,
            None,
            Some(&mut memo),
        )?;
        probes.push(HyperparamProbe {
            learning_rate,
            decay_rate,
            iterations: result.iterations,
            infidelity: result.infidelity,
            converged: result.converged,
        });
    }

    let best = probes
        .iter()
        .min_by(|a, b| {
            (
                !a.converged,
                if a.converged {
                    a.iterations
                } else {
                    usize::MAX
                },
            )
                .partial_cmp(&(
                    !b.converged,
                    if b.converged {
                        b.iterations
                    } else {
                        usize::MAX
                    },
                ))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    a.infidelity
                        .partial_cmp(&b.infidelity)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
        })
        // audit:allow(unwrap): the tuning grid is a non-empty compile-time constant
        .expect("grid is non-empty")
        .clone();

    Ok(TuningResult {
        learning_rate: best.learning_rate,
        decay_rate: best.decay_rate,
        runtime_iterations: best.iterations,
        converged: best.converged,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqc_circuit::ParamExpr;
    use vqc_pulse::grape::try_optimize_pulse;

    fn single_angle_subcircuit(theta: f64) -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.rz_expr(1, ParamExpr::theta(0));
        c.cx(0, 1);
        c.bind(&[theta])
    }

    fn fast_options() -> GrapeOptions {
        let mut options = GrapeOptions::fast();
        options.max_iterations = 120;
        options.target_infidelity = 2e-2;
        options
    }

    #[test]
    fn grid_enumerates_all_candidates() {
        let grid = HyperparameterGrid::standard();
        assert_eq!(grid.len(), 10);
        assert_eq!(grid.candidates().count(), 10);
        assert!(!grid.is_empty());
        assert_eq!(HyperparameterGrid::fast().len(), 3);
    }

    #[test]
    fn tuning_finds_a_converging_configuration() {
        let circuit = single_angle_subcircuit(0.8);
        let device = DeviceModel::qubits_line(2);
        let result = tune_hyperparameters(
            &circuit,
            &device,
            12.0,
            &fast_options(),
            &HyperparameterGrid::fast(),
        )
        .unwrap();
        assert_eq!(result.probes.len(), 3);
        assert!(
            result.converged,
            "no candidate converged: {:?}",
            result.probes
        );
        assert!(result.runtime_iterations <= 120);
        assert!(result.total_probe_iterations() >= result.runtime_iterations);
    }

    #[test]
    fn tuned_configuration_is_robust_to_the_angle_argument() {
        // The Figure-4 observation: the configuration tuned at one θ still converges at
        // a different θ.
        let device = DeviceModel::qubits_line(2);
        let tuned = tune_hyperparameters(
            &single_angle_subcircuit(0.4),
            &device,
            12.0,
            &fast_options(),
            &HyperparameterGrid::fast(),
        )
        .unwrap();
        assert!(tuned.converged);

        let other_angle = single_angle_subcircuit(2.1);
        let target = circuit_unitary(&other_angle);
        let options = fast_options().with_hyperparameters(tuned.learning_rate, tuned.decay_rate);
        let rerun = try_optimize_pulse(&target, &device, 12.0, &options).unwrap();
        assert!(
            rerun.converged,
            "tuned hyperparameters failed at a different angle (infidelity {})",
            rerun.infidelity
        );
    }

    #[test]
    fn probes_report_all_grid_points() {
        let circuit = single_angle_subcircuit(1.0);
        let device = DeviceModel::qubits_line(2);
        let grid = HyperparameterGrid {
            learning_rates: vec![0.1, 0.3],
            decay_rates: vec![0.999],
        };
        let result = tune_hyperparameters(&circuit, &device, 10.0, &fast_options(), &grid).unwrap();
        assert_eq!(result.probes.len(), 2);
        let rates: Vec<f64> = result.probes.iter().map(|p| p.learning_rate).collect();
        assert!(rates.contains(&0.1) && rates.contains(&0.3));
    }
}
