//! Partial compilation of variational quantum algorithms — the paper's contribution.
//!
//! Four compilation strategies are implemented behind one API, spanning the
//! latency/pulse-speedup trade-off space of the paper:
//!
//! | Strategy | Pulse speedup | Runtime compilation latency |
//! |---|---|---|
//! | [`Strategy::GateBased`] | 1x (baseline) | ~zero (lookup table) |
//! | [`Strategy::StrictPartial`] | most of GRAPE's | ~zero (pre-computed Fixed blocks) |
//! | [`Strategy::FlexiblePartial`] | ≈ GRAPE | small (tuned-hyperparameter GRAPE per slice) |
//! | [`Strategy::FullGrape`] | best | huge (binary-searched GRAPE per block, per iteration) |
//!
//! The central type is [`PartialCompiler`]: configure it with a GRAPE effort level,
//! then call [`PartialCompiler::compile`] with a circuit, a parameter binding, and a
//! strategy. The compiler:
//!
//! 1. optimizes and lowers the circuit to the Table-1 basis (`vqc-circuit`),
//! 2. aggregates it into ≤4-qubit [`blocking`] blocks under the strategy's parameter
//!    policy (Fixed-only for strict, single-θ for flexible, unrestricted for GRAPE),
//! 3. compiles each block either by lookup (gate-based) or by minimum-time GRAPE
//!    (`vqc-pulse`), caching results in a [`PulseLibrary`],
//! 4. ASAP-schedules the block pulses to get the circuit's total pulse duration, and
//! 5. accounts compilation latency separately for the pre-compute phase and the
//!    per-iteration runtime phase.
//!
//! # Example
//!
//! ```
//! use vqc_circuit::{Circuit, ParamExpr};
//! use vqc_core::{CompilerOptions, PartialCompiler, Strategy};
//!
//! // A small variational circuit: a Fixed entangling section around one Rz(θ0).
//! let mut circuit = Circuit::new(2);
//! circuit.h(0);
//! circuit.cx(0, 1);
//! circuit.rz_expr(1, ParamExpr::theta(0));
//! circuit.cx(0, 1);
//!
//! let compiler = PartialCompiler::new(CompilerOptions::fast());
//! let gate = compiler.compile(&circuit, &[0.4], Strategy::GateBased).unwrap();
//! let strict = compiler.compile(&circuit, &[0.4], Strategy::StrictPartial).unwrap();
//! // Strict partial compilation is never slower than the gate-based baseline and pays
//! // no runtime compilation latency.
//! assert!(strict.pulse_duration_ns <= gate.pulse_duration_ns + 1e-9);
//! assert_eq!(strict.runtime.grape_iterations, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod blocking;
mod compiler;
mod error;
pub mod hyperparam;
pub mod latency;
mod library;
pub mod schedule;

pub use compiler::{
    BlockCompilation, BlockOutcome, CompilationPlan, CompilationReport, CompilerOptions,
    PartialCompiler, Strategy,
};
pub use error::CompileError;
pub use latency::{CostCalibration, LatencyEstimate, LatencyModel, MIN_CALIBRATION_SAMPLES};
pub use library::{BlockKey, CachedBlock, CachedTuning, PulseCache, PulseLibrary};
pub use vqc_pulse::profile::{self, CompileProfile, Phase, PHASE_COUNT};
pub use vqc_pulse::{PulseSequence, SeedEntry, TableConfig, TranspositionTable, WarmStartStats};
