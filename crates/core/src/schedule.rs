//! ASAP scheduling of compiled block pulses.
//!
//! Once every block has a pulse duration, the circuit's total pulse duration is the
//! critical path of the blocks: each block starts as soon as all of its qubits are free
//! (blocks on disjoint qubits overlap). This mirrors the gate-level ASAP schedule used
//! for the gate-based baseline, so the comparison between strategies is apples-to-apples.

use serde::{Deserialize, Serialize};

/// A block's placement in the schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledBlock {
    /// Index of the block in the input order.
    pub block_index: usize,
    /// Start time in nanoseconds.
    pub start_ns: f64,
    /// Duration in nanoseconds.
    pub duration_ns: f64,
}

/// Schedules blocks (given as `(qubits, duration_ns)` in program order) as soon as
/// possible and returns the placements plus the total duration.
///
/// # Panics
///
/// Panics if a block references a qubit `>= num_qubits`.
pub fn schedule_blocks(
    num_qubits: usize,
    blocks: &[(Vec<usize>, f64)],
) -> (Vec<ScheduledBlock>, f64) {
    let mut qubit_free_at = vec![0.0_f64; num_qubits];
    let mut placements = Vec::with_capacity(blocks.len());
    let mut total = 0.0_f64;
    for (index, (qubits, duration)) in blocks.iter().enumerate() {
        let start = qubits
            .iter()
            .map(|&q| {
                assert!(q < num_qubits, "block qubit {q} out of range");
                qubit_free_at[q]
            })
            .fold(0.0_f64, f64::max);
        let end = start + duration;
        for &q in qubits {
            qubit_free_at[q] = end;
        }
        total = total.max(end);
        placements.push(ScheduledBlock {
            block_index: index,
            start_ns: start,
            duration_ns: *duration,
        });
    }
    (placements, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_blocks_overlap() {
        let blocks = vec![(vec![0, 1], 10.0), (vec![2, 3], 7.0)];
        let (placements, total) = schedule_blocks(4, &blocks);
        assert_eq!(placements[0].start_ns, 0.0);
        assert_eq!(placements[1].start_ns, 0.0);
        assert_eq!(total, 10.0);
    }

    #[test]
    fn overlapping_blocks_serialize() {
        let blocks = vec![(vec![0, 1], 10.0), (vec![1, 2], 7.0), (vec![0], 2.0)];
        let (placements, total) = schedule_blocks(3, &blocks);
        assert_eq!(placements[1].start_ns, 10.0);
        // The third block only needs qubit 0, free at t = 10.
        assert_eq!(placements[2].start_ns, 10.0);
        assert_eq!(total, 17.0);
    }

    #[test]
    fn empty_schedule_has_zero_duration() {
        let (placements, total) = schedule_blocks(3, &[]);
        assert!(placements.is_empty());
        assert_eq!(total, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        schedule_blocks(2, &[(vec![5], 1.0)]);
    }
}
