//! The [`PartialCompiler`]: one API over the four compilation strategies.

use crate::blocking::{aggregate_blocks_with_cap, Block, ParameterPolicy};
use crate::hyperparam::{tune_hyperparameters, HyperparameterGrid};
use crate::latency::{LatencyEstimate, LatencyModel};
use crate::library::{BlockKey, CachedBlock, CachedTuning, PulseCache, PulseLibrary};
use crate::schedule::schedule_blocks;
use crate::CompileError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;
use vqc_circuit::timing::{critical_path_ns, GateTimes};
use vqc_circuit::{passes, Circuit};
use vqc_pulse::grape::GrapeOptions;
use vqc_pulse::minimum_time::{minimum_pulse_time_seeded, MinimumTimeOptions, MinimumTimeResult};
use vqc_pulse::profile::{self, CompileProfile, Phase};
use vqc_pulse::{DeviceModel, EigenMemo, SeedEntry};
use vqc_sim::circuit_unitary;

/// The compilation strategy to apply (Sections 2.3, 5, 6 and 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Lookup-table concatenation of per-gate pulses (the baseline).
    GateBased,
    /// Pre-compiled GRAPE pulses for parameterization-independent Fixed blocks,
    /// lookup-table pulses for the parameterized gates.
    StrictPartial,
    /// Single-θ blocks compiled at runtime by GRAPE with pre-tuned hyperparameters.
    FlexiblePartial,
    /// Full GRAPE over ≤4-qubit blocks at every variational iteration.
    FullGrape,
}

impl Strategy {
    /// All four strategies, in the order the paper's tables report them.
    pub fn all() -> [Strategy; 4] {
        [
            Strategy::GateBased,
            Strategy::StrictPartial,
            Strategy::FlexiblePartial,
            Strategy::FullGrape,
        ]
    }

    /// Short human-readable name matching the paper's table rows.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::GateBased => "Gate-based",
            Strategy::StrictPartial => "Strict Partial",
            Strategy::FlexiblePartial => "Flexible Partial",
            Strategy::FullGrape => "Full GRAPE",
        }
    }

    fn parameter_policy(&self) -> Option<ParameterPolicy> {
        match self {
            Strategy::GateBased => None,
            Strategy::StrictPartial => Some(ParameterPolicy::Forbid),
            Strategy::FlexiblePartial => Some(ParameterPolicy::AtMostOne),
            Strategy::FullGrape => Some(ParameterPolicy::Unlimited),
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Configuration of a [`PartialCompiler`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompilerOptions {
    /// Maximum block width handed to GRAPE (the paper uses 4).
    pub max_block_width: usize,
    /// Maximum number of operations aggregated into one GRAPE block. The paper places
    /// no such limit (at enormous compute cost); reduced effort levels cap it so block
    /// pulse optimizations stay tractable.
    pub max_block_ops: usize,
    /// GRAPE effort settings used for every block compilation.
    pub grape: GrapeOptions,
    /// Precision of the minimum-pulse-time binary search, in nanoseconds.
    pub search_precision_ns: f64,
    /// Gate durations used for the gate-based baseline and as GRAPE upper bounds.
    pub gate_times: GateTimes,
    /// Latency model converting GRAPE work into estimated seconds.
    pub latency_model: LatencyModel,
    /// Hyperparameter grid used by flexible partial compilation's pre-compute phase.
    pub hyperparameter_grid: HyperparameterGrid,
}

impl CompilerOptions {
    /// Fast settings for tests and the `fast` benchmark effort level.
    pub fn fast() -> Self {
        let mut grape = GrapeOptions::fast();
        grape.max_iterations = 150;
        grape.target_infidelity = 2e-2;
        CompilerOptions {
            max_block_width: 4,
            max_block_ops: 12,
            grape,
            search_precision_ns: 1.0,
            gate_times: GateTimes::default(),
            latency_model: LatencyModel::default(),
            hyperparameter_grid: HyperparameterGrid::fast(),
        }
    }

    /// Balanced settings (0.25 ns samples, 0.1 % infidelity target, 0.3 ns search
    /// precision as in the paper's footnote).
    pub fn standard() -> Self {
        CompilerOptions {
            max_block_width: 4,
            max_block_ops: 60,
            grape: GrapeOptions::standard(),
            search_precision_ns: 0.3,
            gate_times: GateTimes::default(),
            latency_model: LatencyModel::default(),
            hyperparameter_grid: HyperparameterGrid::standard(),
        }
    }

    /// The paper's settings (20 GSa/s sampling, 99.9 % target fidelity).
    pub fn paper() -> Self {
        CompilerOptions {
            max_block_width: 4,
            max_block_ops: usize::MAX,
            grape: GrapeOptions::paper(),
            search_precision_ns: 0.3,
            gate_times: GateTimes::default(),
            latency_model: LatencyModel::default(),
            hyperparameter_grid: HyperparameterGrid::standard(),
        }
    }
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions::standard()
    }
}

/// Per-block compilation outcome included in a [`CompilationReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockCompilation {
    /// Physical qubits of the block.
    pub qubits: Vec<usize>,
    /// Number of gate operations in the block.
    pub num_ops: usize,
    /// Pulse duration assigned to the block (ns).
    pub duration_ns: f64,
    /// Gate-based runtime of the block (ns), which is also GRAPE's search upper bound.
    pub gate_based_ns: f64,
    /// GRAPE iterations spent on this block during this compile call.
    pub grape_iterations: usize,
    /// Whether the block's pulse came from GRAPE (`true`) or the lookup table.
    pub used_grape: bool,
    /// Whether GRAPE reached the target fidelity (lookup blocks report `true`).
    pub converged: bool,
    /// Whether the result was served from the pulse library cache.
    pub cached: bool,
    /// Wall-clock seconds of pulse-level work (GRAPE / tuning) this compile call
    /// actually performed for the block. Cache hits and lookup-table blocks report
    /// `0.0`. This is the observed cost that feeds back into LPT scheduling and
    /// cost-aware eviction through [`PulseCache::record_observed_cost`].
    pub measured_seconds: f64,
    /// Per-phase attribution of `measured_seconds` when the compile-phase
    /// profiler is armed (`VQC_PROFILE`); empty (all zeros) otherwise and for
    /// cache hits / lookup-table blocks. The phase sum never exceeds
    /// `measured_seconds`.
    pub profile: CompileProfile,
}

/// The result of compiling one circuit with one strategy at one parameter binding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompilationReport {
    /// Strategy that produced this report.
    pub strategy: Strategy,
    /// Total pulse duration of the compiled circuit (ns) — the paper's primary metric.
    pub pulse_duration_ns: f64,
    /// Gate-based baseline duration of the same circuit (ns).
    pub gate_based_duration_ns: f64,
    /// Number of blocks the circuit was aggregated into (0 for gate-based).
    pub num_blocks: usize,
    /// Per-block details.
    pub blocks: Vec<BlockCompilation>,
    /// Compilation latency attributed to the pre-compute phase (before the variational
    /// loop starts).
    pub precompute: LatencyEstimate,
    /// Compilation latency attributed to runtime (paid at every variational iteration).
    pub runtime: LatencyEstimate,
}

impl CompilationReport {
    /// Pulse speedup factor relative to gate-based compilation (>1 means faster).
    pub fn pulse_speedup(&self) -> f64 {
        if self.pulse_duration_ns > 0.0 {
            self.gate_based_duration_ns / self.pulse_duration_ns
        } else {
            1.0
        }
    }
}

/// The blocking decision for one circuit under one strategy: everything the
/// per-block compilation steps need, produced once by [`PartialCompiler::plan`].
///
/// Splitting planning from block compilation is what lets `vqc-runtime` compile the
/// independent blocks of a plan on a worker pool: each block's
/// [`PartialCompiler::compile_block_outcome`] call is side-effect-free apart from
/// inserts into the shared [`PulseCache`], so blocks can run in any order and in
/// parallel, and [`PartialCompiler::assemble`] folds the outcomes back into the same
/// [`CompilationReport`] the sequential path produces.
#[derive(Debug, Clone)]
pub struct CompilationPlan {
    /// The optimized, basis-lowered circuit the blocks index into.
    pub prepared: Circuit,
    /// Gate-based critical-path duration of the prepared circuit (ns).
    pub gate_based_duration_ns: f64,
    /// The aggregated blocks (empty for the gate-based strategy).
    pub blocks: Vec<Block>,
    /// Strategy the plan was made for.
    pub strategy: Strategy,
}

impl CompilationPlan {
    /// The key under which a block's pulse-level work is cached, or `None` when the
    /// block needs no GRAPE work at all (single-gate lookup blocks, gate-based
    /// strategy). Two blocks with the same key perform identical GRAPE work, so a
    /// concurrent runtime deduplicates in-flight compilations on this key.
    pub fn dedup_key(&self, block: &Block, params: &[f64]) -> Option<BlockKey> {
        if self.strategy == Strategy::GateBased || block.len() <= 1 {
            return None;
        }
        let subcircuit = block.to_circuit(&self.prepared);
        if self.uses_structural_key(block) {
            Some(BlockKey::structural(&subcircuit))
        } else {
            Some(BlockKey::from_bound_circuit(&subcircuit.bind(params)))
        }
    }

    /// Whether this plan caches the block's pulse-level work under a *structural*
    /// (θ-independent) key: flexible runtime blocks cache their tuning per
    /// subcircuit structure, everything else per bound circuit.
    fn uses_structural_key(&self, block: &Block) -> bool {
        self.strategy == Strategy::FlexiblePartial && !block.is_fixed()
    }
}

/// The result of compiling one block of a [`CompilationPlan`]: the per-block report
/// plus the compilation latency the work incurred, attributed to its phase.
#[derive(Debug, Clone)]
pub struct BlockOutcome {
    /// Per-block compilation details.
    pub report: BlockCompilation,
    /// Latency attributed to the pre-compute phase by this block.
    pub precompute: LatencyEstimate,
    /// Latency attributed to the runtime phase by this block.
    pub runtime: LatencyEstimate,
}

/// The partial compiler: owns the configuration and a shared pulse cache.
#[derive(Debug)]
pub struct PartialCompiler {
    options: CompilerOptions,
    cache: Arc<dyn PulseCache>,
}

impl PartialCompiler {
    /// Creates a compiler with the given options and an empty in-process
    /// [`PulseLibrary`] cache.
    pub fn new(options: CompilerOptions) -> Self {
        PartialCompiler::with_cache(options, Arc::new(PulseLibrary::new()))
    }

    /// Creates a compiler backed by an externally owned cache (e.g. the sharded
    /// cache of `vqc-runtime`, shared across compilers and requests).
    pub fn with_cache(options: CompilerOptions, cache: Arc<dyn PulseCache>) -> Self {
        PartialCompiler { options, cache }
    }

    /// The compiler's configuration.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// The shared pulse cache (block compilations and tunings).
    pub fn library(&self) -> &dyn PulseCache {
        self.cache.as_ref()
    }

    /// A cloneable handle to the shared pulse cache.
    pub fn shared_cache(&self) -> Arc<dyn PulseCache> {
        Arc::clone(&self.cache)
    }

    /// Optimizes and lowers a circuit to the compilation basis — the preparation every
    /// strategy shares.
    pub fn prepare(&self, circuit: &Circuit) -> Circuit {
        passes::optimize(circuit)
    }

    /// Gate-based runtime (ns) of a circuit after preparation.
    pub fn gate_based_runtime_ns(&self, circuit: &Circuit) -> f64 {
        critical_path_ns(&self.prepare(circuit), &self.options.gate_times)
    }

    /// Compiles a circuit under a strategy at a concrete parameter binding.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::MissingParameters`] if `params` is shorter than the
    /// highest θ index the circuit references, or propagates circuit/pulse errors.
    pub fn compile(
        &self,
        circuit: &Circuit,
        params: &[f64],
        strategy: Strategy,
    ) -> Result<CompilationReport, CompileError> {
        let plan = self.plan(circuit, params, strategy)?;
        let mut outcomes = Vec::with_capacity(plan.blocks.len());
        for block in &plan.blocks {
            outcomes.push(self.compile_block_outcome(&plan, block, params)?);
        }
        Ok(self.assemble(&plan, outcomes))
    }

    /// Prepares a circuit and decides its blocking under a strategy, without doing any
    /// pulse-level work. The returned plan's blocks are independent: they can be fed
    /// to [`PartialCompiler::compile_block_outcome`] in any order (or concurrently)
    /// and folded back with [`PartialCompiler::assemble`].
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::MissingParameters`] if `params` is shorter than the
    /// highest θ index the circuit references.
    pub fn plan(
        &self,
        circuit: &Circuit,
        params: &[f64],
        strategy: Strategy,
    ) -> Result<CompilationPlan, CompileError> {
        let required = circuit
            .parameter_indices()
            .into_iter()
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        if params.len() < required {
            return Err(CompileError::MissingParameters {
                supplied: params.len(),
                required,
            });
        }

        let prepared = self.prepare(circuit);
        let gate_based_duration_ns = critical_path_ns(&prepared, &self.options.gate_times);
        let blocks = match strategy.parameter_policy() {
            None => Vec::new(),
            Some(policy) => aggregate_blocks_with_cap(
                &prepared,
                self.options.max_block_width,
                policy,
                self.options.max_block_ops,
            ),
        };
        Ok(CompilationPlan {
            prepared,
            gate_based_duration_ns,
            blocks,
            strategy,
        })
    }

    /// Folds per-block outcomes back into the report [`PartialCompiler::compile`]
    /// would have produced sequentially.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes` does not contain exactly one outcome per plan block, in
    /// plan order.
    pub fn assemble(
        &self,
        plan: &CompilationPlan,
        outcomes: Vec<BlockOutcome>,
    ) -> CompilationReport {
        assert_eq!(
            outcomes.len(),
            plan.blocks.len(),
            "assemble needs one outcome per planned block"
        );
        if plan.strategy.parameter_policy().is_none() {
            return CompilationReport {
                strategy: plan.strategy,
                pulse_duration_ns: plan.gate_based_duration_ns,
                gate_based_duration_ns: plan.gate_based_duration_ns,
                num_blocks: plan.prepared.len(),
                blocks: Vec::new(),
                precompute: LatencyEstimate::default(),
                runtime: LatencyEstimate::default(),
            };
        }

        let mut precompute = LatencyEstimate::default();
        let mut runtime = LatencyEstimate::default();
        let mut block_reports = Vec::with_capacity(outcomes.len());
        let mut durations: Vec<(Vec<usize>, f64)> = Vec::with_capacity(outcomes.len());
        for (block, outcome) in plan.blocks.iter().zip(outcomes) {
            precompute.accumulate(&outcome.precompute);
            runtime.accumulate(&outcome.runtime);
            durations.push((block.qubits.clone(), outcome.report.duration_ns));
            block_reports.push(outcome.report);
        }

        let (_placement, blocked_duration_ns) =
            schedule_blocks(plan.prepared.num_qubits(), &durations);
        // Section 5.2: the paper's aggregation only accepts blockings that do not delay
        // execution, so GRAPE-style strategies are strictly better than gate-based
        // compilation. Our greedy aggregation can occasionally serialize gates that the
        // gate-level ASAP schedule overlapped; when that happens the compiler falls back
        // to emitting the gate-based pulse schedule, preserving the guarantee.
        let pulse_duration_ns = blocked_duration_ns.min(plan.gate_based_duration_ns);

        CompilationReport {
            strategy: plan.strategy,
            pulse_duration_ns,
            gate_based_duration_ns: plan.gate_based_duration_ns,
            num_blocks: plan.blocks.len(),
            blocks: block_reports,
            precompute,
            runtime,
        }
    }

    /// Estimated seconds of GRAPE work compiling this block of the plan will cost if
    /// nothing is cached — the block's *processing time* for scheduling purposes.
    ///
    /// Once the block's cache key has been compiled for real anywhere in the
    /// process (or a warm-started predecessor recorded it), the measured wall time
    /// of that run replaces the model: observed costs are exact where the a-priori
    /// formula only ranks. Unseen blocks fall back to the [`LatencyModel`]'s work
    /// formula: the block width fixes the device (Hilbert dimension `dim³` and
    /// control count), the gate-based duration of the bound subcircuit fixes both
    /// the number of pulse slices and the binary-search window (probe count ≈
    /// log₂(window / precision)), and each probe spends up to
    /// `grape.max_iterations` iterations. The absolute scale is irrelevant to its
    /// only consumer — ordering block tasks longest-processing-time-first so a
    /// worker pool's makespan shrinks — but it is monotone in everything that makes
    /// a block expensive. (Observed costs are host seconds while model estimates
    /// are paper-scale seconds; the mixed regime only lasts until a workload's
    /// recurring blocks have each run once.)
    ///
    /// Blocks that do no pulse-level work (gate-based strategy, single-gate lookup
    /// blocks) cost zero.
    pub fn estimate_block_cost_seconds(
        &self,
        plan: &CompilationPlan,
        block: &Block,
        params: &[f64],
    ) -> f64 {
        if plan.strategy == Strategy::GateBased || block.len() <= 1 {
            return 0.0;
        }
        // Build the subcircuit once: the cache key (mirroring
        // [`CompilationPlan::dedup_key`]) and the model fallback share it, so a
        // cold batch does not pay double circuit construction per block.
        let subcircuit = block.to_circuit(&plan.prepared);
        let bound = subcircuit.bind(params);
        let key = if plan.uses_structural_key(block) {
            BlockKey::structural(&subcircuit)
        } else {
            BlockKey::from_bound_circuit(&bound)
        };
        if let Some(observed) = self.cache.observed_cost(&key) {
            return observed;
        }
        let window_ns = critical_path_ns(&bound, &self.options.gate_times);
        let model = self.model_block_cost_seconds(block.qubits.len(), window_ns);
        // Once enough (estimate, observation) pairs have been recorded, the fitted
        // model→host scale converts the paper-scale estimate into calibrated host
        // seconds, putting never-seen blocks on the same axis as observed ones.
        model * self.cache.cost_model_scale().unwrap_or(1.0)
    }

    /// The raw (uncalibrated) latency-model estimate of compiling a
    /// `num_qubits`-wide block whose minimum-time binary search spans `window_ns`:
    /// the window and precision fix the probe count, each probe spends up to
    /// `grape.max_iterations` iterations, and the width fixes the per-iteration
    /// work. This exact value is what gets paired with observed wall times for
    /// [`PulseCache::record_cost_sample`], so the calibration's domain and the
    /// estimator's fallback are always the same quantity.
    fn model_block_cost_seconds(&self, num_qubits: usize, window_ns: f64) -> f64 {
        let probes = (window_ns / self.options.search_precision_ns.max(1e-9))
            .max(1.0)
            .log2()
            .ceil()
            .max(0.0) as usize
            + 1;
        self.options.latency_model.block_work_seconds(
            probes * self.options.grape.max_iterations,
            window_ns,
            self.options.grape.dt_ns,
            num_qubits,
        )
    }

    /// Compiles a single block of a plan, returning its report together with the
    /// latency it incurred in each phase. Results of pulse-level work are cached in
    /// the shared [`PulseCache`], so re-compiling an identical block is a lookup.
    pub fn compile_block_outcome(
        &self,
        plan: &CompilationPlan,
        block: &Block,
        params: &[f64],
    ) -> Result<BlockOutcome, CompileError> {
        let mut precompute = LatencyEstimate::default();
        let mut runtime = LatencyEstimate::default();
        let report = self.compile_block(
            &plan.prepared,
            block,
            params,
            plan.strategy,
            &mut precompute,
            &mut runtime,
        )?;
        Ok(BlockOutcome {
            report,
            precompute,
            runtime,
        })
    }

    /// Compiles a single block, updating the latency accumulators of the phase the work
    /// belongs to under the given strategy.
    fn compile_block(
        &self,
        prepared: &Circuit,
        block: &Block,
        params: &[f64],
        strategy: Strategy,
        precompute: &mut LatencyEstimate,
        runtime: &mut LatencyEstimate,
    ) -> Result<BlockCompilation, CompileError> {
        let subcircuit = block.to_circuit(prepared);
        let bound = subcircuit.bind(params);
        let gate_based_ns = critical_path_ns(&bound, &self.options.gate_times);

        // Single-gate blocks are exactly what the lookup table already stores (Table 1
        // durations are themselves GRAPE-derived), so no pulse optimization is needed.
        if block.len() <= 1 {
            return Ok(BlockCompilation {
                qubits: block.qubits.clone(),
                num_ops: block.len(),
                duration_ns: gate_based_ns,
                gate_based_ns,
                grape_iterations: 0,
                used_grape: false,
                converged: true,
                cached: false,
                measured_seconds: 0.0,
                profile: CompileProfile::default(),
            });
        }

        let width = block.qubits.len();
        let device = DeviceModel::qubits_line(width);
        let slices = (gate_based_ns / self.options.grape.dt_ns).ceil().max(1.0) as usize;
        let dim = device.dim();
        let controls = device.num_controls();

        match strategy {
            Strategy::GateBased => {
                unreachable!("gate-based compilation never reaches block compilation")
            }
            Strategy::StrictPartial | Strategy::FullGrape => {
                let (cached_entry, cached, measured, block_profile) =
                    self.grape_block(&subcircuit, &bound, &device, gate_based_ns)?;
                // Latency is only paid when the pulse library misses; a cache hit is a
                // (near-instant) lookup.
                if !cached {
                    let estimate = LatencyEstimate {
                        grape_iterations: cached_entry.grape_iterations,
                        estimated_seconds: self.options.latency_model.estimate_seconds(
                            cached_entry.grape_iterations,
                            slices,
                            dim,
                            controls,
                        ),
                        measured_seconds: measured,
                    };
                    // Strict partial compilation only ever GRAPE-compiles Fixed blocks,
                    // and does so before the variational loop starts; full GRAPE pays
                    // the same work at every iteration (with a fresh θ, so it rarely
                    // hits the cache).
                    match strategy {
                        Strategy::StrictPartial => precompute.accumulate(&estimate),
                        _ => runtime.accumulate(&estimate),
                    }
                }
                Ok(BlockCompilation {
                    qubits: block.qubits.clone(),
                    num_ops: block.len(),
                    duration_ns: cached_entry.duration_ns,
                    gate_based_ns,
                    grape_iterations: cached_entry.grape_iterations,
                    used_grape: true,
                    converged: cached_entry.converged,
                    cached,
                    measured_seconds: measured,
                    profile: block_profile,
                })
            }
            Strategy::FlexiblePartial => {
                if block.is_fixed() {
                    // Fixed blocks are pre-compiled exactly as in strict partial
                    // compilation.
                    let (cached_entry, cached, measured, block_profile) =
                        self.grape_block(&subcircuit, &bound, &device, gate_based_ns)?;
                    if !cached {
                        precompute.accumulate(&LatencyEstimate {
                            grape_iterations: cached_entry.grape_iterations,
                            estimated_seconds: self.options.latency_model.estimate_seconds(
                                cached_entry.grape_iterations,
                                slices,
                                dim,
                                controls,
                            ),
                            measured_seconds: measured,
                        });
                    }
                    return Ok(BlockCompilation {
                        qubits: block.qubits.clone(),
                        num_ops: block.len(),
                        duration_ns: cached_entry.duration_ns,
                        gate_based_ns,
                        grape_iterations: cached_entry.grape_iterations,
                        used_grape: true,
                        converged: cached_entry.converged,
                        cached,
                        measured_seconds: measured,
                        profile: block_profile,
                    });
                }

                let structural_key = BlockKey::structural(&subcircuit);
                let (tuning, cached, tuning_measured, block_profile) =
                    match self.cache.tuning(&structural_key) {
                        Some(entry) => (entry, true, 0.0, CompileProfile::default()),
                        None => {
                            let started = Instant::now();
                            profile::begin_block();
                            let entry = self.tune_flexible_block(
                                &structural_key,
                                &bound,
                                &device,
                                gate_based_ns,
                            )?;
                            let measured = started.elapsed().as_secs_f64();
                            let block_profile = profile::take_block().unwrap_or_default();
                            precompute.accumulate(&LatencyEstimate {
                                grape_iterations: entry.precompute_iterations,
                                estimated_seconds: self.options.latency_model.estimate_seconds(
                                    entry.precompute_iterations,
                                    slices,
                                    dim,
                                    controls,
                                ),
                                measured_seconds: measured,
                            });
                            // Record before inserting, as in `grape_block`: the insert's
                            // eviction metadata then reflects the measured tuning cost.
                            // No calibration sample is recorded here: the measured time
                            // covers a whole hyperparameter grid of GRAPE probes plus a
                            // duration search, while `model_block_cost_seconds` models a
                            // single block compilation — pairing the two would inflate
                            // the fitted scale for every unseen block. The observed
                            // cost above already ranks this key correctly.
                            self.cache.record_observed_cost(&structural_key, measured);
                            self.cache.insert_tuning(structural_key, entry.clone());
                            (entry, false, measured, block_profile)
                        }
                    };

                // At runtime every new θ needs one GRAPE run at the pre-computed
                // duration with the tuned hyperparameters; its cost is the tuned
                // convergence profile recorded during pre-compute.
                runtime.accumulate(&LatencyEstimate {
                    grape_iterations: tuning.runtime_iterations,
                    estimated_seconds: self.options.latency_model.estimate_seconds(
                        tuning.runtime_iterations,
                        slices,
                        dim,
                        controls,
                    ),
                    measured_seconds: 0.0,
                });

                let duration_ns = if tuning.converged {
                    tuning.duration_ns
                } else {
                    gate_based_ns
                };
                Ok(BlockCompilation {
                    qubits: block.qubits.clone(),
                    num_ops: block.len(),
                    duration_ns,
                    gate_based_ns,
                    grape_iterations: tuning.runtime_iterations,
                    used_grape: tuning.converged,
                    converged: tuning.converged,
                    cached,
                    measured_seconds: tuning_measured,
                    profile: block_profile,
                })
            }
        }
    }

    /// Minimum-time GRAPE compilation of a bound block, with caching. Returns the
    /// cached entry, whether it was a cache hit, and the wall-clock seconds of
    /// GRAPE work this call performed (`0.0` on a hit). Real compilations record
    /// their observed cost *before* inserting the entry, so the cache's eviction
    /// metadata ranks the fresh entry by what it actually cost to produce.
    ///
    /// On a bound-cache miss the compiler probes the transposition table under
    /// the block's *structural* key: a neighbor with the same structure at a
    /// different θ seeds the duration search's window and warm-starts its probes
    /// (Figure 4: structure, not binding, dominates GRAPE behavior). The finished
    /// search is folded back into the table either way, so every real compile
    /// deepens the warm-start index.
    fn grape_block(
        &self,
        subcircuit: &Circuit,
        bound: &Circuit,
        device: &DeviceModel,
        upper_bound_ns: f64,
    ) -> Result<(CachedBlock, bool, f64, CompileProfile), CompileError> {
        let key = BlockKey::from_bound_circuit(bound);
        if let Some(entry) = self.cache.block(&key) {
            return Ok((entry, true, 0.0, CompileProfile::default()));
        }
        let structural_key = BlockKey::structural(subcircuit);
        // The timer starts before the warm-start probe so the MemoProbe phase
        // falls inside the measured window the profile attributes.
        let started = Instant::now();
        profile::begin_block();
        let seed = {
            let _probe = profile::scope(Phase::MemoProbe);
            self.cache.seed(&structural_key)
        };
        let target = circuit_unitary(bound);
        let search = MinimumTimeOptions::new(0.0, upper_bound_ns)
            .with_precision(self.options.search_precision_ns);
        let mut memo = EigenMemo::new();
        let search_seed = seed.as_ref().map(SeedEntry::search_seed);
        let result = minimum_pulse_time_seeded(
            &target,
            device,
            &search,
            &self.options.grape,
            &mut memo,
            search_seed.as_ref(),
        )?;
        let measured = started.elapsed().as_secs_f64();
        let block_profile = profile::take_block().unwrap_or_default();
        let entry = CachedBlock {
            duration_ns: if result.converged {
                result.duration_ns
            } else {
                upper_bound_ns
            },
            converged: result.converged,
            grape_iterations: result.total_iterations(),
        };
        self.cache.record_observed_cost(&key, measured);
        // A seeded search spends far fewer iterations than the a-priori model
        // assumes, so pairing its wall time with the cold-search estimate would
        // drag the fitted model→host scale down for every unseen block. Only
        // cold searches calibrate; seeded ones still record their observed cost.
        if seed.is_none() {
            self.cache.record_cost_sample(
                self.model_block_cost_seconds(bound.num_qubits(), upper_bound_ns),
                measured,
            );
        }
        self.cache.insert_block(key, entry.clone());
        self.record_search_feedback(&structural_key, &self.options.grape, false, &result);
        self.cache
            .record_memo_outcome(memo.hits(), memo.misses(), memo.rejected_inserts());
        Ok((entry, false, measured, block_profile))
    }

    /// Folds a finished duration search back into the warm-start index: the
    /// converged duration and its pulse, the tightest non-converging lower
    /// bound, and the per-probe iteration counts become (or tighten, via the
    /// table's merge policy) the seed every structural neighbor starts from.
    fn record_search_feedback(
        &self,
        structural_key: &BlockKey,
        grape: &GrapeOptions,
        tuned: bool,
        result: &MinimumTimeResult,
    ) {
        let mut entry = SeedEntry {
            learning_rate: grape.learning_rate,
            decay_rate: grape.decay_rate,
            tuned,
            converged_duration_ns: result.converged.then_some(result.duration_ns),
            failed_below_ns: 0.0,
            probe_iterations: Vec::new(),
            pulse: result.best.as_ref().map(|best| best.pulse.clone()),
        };
        for probe in &result.probes {
            if !probe.converged {
                entry.failed_below_ns = entry.failed_below_ns.max(probe.duration_ns);
            }
            entry.record_probe(probe.duration_ns, probe.iterations);
        }
        self.cache.record_seed(structural_key, entry);
        self.cache
            .record_search_outcome(result.seeded, result.total_iterations() as u64);
    }

    /// Flexible partial compilation pre-compute for a single-θ block: tune the
    /// hyperparameters at the gate-based upper bound, then binary-search the minimum
    /// duration with the tuned configuration.
    ///
    /// A *tuned, converged* transposition-table entry for the same structure
    /// answers the hyperparameter grid outright — Figure 4's observation that the
    /// tuned configuration is θ-robust — so only the (seeded) duration search
    /// remains. Untuned seeds (e.g. from full-GRAPE searches of the same
    /// structure) still seed the search window without skipping the grid.
    fn tune_flexible_block(
        &self,
        structural_key: &BlockKey,
        bound_reference: &Circuit,
        device: &DeviceModel,
        upper_bound_ns: f64,
    ) -> Result<CachedTuning, CompileError> {
        let seed = {
            let _probe = profile::scope(Phase::MemoProbe);
            self.cache.seed(structural_key)
        };
        let (learning_rate, decay_rate, grid_iterations, fallback_runtime) = match &seed {
            Some(entry) if entry.tuned && entry.converged() => (
                entry.learning_rate,
                entry.decay_rate,
                0,
                self.options.grape.max_iterations,
            ),
            _ => {
                let tuning = tune_hyperparameters(
                    bound_reference,
                    device,
                    upper_bound_ns,
                    &self.options.grape,
                    &self.options.hyperparameter_grid,
                )?;
                (
                    tuning.learning_rate,
                    tuning.decay_rate,
                    tuning.total_probe_iterations(),
                    tuning.runtime_iterations,
                )
            }
        };
        let tuned_options = self
            .options
            .grape
            .with_hyperparameters(learning_rate, decay_rate);
        let target = circuit_unitary(bound_reference);
        let search = MinimumTimeOptions::new(0.0, upper_bound_ns)
            .with_precision(self.options.search_precision_ns);
        let mut memo = EigenMemo::new();
        let search_seed = seed.as_ref().map(SeedEntry::search_seed);
        let mintime = minimum_pulse_time_seeded(
            &target,
            device,
            &search,
            &tuned_options,
            &mut memo,
            search_seed.as_ref(),
        )?;
        self.record_search_feedback(structural_key, &tuned_options, true, &mintime);
        self.cache
            .record_memo_outcome(memo.hits(), memo.misses(), memo.rejected_inserts());
        let runtime_iterations = mintime
            .best
            .as_ref()
            .map(|best| best.iterations)
            .unwrap_or(fallback_runtime);
        Ok(CachedTuning {
            learning_rate,
            decay_rate,
            duration_ns: if mintime.converged {
                mintime.duration_ns
            } else {
                upper_bound_ns
            },
            converged: mintime.converged,
            precompute_iterations: grid_iterations + mintime.total_iterations(),
            runtime_iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqc_circuit::ParamExpr;

    /// A Figure-3-style two-qubit variational circuit: deep fixed sections interleaved
    /// with parameterized Rz gates.
    fn example_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(1);
        c.cx(0, 1);
        c.rz_expr(1, ParamExpr::theta(0));
        c.cx(0, 1);
        c.rx(0, 1.1);
        c.cx(0, 1);
        c.rz_expr(1, ParamExpr::theta(1));
        c.cx(0, 1);
        c.h(0);
        c.h(1);
        c
    }

    fn compiler() -> PartialCompiler {
        PartialCompiler::new(CompilerOptions::fast())
    }

    #[test]
    fn gate_based_report_matches_critical_path() {
        let compiler = compiler();
        let circuit = example_circuit();
        let report = compiler
            .compile(&circuit, &[0.3, 0.9], Strategy::GateBased)
            .unwrap();
        assert_eq!(report.pulse_duration_ns, report.gate_based_duration_ns);
        assert!((report.pulse_speedup() - 1.0).abs() < 1e-12);
        assert_eq!(report.runtime.grape_iterations, 0);
        assert_eq!(report.precompute.grape_iterations, 0);
    }

    #[test]
    fn missing_parameters_are_rejected() {
        let compiler = compiler();
        let circuit = example_circuit();
        assert!(matches!(
            compiler.compile(&circuit, &[0.3], Strategy::GateBased),
            Err(CompileError::MissingParameters {
                supplied: 1,
                required: 2
            })
        ));
    }

    #[test]
    fn strict_partial_is_never_slower_than_gate_based() {
        let compiler = compiler();
        let circuit = example_circuit();
        let params = [0.4, 1.2];
        let gate = compiler
            .compile(&circuit, &params, Strategy::GateBased)
            .unwrap();
        let strict = compiler
            .compile(&circuit, &params, Strategy::StrictPartial)
            .unwrap();
        assert!(strict.pulse_duration_ns <= gate.pulse_duration_ns + 1e-9);
        // Strict pays no runtime GRAPE latency.
        assert_eq!(strict.runtime.grape_iterations, 0);
        assert!(strict.precompute.grape_iterations > 0);
        assert!(strict.num_blocks > 0);
    }

    #[test]
    fn full_grape_is_at_least_as_fast_as_strict_and_pays_runtime_latency() {
        let compiler = compiler();
        let circuit = example_circuit();
        let params = [0.4, 1.2];
        let strict = compiler
            .compile(&circuit, &params, Strategy::StrictPartial)
            .unwrap();
        let full = compiler
            .compile(&circuit, &params, Strategy::FullGrape)
            .unwrap();
        assert!(full.pulse_duration_ns <= strict.pulse_duration_ns + 1e-9);
        assert!(full.runtime.grape_iterations > 0);
        assert_eq!(full.precompute.grape_iterations, 0);
        assert!(full.pulse_speedup() >= 1.0 - 1e-9);
    }

    #[test]
    fn flexible_matches_grape_durations_with_lower_runtime_latency() {
        let compiler = compiler();
        let circuit = example_circuit();
        let params = [0.4, 1.2];
        let full = compiler
            .compile(&circuit, &params, Strategy::FullGrape)
            .unwrap();
        let strict = compiler
            .compile(&circuit, &params, Strategy::StrictPartial)
            .unwrap();
        let flexible = compiler
            .compile(&circuit, &params, Strategy::FlexiblePartial)
            .unwrap();
        // Flexible sits between strict partial compilation and full GRAPE in pulse
        // duration (it only ties GRAPE exactly when every GRAPE block depends on at
        // most one parameter, which this deliberately-small example violates).
        assert!(flexible.pulse_duration_ns <= strict.pulse_duration_ns + 1e-9);
        assert!(flexible.pulse_duration_ns + 1e-9 >= full.pulse_duration_ns);
        assert!(flexible.pulse_duration_ns <= flexible.gate_based_duration_ns + 1e-9);
        // ...while its runtime latency is below full GRAPE's (no binary search, tuned
        // hyperparameters).
        assert!(
            flexible.runtime.grape_iterations < full.runtime.grape_iterations,
            "flexible {} vs full {}",
            flexible.runtime.grape_iterations,
            full.runtime.grape_iterations
        );
        assert!(flexible.precompute.grape_iterations > 0);
    }

    #[test]
    fn second_compile_hits_the_cache() {
        let compiler = compiler();
        let circuit = example_circuit();
        let params = [0.4, 1.2];
        let first = compiler
            .compile(&circuit, &params, Strategy::StrictPartial)
            .unwrap();
        let second = compiler
            .compile(&circuit, &params, Strategy::StrictPartial)
            .unwrap();
        assert_eq!(first.pulse_duration_ns, second.pulse_duration_ns);
        assert!(second
            .blocks
            .iter()
            .filter(|b| b.used_grape)
            .all(|b| b.cached));
        assert!(compiler.library().num_blocks() > 0);
    }

    #[test]
    fn flexible_runtime_latency_is_stable_across_parameter_changes() {
        // After pre-compute at one θ, compiling at a different θ must not pay the
        // tuning cost again (that is the whole point of flexible partial compilation).
        let compiler = compiler();
        let circuit = example_circuit();
        let first = compiler
            .compile(&circuit, &[0.4, 1.2], Strategy::FlexiblePartial)
            .unwrap();
        let second = compiler
            .compile(&circuit, &[2.0, -0.7], Strategy::FlexiblePartial)
            .unwrap();
        assert!(first.precompute.grape_iterations > 0);
        assert_eq!(second.precompute.grape_iterations, 0);
        assert!(second.runtime.grape_iterations > 0);
    }

    #[test]
    fn block_cost_estimates_order_blocks_by_expense() {
        let compiler = compiler();
        let params = [0.4, 1.2];

        // Gate-based plans cost nothing at the block level.
        let circuit = example_circuit();
        let gate_plan = compiler
            .plan(&circuit, &params, Strategy::GateBased)
            .unwrap();
        assert!(gate_plan.blocks.is_empty());

        let strict = compiler
            .plan(&circuit, &params, Strategy::StrictPartial)
            .unwrap();
        let costs: Vec<f64> = strict
            .blocks
            .iter()
            .map(|b| compiler.estimate_block_cost_seconds(&strict, b, &params))
            .collect();
        // Single-gate lookup blocks are free; multi-gate GRAPE blocks are not.
        for (block, cost) in strict.blocks.iter().zip(&costs) {
            if block.len() <= 1 {
                assert_eq!(*cost, 0.0);
            } else {
                assert!(*cost > 0.0, "GRAPE block must have positive cost");
            }
        }

        // A wider and deeper block dominates a narrow shallow one.
        let mut wide = Circuit::new(4);
        for q in 0..4 {
            wide.h(q);
        }
        for q in 0..3 {
            wide.cx(q, q + 1);
            wide.rx(q, 0.3 + q as f64);
            wide.cx(q, q + 1);
        }
        let wide_plan = compiler.plan(&wide, &[], Strategy::FullGrape).unwrap();
        let wide_cost: f64 = wide_plan
            .blocks
            .iter()
            .map(|b| compiler.estimate_block_cost_seconds(&wide_plan, b, &[]))
            .fold(0.0, f64::max);
        let narrow_cost = costs.iter().copied().fold(0.0, f64::max);
        assert!(
            wide_cost > narrow_cost,
            "4-qubit block ({wide_cost} s) must out-cost 2-qubit block ({narrow_cost} s)"
        );
    }

    #[test]
    fn estimates_switch_to_observed_costs_after_a_block_runs() {
        let compiler = compiler();
        let circuit = example_circuit();
        let params = [0.4, 1.2];
        let plan = compiler
            .plan(&circuit, &params, Strategy::StrictPartial)
            .unwrap();
        let grape_blocks: Vec<_> = plan.blocks.iter().filter(|b| b.len() > 1).collect();
        assert!(!grape_blocks.is_empty());
        let before: Vec<f64> = grape_blocks
            .iter()
            .map(|b| compiler.estimate_block_cost_seconds(&plan, b, &params))
            .collect();

        let report = compiler
            .compile(&circuit, &params, Strategy::StrictPartial)
            .unwrap();
        // Every real (uncached) GRAPE block reports the wall time it cost...
        for block in report.blocks.iter().filter(|b| b.used_grape && !b.cached) {
            assert!(block.measured_seconds > 0.0);
        }
        // ...and that observation replaces the a-priori model in the estimator.
        for (block, a_priori) in grape_blocks.iter().zip(&before) {
            let key = plan
                .dedup_key(block, &params)
                .expect("GRAPE block has a key");
            let observed = compiler
                .library()
                .observed_cost(&key)
                .expect("compiled block records its cost");
            let after = compiler.estimate_block_cost_seconds(&plan, block, &params);
            assert_eq!(after, observed);
            assert_ne!(after, *a_priori, "estimate must switch to the observation");
        }
        // Cache hits do not overwrite the recorded cost with a zero.
        let report = compiler
            .compile(&circuit, &params, Strategy::StrictPartial)
            .unwrap();
        for block in report.blocks.iter().filter(|b| b.used_grape) {
            assert!(block.cached);
            assert_eq!(block.measured_seconds, 0.0);
        }
        for block in &grape_blocks {
            let key = plan.dedup_key(block, &params).unwrap();
            assert!(compiler.library().observed_cost(&key).unwrap() > 0.0);
        }
    }

    #[test]
    fn unseen_block_estimates_are_scaled_by_the_fitted_calibration() {
        let calibrated = compiler();
        // Three distinct fixed sections → at least three real GRAPE compilations,
        // each recording one (model estimate, observed seconds) calibration pair.
        for i in 0..3 {
            let mut circuit = Circuit::new(2);
            circuit.h(0);
            circuit.cx(0, 1);
            circuit.rx(0, 0.3 + 0.4 * i as f64);
            circuit.cx(0, 1);
            calibrated
                .compile(&circuit, &[], Strategy::StrictPartial)
                .unwrap();
        }
        let scale = calibrated
            .library()
            .cost_model_scale()
            .expect("three real compilations calibrate the model");
        assert!(scale > 0.0 && scale.is_finite());

        // A circuit no compiler has seen: the calibrated compiler's estimate for
        // its GRAPE blocks must be exactly the uncalibrated estimate times the
        // fitted scale (observed-cost feedback cannot apply — nothing ran).
        let mut unseen = Circuit::new(3);
        for q in 0..3 {
            unseen.h(q);
        }
        unseen.cx(0, 1);
        unseen.cx(1, 2);
        unseen.rx(1, 1.9);
        unseen.cx(0, 1);
        let fresh = compiler();
        let calibrated_plan = calibrated.plan(&unseen, &[], Strategy::FullGrape).unwrap();
        let fresh_plan = fresh.plan(&unseen, &[], Strategy::FullGrape).unwrap();
        assert_eq!(calibrated_plan.blocks.len(), fresh_plan.blocks.len());
        let mut checked = 0;
        for (block, fresh_block) in calibrated_plan.blocks.iter().zip(&fresh_plan.blocks) {
            if block.len() <= 1 {
                continue;
            }
            let raw = fresh.estimate_block_cost_seconds(&fresh_plan, fresh_block, &[]);
            let scaled = calibrated.estimate_block_cost_seconds(&calibrated_plan, block, &[]);
            assert!(
                (scaled - raw * scale).abs() <= 1e-9 * raw.max(1.0),
                "calibrated {scaled} vs raw {raw} × scale {scale}"
            );
            checked += 1;
        }
        assert!(checked > 0, "the unseen circuit must contain GRAPE blocks");
    }

    #[test]
    fn repeat_structure_compiles_are_seeded_and_never_slower_than_gate_based() {
        // The same subcircuit at a fresh θ misses the bound-key cache but hits
        // the transposition table under the structural key: the second compile's
        // duration search opens at the first one's converged window and spends
        // no more GRAPE iterations than the cold search did. The table is
        // armed explicitly so the test is independent of `VQC_TT`.
        let compiler = PartialCompiler::with_cache(
            CompilerOptions::fast(),
            Arc::new(PulseLibrary::with_seed_table(
                vqc_pulse::TableConfig::default(),
            )),
        );
        let mut circuit = Circuit::new(1);
        circuit.h(0);
        circuit.rz_expr(0, ParamExpr::theta(0));
        circuit.h(0);

        // Small rotations of the same structure share a converged window, so the
        // second compile's opening probe (the neighbor's window) converges
        // rather than going stale.
        let cold = compiler
            .compile(&circuit, &[0.4], Strategy::FullGrape)
            .unwrap();
        let cold_iterations: usize = cold.blocks.iter().map(|b| b.grape_iterations).sum();
        assert!(cold_iterations > 0);
        assert!(
            cold.blocks.iter().any(|b| b.used_grape && b.converged),
            "the 1-qubit block must converge so its window can seed"
        );
        assert_eq!(compiler.library().warm_start_stats().table_hits, 0);

        let seeded = compiler
            .compile(&circuit, &[0.7], Strategy::FullGrape)
            .unwrap();
        let seeded_iterations: usize = seeded.blocks.iter().map(|b| b.grape_iterations).sum();
        let stats = compiler.library().warm_start_stats();
        assert!(
            stats.table_hits >= 1,
            "fresh θ must hit the structural seed"
        );
        assert!(stats.seeded_iterations > 0);
        assert!(
            seeded_iterations <= cold_iterations,
            "seeded {seeded_iterations} vs cold {cold_iterations}"
        );
        // Correctness is unchanged: the seeded result still meets the paper's
        // never-slower-than-gate-based guarantee.
        assert!(seeded.pulse_duration_ns <= seeded.gate_based_duration_ns + 1e-9);
        for block in seeded.blocks.iter().filter(|b| b.used_grape) {
            assert!(block.duration_ns <= block.gate_based_ns + 1e-9);
        }
    }

    #[test]
    fn tuned_seed_skips_the_hyperparameter_grid_for_flexible_blocks() {
        // Two compilers sharing one cache: after the first tunes a flexible
        // block, wiping the tuning cache (but not the seeds) makes the second
        // re-tune — which the tuned seed answers without re-running the grid,
        // so its pre-compute latency collapses to the seeded duration search.
        let shared = Arc::new(PulseLibrary::with_seed_table(
            vqc_pulse::TableConfig::default(),
        ));
        let first = PartialCompiler::with_cache(CompilerOptions::fast(), shared.clone());
        let circuit = example_circuit();
        let report = first
            .compile(&circuit, &[0.4, 1.2], Strategy::FlexiblePartial)
            .unwrap();
        assert!(report.precompute.grape_iterations > 0);

        shared.clear(); // drops blocks and tunings; seeds survive like observed costs
        let again = first
            .compile(&circuit, &[0.7, -0.2], Strategy::FlexiblePartial)
            .unwrap();
        assert!(
            again.precompute.grape_iterations < report.precompute.grape_iterations,
            "seeded re-tune {} must undercut the cold grid {}",
            again.precompute.grape_iterations,
            report.precompute.grape_iterations
        );
        assert!(again.pulse_duration_ns <= again.gate_based_duration_ns + 1e-9);
    }

    #[test]
    fn strategy_names_cover_all_variants() {
        let names: Vec<&str> = Strategy::all().iter().map(Strategy::name).collect();
        assert_eq!(
            names,
            vec![
                "Gate-based",
                "Strict Partial",
                "Flexible Partial",
                "Full GRAPE"
            ]
        );
        assert_eq!(Strategy::FullGrape.to_string(), "Full GRAPE");
    }
}
