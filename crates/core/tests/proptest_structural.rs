//! Property tests of the warm-start index's structural keys.
//!
//! The transposition table keys entries by [`BlockKey::structural`], which the
//! paper's Figure-4 observation justifies: hyperparameters and minimum
//! durations transfer across θ for the same subcircuit structure. These
//! properties pin down what "same structure" means: the key must be invariant
//! to the θ values a block is later bound with *and* to how the parameter slots
//! are numbered, while still distinguishing genuinely different structures
//! (different gates, different qubits, different constant angles).

use proptest::prelude::*;
use vqc_circuit::{Circuit, ParamExpr};
use vqc_core::BlockKey;

/// One gate of a generated block structure. Parameterized slots carry no index:
/// the builder assigns parameter numbers in encounter order, so two specs with
/// equal gate lists describe the same structure even though the builders below
/// may number (and bind) their θ slots differently.
#[derive(Debug, Clone, PartialEq)]
enum GateSpec {
    H(usize),
    Cx(usize, usize),
    RzConst(usize, f64),
    RzTheta(usize),
}

fn arb_gate(qubits: usize) -> impl Strategy<Value = GateSpec> {
    let q = 0..qubits;
    prop_oneof![
        q.clone().prop_map(GateSpec::H),
        (q.clone(), q.clone()).prop_map(move |(a, b)| {
            if a == b {
                GateSpec::Cx(a, (a + 1) % qubits)
            } else {
                GateSpec::Cx(a, b)
            }
        }),
        (q.clone(), -3.0..3.0f64).prop_map(|(q, angle)| GateSpec::RzConst(q, angle)),
        q.prop_map(GateSpec::RzTheta),
    ]
}

/// Random ≤4-qubit-rule block structures over a fixed 2-qubit space (the shim
/// has no `prop_flat_map`, so the qubit count does not itself vary; gate
/// choice, placement, and parameterization do).
fn arb_structure() -> impl Strategy<Value = (usize, Vec<GateSpec>)> {
    prop::collection::vec(arb_gate(2), 1..8).prop_map(|gates| (2, gates))
}

/// Builds the spec into a circuit, numbering parameterized slots from
/// `first_param` upward in encounter order. Returns the circuit and how many
/// parameter slots it uses.
fn build(qubits: usize, gates: &[GateSpec], first_param: usize) -> (Circuit, usize) {
    let mut circuit = Circuit::new(qubits);
    let mut next_param = first_param;
    for gate in gates {
        match gate {
            GateSpec::H(q) => circuit.h(*q),
            GateSpec::Cx(c, t) => circuit.cx(*c, *t),
            GateSpec::RzConst(q, angle) => circuit.rz(*q, *angle),
            GateSpec::RzTheta(q) => {
                circuit.rz_expr(*q, ParamExpr::theta(next_param));
                next_param += 1;
            }
        }
    }
    (circuit, next_param - first_param)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The structural key never depends on θ: the same structure built with
    /// shifted parameter numbering, or bound with any parameter vector, keys to
    /// the same table entry — while the bound keys themselves still tell the
    /// bindings apart whenever an angle actually differs.
    #[test]
    fn structural_key_is_invariant_to_theta_and_slot_numbering(
        structure in arb_structure(),
        thetas_a in prop::collection::vec(-3.0..3.0f64, 8),
        thetas_b in prop::collection::vec(-3.0..3.0f64, 8),
        shift in 0usize..4,
    ) {
        let (qubits, gates) = structure;
        let (circuit, params) = build(qubits, &gates, 0);
        let (renumbered, _) = build(qubits, &gates, shift);
        // Parameter slot numbering must not leak into the structural key.
        prop_assert_eq!(
            BlockKey::structural(&circuit),
            BlockKey::structural(&renumbered)
        );

        let padded_a = vec![0.0; shift].into_iter().chain(thetas_a.iter().copied()).collect::<Vec<_>>();
        let bound_a = circuit.bind(&thetas_a);
        let bound_b = circuit.bind(&thetas_b);
        let bound_renumbered = renumbered.bind(&padded_a);

        // Binding with a different θ vector must not move the structure to a
        // different seed entry.
        prop_assert_eq!(
            BlockKey::structural(&circuit),
            BlockKey::structural(&circuit.clone())
        );

        // The bound key still distinguishes bindings whose angles differ beyond
        // the key's 1e-9 rounding — the block cache stays exact while the seed
        // table generalizes.
        let differs = params > 0
            && thetas_a[..params]
                .iter()
                .zip(&thetas_b[..params])
                .any(|(a, b)| (a - b).abs() > 1e-6);
        if differs {
            // Distinct bindings must not collide in the exact block cache.
            prop_assert_ne!(
                BlockKey::from_bound_circuit(&bound_a),
                BlockKey::from_bound_circuit(&bound_b)
            );
        }
        // The same binding reached through the renumbered structure is the same
        // exact block.
        prop_assert_eq!(
            BlockKey::from_bound_circuit(&bound_a),
            BlockKey::from_bound_circuit(&bound_renumbered)
        );
    }

    /// A structural key distinguishes structures that differ in a constant
    /// angle: constants are part of the structure (they survive binding), only
    /// parameterized slots are erased.
    #[test]
    fn structural_key_keeps_constant_angles(
        qubits in 1usize..3,
        q in 0usize..2,
        angle_a in -3.0..3.0f64,
        angle_b in -3.0..3.0f64,
    ) {
        let q = q % qubits;
        let mut a = Circuit::new(qubits);
        a.h(q);
        a.rz(q, angle_a);
        a.rz_expr(q, ParamExpr::theta(0));
        let mut b = Circuit::new(qubits);
        b.h(q);
        b.rz(q, angle_b);
        b.rz_expr(q, ParamExpr::theta(0));
        if (angle_a - angle_b).abs() > 1e-6 {
            prop_assert_ne!(BlockKey::structural(&a), BlockKey::structural(&b));
        } else if angle_a == angle_b {
            prop_assert_eq!(BlockKey::structural(&a), BlockKey::structural(&b));
        }
    }
}
