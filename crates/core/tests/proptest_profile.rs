//! Property tests of the compile-phase profiler's accounting.
//!
//! The profiler brackets each GRAPE block compilation (`begin_block` …
//! `take_block`) inside the same wall-clock window that produces the block's
//! `measured_seconds`, and every phase timer nests inside that bracket with
//! self-time semantics. The invariant that makes the phase-share panel honest
//! is therefore structural: the per-phase durations can never sum past the
//! measured compile time, whatever circuit is compiled. These tests pin that
//! invariant on random blocks, along with the count/seconds coupling and the
//! disarmed profiler's silence.
//!
//! This file holds a single test on purpose: `set_armed` is process-global,
//! and a sibling test running disarmed concurrently would race. The disarmed
//! half of the property runs sequentially inside the same case.

use proptest::prelude::*;
use vqc_circuit::Circuit;
use vqc_core::{profile, CompilerOptions, PartialCompiler, Phase, Strategy};

/// Fast-effort options so each proptest case compiles in milliseconds.
fn fast_options() -> CompilerOptions {
    let mut options = CompilerOptions::fast();
    options.grape.max_iterations = 60;
    options.grape.target_infidelity = 5e-2;
    options.search_precision_ns = 2.0;
    options
}

/// A fully bound two-qubit entangling block — aggregates into one Fixed GRAPE
/// block under `StrictPartial`, the profiled compile path.
fn one_block_circuit(phase_a: f64, phase_b: f64, variant: u8) -> Circuit {
    let mut circuit = Circuit::new(2);
    circuit.h(0);
    if variant.is_multiple_of(2) {
        circuit.h(1);
    }
    circuit.cx(0, 1);
    circuit.rx(0, phase_a);
    if variant.is_multiple_of(3) {
        circuit.rz(1, phase_b);
    }
    circuit.cx(0, 1);
    circuit
}

proptest! {
    // GRAPE per case keeps this modest; 12 distinct blocks still cover the
    // duration-search / memo / propagation phase mix.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Armed, every freshly compiled block's phase durations sum to at most
    /// its `measured_seconds`, phase counts and seconds agree on which phases
    /// ran, and the propagation phase (the GRAPE inner loop) is always
    /// attributed. Disarmed, the same compile reports empty profiles — the
    /// single branch stays a branch, and stale thread-local state never leaks
    /// into a report.
    #[test]
    fn phase_durations_sum_to_at_most_measured_seconds(
        phase_a in 0.1..3.0f64,
        phase_b in 0.1..3.0f64,
        variant in 0u8..6,
    ) {
        profile::set_armed(true);
        let compiler = PartialCompiler::new(fast_options());
        let circuit = one_block_circuit(phase_a, phase_b, variant);
        let report = compiler
            .compile(&circuit, &[], Strategy::StrictPartial)
            .expect("fast-effort compile succeeds");
        profile::set_armed(false);

        let mut profiled_blocks = 0usize;
        for block in &report.blocks {
            if block.cached {
                continue;
            }
            profiled_blocks += 1;
            let profile = &block.profile;
            prop_assert!(
                !profile.is_empty(),
                "an armed fresh compile must attribute phase time"
            );
            prop_assert!(
                profile.total_seconds() <= block.measured_seconds + 1e-6,
                "phase sum {} exceeds measured {}",
                profile.total_seconds(),
                block.measured_seconds
            );
            for phase in Phase::ALL {
                let seconds = profile.seconds(phase);
                let count = profile.count(phase);
                prop_assert!(seconds >= 0.0);
                prop_assert!(
                    count > 0 || seconds == 0.0,
                    "phase {} has {}s but zero entries",
                    phase.name(),
                    seconds
                );
            }
            prop_assert!(
                profile.count(Phase::Propagation) > 0,
                "a GRAPE block always runs the propagation phase"
            );
        }
        prop_assert!(profiled_blocks > 0, "the circuit must contain a GRAPE block");

        // Disarmed half: a fresh compiler (cold cache) on the same circuit
        // must report empty profiles.
        let compiler = PartialCompiler::new(fast_options());
        let report = compiler
            .compile(&circuit, &[], Strategy::StrictPartial)
            .expect("fast-effort compile succeeds");
        for block in &report.blocks {
            prop_assert!(block.profile.is_empty());
            prop_assert_eq!(block.profile.total_seconds(), 0.0);
        }
    }
}
