//! Proves the GRAPE iteration kernel performs zero heap allocations.
//!
//! A counting global allocator wraps the system allocator; the single test below
//! (kept alone in this integration-test binary so no concurrent test can perturb
//! the counters) warms a [`GrapeWorkspace`] up once and then asserts that further
//! `fidelity_gradient` calls never touch the heap. This is the acceptance gate for
//! the allocation-free kernel: any regression that re-introduces a per-iteration
//! allocation fails this test deterministically.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use vqc_pulse::{DeviceModel, GrapeWorkspace, PulseSequence};
use vqc_sim::gates;

/// Counts every allocation (and reallocation) made while `COUNTING` is set.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn fidelity_gradient_is_allocation_free_after_workspace_construction() {
    // A two-qubit block is the representative GRAPE workload: 11 controls, 4x4
    // matrices, several slices.
    let device = DeviceModel::qubits_line(2);
    let target = gates::cx();
    let pulse = PulseSequence::seeded_guess(&device, 8, 0.5, 7);

    let mut workspace = GrapeWorkspace::new(&device, pulse.num_slices());
    workspace.set_target(&device, &target);
    // One warm-up call; all buffers are pre-sized by the constructor, but the
    // assertion below should gate the steady state, not first-touch effects.
    let warmup = workspace.fidelity_gradient(&pulse);
    assert!(warmup.is_finite());

    COUNTING.store(true, Ordering::SeqCst);
    for _ in 0..10 {
        black_box(workspace.fidelity_gradient(black_box(&pulse)));
    }
    COUNTING.store(false, Ordering::SeqCst);

    assert_eq!(
        ALLOCATIONS.load(Ordering::SeqCst),
        0,
        "fidelity_gradient allocated on the heap after workspace construction"
    );
}
