//! Proves the GRAPE iteration kernel performs zero heap allocations.
//!
//! A counting global allocator wraps the system allocator; the single test below
//! (kept alone in this integration-test binary so no concurrent test can perturb
//! the counters) warms a [`GrapeWorkspace`] up once and then asserts that further
//! `fidelity_gradient` calls never touch the heap. This is the acceptance gate for
//! the allocation-free kernel: any regression that re-introduces a per-iteration
//! allocation fails this test deterministically.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;
use vqc_pulse::{DeviceModel, GrapeWorkspace, PulseSequence};
use vqc_sim::gates;

/// Counts every allocation (and reallocation) the *current thread* makes while
/// its `COUNTING` flag is set. The counters are thread-local (const-initialized
/// `Cell`s, so touching them from the allocator neither allocates nor registers
/// a TLS destructor): the kernel under test is single-threaded, and a
/// process-global flag would also count incidental allocations from libtest's
/// harness threads during the counting window — a spurious failure mode on a
/// loaded machine.
struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn count_one() {
    let _ = COUNTING.try_with(|counting| {
        if counting.get() {
            let _ = ALLOCATIONS.try_with(|allocations| allocations.set(allocations.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn fidelity_gradient_is_allocation_free_after_workspace_construction() {
    // A two-qubit block is the representative GRAPE workload: 11 controls, 4x4
    // matrices, several slices.
    let device = DeviceModel::qubits_line(2);
    let target = gates::cx();
    let pulse = PulseSequence::seeded_guess(&device, 8, 0.5, 7);

    let mut workspace = GrapeWorkspace::new(&device, pulse.num_slices());
    workspace.set_target(&device, &target);
    // One warm-up call; all buffers are pre-sized by the constructor, but the
    // assertion below should gate the steady state, not first-touch effects.
    let warmup = workspace.fidelity_gradient(&pulse);
    assert!(warmup.is_finite());

    COUNTING.with(|counting| counting.set(true));
    for _ in 0..10 {
        black_box(workspace.fidelity_gradient(black_box(&pulse)));
    }
    COUNTING.with(|counting| counting.set(false));

    assert_eq!(
        ALLOCATIONS.with(Cell::get),
        0,
        "fidelity_gradient allocated on the heap after workspace construction"
    );
}
