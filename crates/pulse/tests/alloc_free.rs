//! Proves the GRAPE iteration kernels perform zero heap allocations.
//!
//! A counting global allocator wraps the system allocator; the tests below warm
//! a [`GrapeWorkspace`] up once and then assert that further `fidelity_gradient`
//! calls never touch the heap — on the const-generic `SmallMatrix` fast path,
//! on the pinned dynamic kernel, and on memo-replayed iterations (the
//! [`EigenMemo`] may allocate while arming on a miss, but a hit must be free).
//! The counters are per-thread and libtest runs each test on its own thread, so
//! the tests cannot perturb each other. This is the acceptance gate for the
//! allocation-free kernel: any regression that re-introduces a per-iteration
//! allocation fails deterministically.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;
use vqc_pulse::{
    profile, DeviceModel, EigenMemo, GrapeWorkspace, KernelPolicy, PulseSequence, SeedEntry,
    TableConfig, TranspositionTable,
};
use vqc_sim::gates;

/// Counts every allocation (and reallocation) the *current thread* makes while
/// its `COUNTING` flag is set. The counters are thread-local (const-initialized
/// `Cell`s, so touching them from the allocator neither allocates nor registers
/// a TLS destructor): the kernel under test is single-threaded, and a
/// process-global flag would also count incidental allocations from libtest's
/// harness threads during the counting window — a spurious failure mode on a
/// loaded machine.
struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn count_one() {
    let _ = COUNTING.try_with(|counting| {
        if counting.get() {
            let _ = ALLOCATIONS.try_with(|allocations| allocations.set(allocations.get() + 1));
        }
    });
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs ten steady-state `fidelity_gradient` calls under the counting window
/// and returns the number of heap allocations they made.
fn count_steady_state(workspace: &mut GrapeWorkspace, pulse: &PulseSequence) -> u64 {
    // One warm-up call; all buffers are pre-sized by the constructor, but the
    // assertion should gate the steady state, not first-touch effects.
    let warmup = workspace.fidelity_gradient(pulse);
    assert!(warmup.is_finite());

    ALLOCATIONS.with(|allocations| allocations.set(0));
    COUNTING.with(|counting| counting.set(true));
    for _ in 0..10 {
        black_box(workspace.fidelity_gradient(black_box(pulse)));
    }
    COUNTING.with(|counting| counting.set(false));
    ALLOCATIONS.with(Cell::get)
}

#[test]
fn fidelity_gradient_is_allocation_free_after_workspace_construction() {
    // A two-qubit block is the representative GRAPE workload: 11 controls, 4x4
    // matrices, several slices — and at dim 4 the workspace binds the
    // `SmallMatrix` fast path, so this gates the static engine.
    let device = DeviceModel::qubits_line(2);
    let target = gates::cx();
    let pulse = PulseSequence::seeded_guess(&device, 8, 0.5, 7);

    let mut workspace = GrapeWorkspace::new(&device, pulse.num_slices());
    let escape_hatch_set = std::env::var("VQC_SMALL_MATRIX").is_ok();
    assert!(
        escape_hatch_set || workspace.uses_static_kernel(),
        "a 2-qubit device must bind the SmallMatrix engine"
    );
    workspace.set_target(&device, &target);

    assert_eq!(
        count_steady_state(&mut workspace, &pulse),
        0,
        "the static fidelity_gradient allocated on the heap after workspace construction"
    );
}

#[test]
fn profiler_gradient_path_is_allocation_free_armed_and_silent_disarmed() {
    // One test covers both profiler states because `set_armed` is process
    // global: splitting them across tests would race under parallel libtest.
    let device = DeviceModel::qubits_line(2);
    let target = gates::cx();
    let pulse = PulseSequence::seeded_guess(&device, 8, 0.5, 7);

    let mut workspace = GrapeWorkspace::new(&device, pulse.num_slices());
    workspace.set_target(&device, &target);

    // Disarmed: begin_block must not latch — the gradient path stays a single
    // branch and take_block observes no profile.
    profile::set_armed(false);
    profile::begin_block();
    assert_eq!(count_steady_state(&mut workspace, &pulse), 0);
    assert!(
        profile::take_block().is_none(),
        "a disarmed profiler must not latch a block accumulator"
    );

    // Armed: the profiler accumulates into thread-local const-init `Cell`s,
    // so it must not re-introduce a per-iteration allocation on the gradient
    // hot path — the whole point of the Lap mark design.
    profile::set_armed(true);
    profile::begin_block();
    let allocations = count_steady_state(&mut workspace, &pulse);
    let block = profile::take_block();
    profile::set_armed(false);

    assert_eq!(
        allocations, 0,
        "the armed-profiler fidelity_gradient allocated on the heap"
    );
    let block = block.expect("begin_block latched an accumulator");
    assert!(
        !block.is_empty(),
        "the armed profiler must have attributed phase time"
    );
}

#[test]
fn forced_dynamic_kernel_is_also_allocation_free() {
    let device = DeviceModel::qubits_line(2);
    let target = gates::cx();
    let pulse = PulseSequence::seeded_guess(&device, 8, 0.5, 7);

    let mut workspace =
        GrapeWorkspace::with_kernel(&device, pulse.num_slices(), KernelPolicy::ForceDynamic);
    assert!(!workspace.uses_static_kernel());
    workspace.set_target(&device, &target);

    assert_eq!(
        count_steady_state(&mut workspace, &pulse),
        0,
        "the dynamic fidelity_gradient allocated on the heap after workspace construction"
    );
}

#[test]
fn memo_replay_is_allocation_free_after_arming() {
    let device = DeviceModel::qubits_line(2);
    let target = gates::cx();
    let pulse = PulseSequence::seeded_guess(&device, 8, 0.5, 7);

    let mut workspace = GrapeWorkspace::new(&device, pulse.num_slices());
    workspace.set_target(&device, &target);
    let mut memo = EigenMemo::new();
    // The arming call may allocate: every slice misses and is inserted.
    let warmup = workspace.fidelity_gradient_with_memo(&pulse, &mut memo);
    assert!(warmup.is_finite());
    assert!(memo.misses() > 0);

    ALLOCATIONS.with(|allocations| allocations.set(0));
    COUNTING.with(|counting| counting.set(true));
    for _ in 0..10 {
        black_box(workspace.fidelity_gradient_with_memo(black_box(&pulse), &mut memo));
    }
    COUNTING.with(|counting| counting.set(false));

    assert!(memo.hits() >= 10, "replay calls must hit the memo");
    assert_eq!(
        ALLOCATIONS.with(Cell::get),
        0,
        "a memo hit allocated on the heap during replay"
    );
}

#[test]
fn armed_table_probe_hits_are_allocation_free() {
    // Recording may allocate (the entry and its waveform payload move into the
    // shard), but a hit on the hot compile path reads in place via
    // `probe_with` — cloning only happens when the caller decides to seed a
    // search with the entry, outside the probe itself.
    let table: TranspositionTable<u64> = TranspositionTable::new(TableConfig::default());
    let device = DeviceModel::qubits_line(1);
    let mut entry = SeedEntry {
        learning_rate: 0.1,
        decay_rate: 0.99,
        tuned: true,
        converged_duration_ns: Some(2.5),
        failed_below_ns: 1.5,
        probe_iterations: Vec::new(),
        pulse: Some(PulseSequence::seeded_guess(&device, 8, 0.5, 7)),
    };
    entry.record_probe(2.5, 40);
    table.record(&0, entry);

    ALLOCATIONS.with(|allocations| allocations.set(0));
    COUNTING.with(|counting| counting.set(true));
    for _ in 0..10 {
        let window = table.probe_with(black_box(&0), |seed| {
            (
                seed.converged_duration_ns,
                seed.failed_below_ns,
                seed.depth(),
            )
        });
        black_box(&window);
        assert!(
            window.is_some(),
            "the armed table must hit on a resident key"
        );
    }
    COUNTING.with(|counting| counting.set(false));

    assert_eq!(
        ALLOCATIONS.with(Cell::get),
        0,
        "an armed-table probe hit allocated on the heap"
    );
}
