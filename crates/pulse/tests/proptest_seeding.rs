//! Property tests of the transposition table's replacement policy and the
//! seeded duration search.
//!
//! Two invariants the warm-start index must hold under any workload:
//!
//! * **Depth-preferred replacement** — a converged entry is never displaced by
//!   an unconverged probe, no matter how much iteration depth the prober
//!   claims or how hard the byte budget squeezes the shard.
//! * **Seeded search exactness** — seeding [`minimum_pulse_time_seeded`] from
//!   a prior search of the *same* block lands within the search's
//!   `precision_ns` of the cold result: the seed is an accelerator, not an
//!   approximation knob.

use proptest::prelude::*;
use vqc_pulse::grape::GrapeOptions;
use vqc_pulse::minimum_time::{
    minimum_pulse_time, minimum_pulse_time_seeded, MinimumTimeOptions, SearchSeed,
};
use vqc_pulse::{
    DeviceModel, EigenMemo, PulseSequence, SeedEntry, TableConfig, TranspositionTable,
};
use vqc_sim::gates;

/// An entry with the given convergence state and iteration depth.
fn entry(converged: bool, duration_ns: f64, depth: usize, with_pulse: bool) -> SeedEntry {
    let device = DeviceModel::qubits_line(1);
    let mut entry = SeedEntry {
        learning_rate: 0.1,
        decay_rate: 0.99,
        tuned: false,
        converged_duration_ns: converged.then_some(duration_ns),
        failed_below_ns: duration_ns * 0.5,
        probe_iterations: Vec::new(),
        pulse: (converged && with_pulse)
            .then(|| PulseSequence::seeded_guess(&device, 8, 0.5, depth as u64)),
    };
    entry.record_probe(duration_ns, depth.max(1));
    entry
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With every key colliding on one slot, a resident converged entry
    /// survives any stream of unconverged probes — even deeper ones, even
    /// under a byte budget tight enough to otherwise force evictions.
    #[test]
    fn replacement_never_discards_converged_for_unconverged(
        durations in prop::collection::vec(1.0..16.0f64, 1..12),
        depths in prop::collection::vec(1usize..5000, 12),
        budget_choice in 0usize..2,
    ) {
        let tight_budget = budget_choice == 1;
        let resident = entry(true, 4.0, 10, true);
        let budget = tight_budget.then(|| resident.approx_bytes() + resident.approx_bytes() / 4);
        let table: TranspositionTable<u64> = TranspositionTable::new(TableConfig {
            enabled: true,
            capacity: 1,
            shards: 1,
            max_bytes: budget,
        });
        table.record(&0, resident);

        for (i, duration) in durations.iter().enumerate() {
            table.record(&(i as u64 + 1), entry(false, *duration, depths[i], false));
            let survivor = table.probe(&0);
            prop_assert!(
                survivor.map(|e| e.converged()).unwrap_or(false),
                "an unconverged probe displaced the converged entry"
            );
        }
    }

    /// Merging records for the same key never loses convergence either: once a
    /// key has converged, later unconverged searches of other bindings only
    /// tighten its window.
    #[test]
    fn same_key_merges_keep_convergence(
        durations in prop::collection::vec(1.0..16.0f64, 1..12),
        depths in prop::collection::vec(1usize..5000, 12),
    ) {
        let table: TranspositionTable<u64> = TranspositionTable::new(TableConfig::default());
        table.record(&0, entry(true, 4.0, 10, true));
        let mut tightest_floor: f64 = 2.0; // 4.0 * 0.5 from the resident entry.
        for (i, duration) in durations.iter().enumerate() {
            table.record(&0, entry(false, *duration, depths[i], false));
            tightest_floor = tightest_floor.max(duration * 0.5);
            let merged = table.probe(&0).expect("the key stays resident");
            prop_assert!(merged.converged());
            prop_assert!((merged.failed_below_ns - tightest_floor).abs() < 1e-9);
        }
    }
}

proptest! {
    // Each case runs two GRAPE duration searches; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Seeding a search from its own cold result (the tightest honest seed a
    /// table can serve for the *same* block) reproduces the cold duration
    /// within `precision_ns` and converges to target fidelity.
    #[test]
    fn seeded_search_matches_cold_within_precision(
        theta in 0.3..2.8f64,
        precision_step in 0usize..2,
    ) {
        let device = DeviceModel::qubits_line(1);
        let precision = [0.5, 1.0][precision_step];
        let search = MinimumTimeOptions::new(0.0, 4.0).with_precision(precision);
        let grape = GrapeOptions::fast();
        let target = gates::rz(theta);

        let cold = minimum_pulse_time(&target, &device, &search, &grape).unwrap();
        prop_assert!(cold.converged);

        let seed = SearchSeed {
            lower_bound_ns: cold
                .probes
                .iter()
                .filter(|p| !p.converged)
                .map(|p| p.duration_ns)
                .fold(search.lower_bound_ns, f64::max),
            converged_duration_ns: Some(cold.duration_ns),
            pulse: cold.best.as_ref().map(|b| b.pulse.clone()),
        };
        let mut memo = EigenMemo::new();
        let seeded = minimum_pulse_time_seeded(
            &target, &device, &search, &grape, &mut memo, Some(&seed),
        )
        .unwrap();
        prop_assert!(seeded.converged);
        prop_assert!(
            (seeded.duration_ns - cold.duration_ns).abs() <= precision + 1e-9,
            "seeded {} ns drifted from cold {} ns (precision {} ns)",
            seeded.duration_ns,
            cold.duration_ns,
            precision
        );
        prop_assert!(seeded.duration_ns <= search.upper_bound_ns + 1e-9);
        prop_assert!(seeded.total_iterations() <= cold.total_iterations());
    }
}
