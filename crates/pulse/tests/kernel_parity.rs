//! Property-based parity between the const-generic `SmallMatrix` GRAPE engine
//! and the dynamic workspace kernel it replaces.
//!
//! The dynamic kernel (pinned via [`KernelPolicy::ForceDynamic`]) is the
//! reference: for every device the fast path supports, the static engine must
//! reproduce its infidelity and exact gradient to near machine precision —
//! including on repeated evaluations, where the static engine switches to its
//! warm-started Jacobi path, and under eigendecomposition memoization, where
//! replayed slices come out of the [`EigenMemo`] instead of the solver.

use proptest::prelude::*;
use vqc_pulse::{DeviceModel, EigenMemo, GrapeWorkspace, KernelPolicy, PulseSequence};
use vqc_sim::gates;

/// Builds a pulse over `slices` slices from a cyclic read of `amps`, so one
/// generated vector covers any control count the device exposes.
fn pulse_from(device: &DeviceModel, slices: usize, dt_ns: f64, amps: &[f64]) -> PulseSequence {
    let mut pulse = PulseSequence::zeros(device.num_controls(), slices, dt_ns);
    for k in 0..device.num_controls() {
        for t in 0..slices {
            pulse.set_amplitude(k, t, amps[(k * slices + t) % amps.len()]);
        }
    }
    pulse
}

/// True unless the `VQC_SMALL_MATRIX` escape hatch pins every workspace to the
/// dynamic kernel — in which case static-vs-dynamic parity is vacuous and the
/// tests that rely on the fast path binding skip themselves.
fn fast_path_enabled() -> bool {
    match std::env::var("VQC_SMALL_MATRIX") {
        Ok(value) => !matches!(value.trim(), "0" | "off" | "false" | "no"),
        Err(_) => true,
    }
}

/// One fast/slow workspace pair with the target bound, plus the parity check.
fn assert_kernels_agree(
    device: &DeviceModel,
    target: &vqc_linalg::Matrix,
    pulses: &[PulseSequence],
    tol: f64,
) {
    let slices = pulses[0].num_slices();
    let mut fast = GrapeWorkspace::new(device, slices);
    assert!(
        !fast_path_enabled() || fast.uses_static_kernel(),
        "dim {} must bind the SmallMatrix engine",
        device.dim()
    );
    let mut slow = GrapeWorkspace::with_kernel(device, slices, KernelPolicy::ForceDynamic);
    assert!(!slow.uses_static_kernel());
    fast.set_target(device, target);
    slow.set_target(device, target);

    // Evaluating the same workspaces across several pulses exercises the cold
    // Jacobi path on the first pulse and the warm-started path on the rest.
    for (index, pulse) in pulses.iter().enumerate() {
        let fast_infidelity = fast.fidelity_gradient(pulse);
        let slow_infidelity = slow.fidelity_gradient(pulse);
        assert!(
            (fast_infidelity - slow_infidelity).abs() < tol,
            "infidelity diverges on pulse {index}: {fast_infidelity} vs {slow_infidelity}"
        );
        for k in 0..device.num_controls() {
            for t in 0..pulse.num_slices() {
                let diff = (fast.gradient()[k][t] - slow.gradient()[k][t]).abs();
                assert!(
                    diff < tol,
                    "gradient diverges on pulse {index}, control {k}, slice {t}: {diff:e}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn static_matches_dynamic_1q(
        amps in prop::collection::vec(-1.0..1.0f64, 64),
        perturbed in prop::collection::vec(-1.0..1.0f64, 64),
        dt in 0.1..1.0f64,
    ) {
        let device = DeviceModel::qubits_line(1);
        let pulses = [
            pulse_from(&device, 6, dt, &amps),
            pulse_from(&device, 6, dt, &perturbed),
        ];
        assert_kernels_agree(&device, &gates::h(), &pulses, 1e-12);
    }

    #[test]
    fn static_matches_dynamic_2q(
        amps in prop::collection::vec(-1.0..1.0f64, 64),
        perturbed in prop::collection::vec(-1.0..1.0f64, 64),
        dt in 0.1..1.0f64,
    ) {
        let device = DeviceModel::qubits_line(2);
        let pulses = [
            pulse_from(&device, 6, dt, &amps),
            pulse_from(&device, 6, dt, &perturbed),
        ];
        assert_kernels_agree(&device, &gates::cx(), &pulses, 1e-12);
    }

    #[test]
    fn memoized_static_gradient_matches_dynamic(
        amps in prop::collection::vec(-1.0..1.0f64, 64),
        dt in 0.1..1.0f64,
    ) {
        let device = DeviceModel::qubits_line(2);
        let target = gates::cx();
        let pulse = pulse_from(&device, 6, dt, &amps);

        let mut fast = GrapeWorkspace::new(&device, pulse.num_slices());
        let mut slow =
            GrapeWorkspace::with_kernel(&device, pulse.num_slices(), KernelPolicy::ForceDynamic);
        fast.set_target(&device, &target);
        slow.set_target(&device, &target);
        let reference = slow.fidelity_gradient(&pulse);

        // First memoized call arms the memo; the second replays every slice
        // out of it. Both must stay on the dynamic kernel's answer.
        let mut memo = EigenMemo::new();
        for call in 0..2 {
            let infidelity = fast.fidelity_gradient_with_memo(&pulse, &mut memo);
            assert!(
                (infidelity - reference).abs() < 1e-12,
                "memoized call {call} diverges: {infidelity} vs {reference}"
            );
            for k in 0..device.num_controls() {
                for t in 0..pulse.num_slices() {
                    let diff = (fast.gradient()[k][t] - slow.gradient()[k][t]).abs();
                    assert!(diff < 1e-12, "memoized call {call}, control {k}, slice {t}: {diff:e}");
                }
            }
        }
        assert!(memo.hits() > 0, "replay must hit the memo");
    }
}

/// The largest monomorphization, dim 16 (a 4-qubit line), checked once
/// deterministically: a proptest sweep at this size would dominate the suite's
/// runtime for little extra coverage beyond the N=16 `small_parity` sweep.
#[test]
fn static_matches_dynamic_4q_dim16() {
    let device = DeviceModel::qubits_line(4);
    assert_eq!(device.dim(), 16);
    let h = gates::h();
    let target = h.kron(&h).kron(&h).kron(&h);
    let pulses = [
        PulseSequence::seeded_guess(&device, 4, 0.5, 7),
        PulseSequence::seeded_guess(&device, 4, 0.45, 11),
    ];
    assert_kernels_agree(&device, &target, &pulses, 1e-10);
}

/// `KernelPolicy::ForceDynamic` must pin the dynamic kernel even on devices the
/// fast path supports, and `Auto` must bind it for every supported dimension.
#[test]
fn kernel_policy_binding() {
    for qubits in [1usize, 2, 4] {
        let device = DeviceModel::qubits_line(qubits);
        assert_eq!(
            GrapeWorkspace::new(&device, 4).uses_static_kernel(),
            fast_path_enabled()
        );
        assert!(
            !GrapeWorkspace::with_kernel(&device, 4, KernelPolicy::ForceDynamic)
                .uses_static_kernel()
        );
    }
}
