//! Phase-scoped compile-time accounting for the GRAPE pipeline.
//!
//! [`BlockCompilation::measured_seconds`] (in `vqc-core`) times a whole block
//! compile at its outer boundary, which says nothing about *where* the time
//! goes — eigendecomposition, propagation sweeps, gradient contraction,
//! duration probes, or the hyperparameter grid. This module attributes that
//! wall time to a small fixed set of [`Phase`]s, producing a
//! [`CompileProfile`] per compiled block that rides back to the runtime for
//! per-phase histograms, trace spans, and regression reports.
//!
//! Design constraints, in order:
//!
//! 1. **Disarmed is a single branch.** Every instrumentation point first
//!    checks a thread-local latch (a `Cell<bool>` read); nothing else happens
//!    unless a block explicitly armed the current thread. The global armed
//!    flag (the `VQC_PROFILE` environment variable, or [`set_armed`]) is
//!    consulted only once per block in [`begin_block`], never per slice.
//! 2. **Armed is allocation-free.** Accumulation lands in const-initialized
//!    thread-local `Cell`s or on a [`Lap`]'s own stack frame — the same
//!    discipline the `alloc_free.rs` gates enforce on the gradient kernels,
//!    and they cover the armed path too. Building the [`CompileProfile`] in
//!    [`take_block`] happens once per block, outside the iteration hot loop.
//! 3. **Phases never double-count.** A [`PhaseScope`] records *self time*:
//!    child scopes and [`Lap`] marks inside it are subtracted, so summing
//!    `phase_seconds` never exceeds the block's measured wall time. The
//!    `profile_invariants.rs` proptest in `vqc-core` pins this.
//!
//! Timing inside the per-slice kernels uses the [`Lap`] mark API rather than
//! nested scopes: one raw-[`ticks`] read per mark (the TSC on x86_64, roughly
//! a third the cost of a vDSO `clock_gettime`), charging the interval since
//! the previous mark into the lap's stack-local counters, flushed to the
//! thread-local accumulator once when the lap drops. [`take_block`] calibrates
//! the raw ticks against wall time measured over the whole block, so the
//! profile is still reported in seconds. This keeps armed overhead on the
//! warm 2-qubit gradient path under the 5% budget asserted by the
//! `profile_overhead` bench group.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of [`Phase`] variants; the length of the per-phase arrays in
/// [`CompileProfile`].
pub const PHASE_COUNT: usize = 7;

/// A compile-pipeline phase that wall time is attributed to.
///
/// The first five phases are charged inside the gradient kernels
/// (`GrapeWorkspace` / `StaticEngine`); the last two wrap whole optimizer
/// invocations in `minimum_time.rs` and `hyperparam.rs` and therefore record
/// *self time* — the search/tuning overhead beyond the kernel phases nested
/// within them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Assembling a slice Hamiltonian from the device's control operators.
    HamiltonianAssembly,
    /// Hermitian eigendecomposition of slice Hamiltonians (closed-form 2x2 or
    /// Jacobi), including rotating into a warm-start eigenbasis. Jacobi sweep
    /// counts are tallied separately via [`add_sweeps`].
    Eigendecomposition,
    /// Building slice propagators from eigensystems and the forward/backward
    /// accumulation sweeps.
    Propagation,
    /// The Daleckii–Krein loop and the per-control gradient contraction.
    GradientContraction,
    /// Probing (and storing into) the [`EigenMemo`](crate::EigenMemo), the
    /// transposition table, and the runtime pulse cache's seed index.
    MemoProbe,
    /// A `minimum_time` duration-search probe: one full GRAPE run at a
    /// candidate duration. Self time only — kernel phases inside the probe
    /// are charged to themselves.
    DurationProbe,
    /// One hyperparameter-grid candidate in `tune_hyperparameters`. Self time
    /// only, like [`Phase::DurationProbe`].
    HyperparamTuning,
}

impl Phase {
    /// All phases, in `CompileProfile` array order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::HamiltonianAssembly,
        Phase::Eigendecomposition,
        Phase::Propagation,
        Phase::GradientContraction,
        Phase::MemoProbe,
        Phase::DurationProbe,
        Phase::HyperparamTuning,
    ];

    /// Stable snake_case identifier used in metrics JSON and trace exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::HamiltonianAssembly => "hamiltonian_assembly",
            Phase::Eigendecomposition => "eigendecomposition",
            Phase::Propagation => "propagation",
            Phase::GradientContraction => "gradient_contraction",
            Phase::MemoProbe => "memo_probe",
            Phase::DurationProbe => "duration_probe",
            Phase::HyperparamTuning => "hyperparam_tuning",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Per-phase wall-time attribution for one compiled block.
///
/// Produced by [`take_block`] when profiling is armed; rides
/// `BlockCompilation` back to the runtime. `Default::default()` (all zeros)
/// means "not profiled" — cache hits and lookup-table blocks carry it.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CompileProfile {
    /// Seconds attributed to each phase, indexed by [`Phase::ALL`] order.
    pub phase_seconds: [f64; PHASE_COUNT],
    /// Number of times each phase was entered (scopes) or marked (laps).
    pub phase_counts: [u64; PHASE_COUNT],
    /// Total Jacobi rotation sweeps across all eigendecompositions (0 for
    /// closed-form 2x2 solves).
    pub jacobi_sweeps: u64,
}

impl CompileProfile {
    /// Sum of all per-phase seconds. Always `<=` the block's measured wall
    /// time (self-time accounting never double-charges an interval).
    pub fn total_seconds(&self) -> f64 {
        self.phase_seconds.iter().sum()
    }

    /// Seconds attributed to `phase`.
    pub fn seconds(&self, phase: Phase) -> f64 {
        self.phase_seconds[phase.idx()]
    }

    /// Entry/mark count for `phase`.
    pub fn count(&self, phase: Phase) -> u64 {
        self.phase_counts[phase.idx()]
    }

    /// True when no phase recorded any time or count — the unprofiled
    /// (default) state cache hits carry.
    pub fn is_empty(&self) -> bool {
        self.phase_counts.iter().all(|&c| c == 0) && self.jacobi_sweeps == 0
    }

    /// Accumulates another profile into this one (used when a compile spans
    /// several profiled sections, and by journal aggregation in `vqc-report`).
    pub fn merge(&mut self, other: &CompileProfile) {
        for i in 0..PHASE_COUNT {
            self.phase_seconds[i] += other.phase_seconds[i];
            self.phase_counts[i] += other.phase_counts[i];
        }
        self.jacobi_sweeps += other.jacobi_sweeps;
    }
}

/// Global armed flag: initialized lazily from `VQC_PROFILE` (any value other
/// than `0` arms), overridable via [`set_armed`].
static ARMED: OnceLock<AtomicBool> = OnceLock::new();

fn armed_flag() -> &'static AtomicBool {
    ARMED.get_or_init(|| {
        let armed = match std::env::var("VQC_PROFILE") {
            Ok(value) => value != "0",
            Err(_) => false,
        };
        AtomicBool::new(armed)
    })
}

/// Whether the profiler is globally armed (`VQC_PROFILE` or [`set_armed`]).
/// Consulted once per block by [`begin_block`], not per instrumentation point.
pub fn armed() -> bool {
    armed_flag().load(Ordering::Relaxed)
}

/// Programmatically arms or disarms the profiler, overriding `VQC_PROFILE`.
/// Used by the overhead benches and tests.
pub fn set_armed(enabled: bool) {
    armed_flag().store(enabled, Ordering::Relaxed);
}

/// Reads the raw timestamp source the instrumentation charges with: the TSC
/// on x86_64 (roughly a third the cost of a vDSO `clock_gettime`, which is
/// what keeps ~3 marks per slice inside the 5% overhead budget), nanoseconds
/// on a process epoch elsewhere. The unit is deliberately opaque —
/// [`take_block`] calibrates accumulated ticks against wall time measured
/// over the whole block, so profiles come out in seconds either way.
#[inline]
fn ticks() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `rdtsc` is an unprivileged baseline x86_64 instruction.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Thread-local accumulator state. `Cell`s with const initializers: touching
/// them never allocates and registers no TLS destructor, so the armed path
/// stays clean under the counting-allocator gates.
struct Accum {
    active: Cell<bool>,
    ticks: [Cell<u64>; PHASE_COUNT],
    counts: [Cell<u64>; PHASE_COUNT],
    sweeps: Cell<u64>,
    /// Ticks already charged to *some* phase on this thread since
    /// `begin_block`. Scopes snapshot it on entry; on drop, the delta is the
    /// children's time to subtract from their own elapsed interval.
    charged: Cell<u64>,
    /// The block's wall-clock anchor, `(begin instant, begin ticks)`.
    /// [`take_block`] divides the two elapsed spans to turn raw ticks into
    /// seconds, calibrated over exactly the interval the block ran.
    start: Cell<Option<(Instant, u64)>>,
}

thread_local! {
    static ACCUM: Accum = const {
        Accum {
            active: Cell::new(false),
            ticks: [const { Cell::new(0) }; PHASE_COUNT],
            counts: [const { Cell::new(0) }; PHASE_COUNT],
            sweeps: Cell::new(0),
            charged: Cell::new(0),
            start: Cell::new(None),
        }
    };
}

/// True when the *current thread* is actively accumulating (armed globally
/// and latched by [`begin_block`]). One thread-local `Cell` read.
#[inline]
pub fn active() -> bool {
    ACCUM.with(|a| a.active.get())
}

/// Arms the current thread's accumulator for one block compile, resetting all
/// counters. No-op (one atomic load) when the profiler is disarmed.
pub fn begin_block() {
    if !armed() {
        return;
    }
    ACCUM.with(|a| {
        for cell in &a.ticks {
            cell.set(0);
        }
        for cell in &a.counts {
            cell.set(0);
        }
        a.sweeps.set(0);
        a.charged.set(0);
        a.start.set(Some((Instant::now(), ticks())));
        a.active.set(true);
    });
}

/// Unlatches the current thread and returns the accumulated profile, or
/// `None` if [`begin_block`] never armed this thread.
pub fn take_block() -> Option<CompileProfile> {
    ACCUM.with(|a| {
        if !a.active.get() {
            return None;
        }
        a.active.set(false);
        // Calibrate raw ticks against the block's wall time: the seconds the
        // block took, divided by the ticks it spanned. This needs no TSC
        // frequency constant and stays exact on hosts where the tick source
        // is already nanoseconds.
        let seconds_per_tick = match a.start.take() {
            Some((started, begin_ticks)) => {
                let span_ticks = ticks().saturating_sub(begin_ticks);
                if span_ticks == 0 {
                    0.0
                } else {
                    started.elapsed().as_secs_f64() / span_ticks as f64
                }
            }
            None => 0.0,
        };
        let mut profile = CompileProfile::default();
        for i in 0..PHASE_COUNT {
            profile.phase_seconds[i] = a.ticks[i].get() as f64 * seconds_per_tick;
            profile.phase_counts[i] = a.counts[i].get();
        }
        profile.jacobi_sweeps = a.sweeps.get();
        Some(profile)
    })
}

/// Tallies Jacobi rotation sweeps from an eigendecomposition. Single branch
/// when the thread is not accumulating.
#[inline]
pub fn add_sweeps(sweeps: u64) {
    ACCUM.with(|a| {
        if a.active.get() {
            a.sweeps.set(a.sweeps.get() + sweeps);
        }
    });
}

/// RAII guard charging *self time* to a phase: elapsed wall time minus
/// whatever child scopes and [`Lap`] marks charged while it was open.
/// Construction is a single branch when the thread is not accumulating.
#[derive(Debug)]
pub struct PhaseScope {
    /// `(phase, entry ticks, charged-ticks snapshot at entry)`; `None` when
    /// the thread was not accumulating at construction.
    entered: Option<(Phase, u64, u64)>,
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        let Some((phase, entry_ticks, charged_at_entry)) = self.entered.take() else {
            return;
        };
        let total = ticks().saturating_sub(entry_ticks);
        ACCUM.with(|a| {
            let children = a.charged.get().saturating_sub(charged_at_entry);
            let self_ticks = total.saturating_sub(children);
            let i = phase.idx();
            a.ticks[i].set(a.ticks[i].get() + self_ticks);
            a.counts[i].set(a.counts[i].get() + 1);
            // The whole interval is now charged (children plus our self
            // time), so an enclosing scope subtracts it exactly once.
            a.charged.set(charged_at_entry + total);
        });
    }
}

/// Opens a [`PhaseScope`] for `phase`. Inert (no clock read) unless the
/// current thread is accumulating.
#[inline]
pub fn scope(phase: Phase) -> PhaseScope {
    let entered = if active() {
        Some((phase, ticks(), ACCUM.with(|a| a.charged.get())))
    } else {
        None
    };
    PhaseScope { entered }
}

/// Mark-based timer for per-slice kernel loops: one raw-[`ticks`] read per
/// [`Lap::mark`], charging the interval since the previous mark into counters
/// on the lap's own stack frame — no thread-local traffic in the loop body.
/// The totals flush to the thread-local accumulator once, when the lap drops.
/// When the thread is not accumulating, `start` reads no clock and every
/// method is a single branch on a `None`.
#[derive(Debug)]
pub struct Lap {
    /// Ticks at the previous mark; `None` when inert.
    last: Option<u64>,
    ticks: [u64; PHASE_COUNT],
    counts: [u64; PHASE_COUNT],
    sweeps: u64,
}

impl Lap {
    /// Starts a lap timer; inert when the thread is not accumulating.
    #[inline]
    pub fn start() -> Lap {
        let last = if active() { Some(ticks()) } else { None };
        Lap {
            last,
            ticks: [0; PHASE_COUNT],
            counts: [0; PHASE_COUNT],
            sweeps: 0,
        }
    }

    /// Charges the time since the previous mark (or [`Lap::start`]) to
    /// `phase` and restarts the lap from now.
    #[inline]
    pub fn mark(&mut self, phase: Phase) {
        if let Some(last) = self.last {
            let now = ticks();
            let i = phase.idx();
            self.ticks[i] += now.saturating_sub(last);
            self.counts[i] += 1;
            self.last = Some(now);
        }
    }

    /// Restarts the lap from now *without* charging the elapsed interval —
    /// used to skip stretches that belong to an enclosing scope's self time.
    #[inline]
    pub fn skip(&mut self) {
        if self.last.is_some() {
            self.last = Some(ticks());
        }
    }

    /// Tallies Jacobi sweeps into the lap's stack counter (flushed with the
    /// phase totals on drop). Self-guarding: a no-op on an inert lap, so the
    /// kernel needs no `is_active` branch around it.
    #[inline]
    pub fn add_sweeps(&mut self, sweeps: u64) {
        if self.last.is_some() {
            self.sweeps += sweeps;
        }
    }

    /// Whether this lap is recording (the thread was accumulating at
    /// [`Lap::start`]). A plain stack read — cheaper than [`active`].
    #[inline]
    pub fn is_active(&self) -> bool {
        self.last.is_some()
    }
}

impl Drop for Lap {
    /// Flushes the stack-local totals to the thread-local accumulator — one
    /// TLS round trip per lap instead of one per mark. Lap intervals count as
    /// charged time, so an enclosing [`PhaseScope`] subtracts them from its
    /// self time; a lap therefore must drop before the scope that encloses it
    /// (guaranteed for locals by reverse declaration order).
    fn drop(&mut self) {
        if self.last.is_none() {
            return;
        }
        ACCUM.with(|a| {
            let mut flushed = 0;
            for i in 0..PHASE_COUNT {
                if self.counts[i] > 0 {
                    a.ticks[i].set(a.ticks[i].get() + self.ticks[i]);
                    a.counts[i].set(a.counts[i].get() + self.counts[i]);
                    flushed += self.ticks[i];
                }
            }
            if self.sweeps > 0 {
                a.sweeps.set(a.sweeps.get() + self.sweeps);
            }
            a.charged.set(a.charged.get() + flushed);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_take_block_returns_none() {
        // Never armed on this thread: scopes and laps are inert and there is
        // no profile to take.
        let mut lap = Lap::start();
        lap.mark(Phase::Propagation);
        drop(scope(Phase::DurationProbe));
        assert!(take_block().is_none());
    }

    #[test]
    fn armed_block_accumulates_and_resets() {
        set_armed(true);
        begin_block();
        assert!(active());
        {
            let _outer = scope(Phase::DurationProbe);
            let mut lap = Lap::start();
            std::thread::sleep(std::time::Duration::from_millis(2));
            lap.mark(Phase::Eigendecomposition);
            add_sweeps(3);
        }
        let profile = take_block().expect("armed block must yield a profile");
        assert!(!active());
        assert!(profile.seconds(Phase::Eigendecomposition) > 0.0);
        assert_eq!(profile.count(Phase::Eigendecomposition), 1);
        assert_eq!(profile.count(Phase::DurationProbe), 1);
        assert_eq!(profile.jacobi_sweeps, 3);
        assert!(!profile.is_empty());
        // A second take without a new begin_block yields nothing.
        assert!(take_block().is_none());
        set_armed(false);
    }

    #[test]
    fn scope_records_self_time_not_child_time() {
        set_armed(true);
        begin_block();
        {
            let _outer = scope(Phase::DurationProbe);
            {
                let _inner = scope(Phase::HyperparamTuning);
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
        let profile = take_block().expect("profile");
        set_armed(false);
        let inner = profile.seconds(Phase::HyperparamTuning);
        let outer = profile.seconds(Phase::DurationProbe);
        assert!(inner >= 0.005, "inner scope must record the sleep: {inner}");
        assert!(
            outer < inner,
            "outer self time ({outer}) must exclude the inner scope ({inner})"
        );
    }

    #[test]
    fn merged_profiles_add_componentwise() {
        let mut a = CompileProfile::default();
        a.phase_seconds[0] = 1.0;
        a.phase_counts[0] = 2;
        a.jacobi_sweeps = 5;
        let mut b = CompileProfile::default();
        b.phase_seconds[0] = 0.5;
        b.phase_counts[0] = 1;
        b.jacobi_sweeps = 7;
        a.merge(&b);
        assert_eq!(a.phase_seconds[0], 1.5);
        assert_eq!(a.phase_counts[0], 3);
        assert_eq!(a.jacobi_sweeps, 12);
        assert!((a.total_seconds() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn phase_names_are_unique_and_ordered() {
        let mut seen = std::collections::HashSet::new();
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(*phase as usize, i, "ALL must follow discriminant order");
            assert!(seen.insert(phase.name()), "duplicate name {}", phase.name());
        }
        assert_eq!(seen.len(), PHASE_COUNT);
    }
}
