//! Time-ordered propagation of piecewise-constant control pulses.
//!
//! Slice propagators are built by the same eigendecomposition path the GRAPE
//! gradient uses ([`crate::workspace::GrapeWorkspace`]), so the optimizer and the
//! verifier can never drift apart. The independent Taylor
//! [`expm`](vqc_linalg::expm::expm) survives as a reference implementation that a
//! debug assertion checks the shared path against on small systems.

use crate::workspace::GrapeWorkspace;
use crate::{ControlHamiltonian, DeviceModel, PulseSequence};
use vqc_linalg::{Matrix, C64};

/// The result of propagating a pulse: every per-slice propagator plus the cumulative
/// forward and backward partial products needed for analytic GRAPE gradients.
#[derive(Debug, Clone)]
pub struct Propagation {
    /// `slice[t] = exp(-i Δt H(t))`.
    pub slice_unitaries: Vec<Matrix>,
    /// `forward[t] = slice[t] · slice[t-1] · … · slice[0]` (the state of the evolution
    /// *after* slice `t`).
    pub forward: Vec<Matrix>,
    /// `backward[t] = slice[T-1] · … · slice[t+1]` (the remaining evolution *after*
    /// slice `t`); `backward[T-1]` is the identity.
    pub backward: Vec<Matrix>,
}

impl Propagation {
    /// The total evolution operator of the pulse.
    pub fn total(&self) -> &Matrix {
        // audit:allow(unwrap): pulses are validated non-empty before propagation
        self.forward.last().expect("propagation of an empty pulse")
    }
}

/// Builds the Hamiltonian of one time slice: `H(t) = H_drift + Σ_k u_k(t) H_k`.
pub fn slice_hamiltonian(
    drift: &Matrix,
    controls: &[ControlHamiltonian],
    pulse: &PulseSequence,
    t: usize,
) -> Matrix {
    let mut h = Matrix::zeros(drift.rows(), drift.cols());
    slice_hamiltonian_into(drift, controls, pulse, t, &mut h);
    h
}

/// Writes the Hamiltonian of one time slice into `out` without allocating.
///
/// # Panics
///
/// Panics if `out` does not have the drift's shape.
pub fn slice_hamiltonian_into(
    drift: &Matrix,
    controls: &[ControlHamiltonian],
    pulse: &PulseSequence,
    t: usize,
    out: &mut Matrix,
) {
    out.copy_from(drift);
    for (k, control) in controls.iter().enumerate() {
        let amp = pulse.amplitude(k, t);
        if amp != 0.0 {
            out.add_scaled_assign(C64::from_real(amp), &control.operator);
        }
    }
}

/// Propagates a pulse on a device, returning all intermediate products.
///
/// The slice propagators come from the eigendecomposition path shared with the GRAPE
/// gradient kernel; in debug builds each one is cross-checked against the
/// independent Taylor `expm` on small systems (agreement to `1e-10`).
///
/// # Panics
///
/// Panics if the pulse was built for a different number of controls than the device.
pub fn propagate(device: &DeviceModel, pulse: &PulseSequence) -> Propagation {
    let controls = device.control_hamiltonians();
    assert_eq!(
        controls.len(),
        pulse.num_controls(),
        "pulse has {} waveforms but the device has {} controls",
        pulse.num_controls(),
        controls.len()
    );
    let mut workspace = GrapeWorkspace::new(device, pulse.num_slices());
    workspace.propagate(pulse);

    // The Taylor expm is the independent reference implementation: on systems small
    // enough to pay for it, every debug build verifies the shared
    // eigendecomposition propagator against it.
    #[cfg(debug_assertions)]
    if device.dim() <= 4 {
        let drift = device.drift();
        let dt = pulse.dt_ns();
        for t in 0..pulse.num_slices() {
            let h = slice_hamiltonian(&drift, &controls, pulse, t);
            let taylor = vqc_linalg::expm::expm(&h.scale(C64::new(0.0, -dt)));
            debug_assert!(
                workspace.slice_unitaries()[t].approx_eq(&taylor, 1e-10),
                "eigendecomposition and Taylor propagators disagree at slice {t}"
            );
        }
    }

    Propagation {
        slice_unitaries: workspace.slice_unitaries().to_vec(),
        forward: workspace.forward().to_vec(),
        backward: workspace.backward().to_vec(),
    }
}

/// Convenience wrapper returning only the total evolution operator of a pulse.
pub fn final_unitary(device: &DeviceModel, pulse: &PulseSequence) -> Matrix {
    propagate(device, pulse).total().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::CHARGE_DRIVE_MAX;
    use std::f64::consts::PI;
    use vqc_linalg::fidelity::trace_fidelity;

    #[test]
    fn zero_pulse_is_identity_evolution() {
        let device = DeviceModel::qubits_line(2);
        let pulse = PulseSequence::zeros(device.num_controls(), 8, 0.5);
        let u = final_unitary(&device, &pulse);
        assert!(u.approx_eq(&Matrix::identity(4), 1e-10));
    }

    #[test]
    fn propagation_products_are_consistent() {
        let device = DeviceModel::qubits_line(1);
        let pulse = PulseSequence::seeded_guess(&device, 10, 0.5, 7);
        let prop = propagate(&device, &pulse);
        // forward[t] · (nothing)  and  backward[t] · slice[t] · forward[t-1]  must give
        // the same total for every t.
        let total = prop.total().clone();
        for t in 0..pulse.num_slices() {
            let rebuilt = if t == 0 {
                prop.backward[t].matmul(&prop.slice_unitaries[t])
            } else {
                prop.backward[t]
                    .matmul(&prop.slice_unitaries[t])
                    .matmul(&prop.forward[t - 1])
            };
            assert!(rebuilt.approx_eq(&total, 1e-9), "slice {t} inconsistent");
        }
    }

    #[test]
    fn constant_charge_drive_realizes_x_rotation() {
        // A constant charge drive Ω for time T produces Rx(2ΩT); drive at the maximum
        // amplitude for T = π / (2 Ω_max) to get an X gate (2.5 ns, as in Table 1).
        let device = DeviceModel::qubits_line(1);
        let t_total = PI / (2.0 * CHARGE_DRIVE_MAX);
        let num_slices = 50;
        let dt = t_total / num_slices as f64;
        let mut pulse = PulseSequence::zeros(device.num_controls(), num_slices, dt);
        for t in 0..num_slices {
            pulse.set_amplitude(0, t, CHARGE_DRIVE_MAX);
        }
        let u = final_unitary(&device, &pulse);
        let target = vqc_sim::gates::x();
        assert!(
            trace_fidelity(&u, &target) > 0.9999,
            "fidelity {}",
            trace_fidelity(&u, &target)
        );
        // And the required time is exactly the 2.5 ns the paper's Table 1 lists for Rx.
        assert!((t_total - 2.5).abs() < 0.01);
    }

    #[test]
    fn flux_drive_is_15x_faster_for_z_rotations() {
        use crate::device::FLUX_DRIVE_MAX;
        // A constant flux drive produces diag(1, e^{-iΩT}) — a Z rotation. Time for a π
        // phase at max amplitude:
        let t_z = PI / FLUX_DRIVE_MAX;
        let t_x = PI / (2.0 * CHARGE_DRIVE_MAX);
        // Z rotations are 15x faster than X rotations... but the X rotation only needs
        // half the angle per unit drive (a†+a has eigenvalues ±1), hence the 7.5x here;
        // the paper's Table-1 ratio (0.4 ns vs 2.5 ns ≈ 6x) reflects the same asymmetry.
        assert!(t_x / t_z > 5.0);

        let device = DeviceModel::qubits_line(1);
        let num_slices = 20;
        let dt = t_z / num_slices as f64;
        let mut pulse = PulseSequence::zeros(device.num_controls(), num_slices, dt);
        for t in 0..num_slices {
            pulse.set_amplitude(1, t, FLUX_DRIVE_MAX);
        }
        let u = final_unitary(&device, &pulse);
        // Up to global phase this is a Pauli-Z.
        assert!(u.approx_eq_up_to_phase(&vqc_sim::gates::z(), 1e-6));
    }

    #[test]
    fn coupling_drive_entangles() {
        use crate::device::COUPLING_MAX;
        let device = DeviceModel::qubits_line(2);
        let num_slices = 40;
        // Evolve the XX coupling for a π/4 "area" to create entanglement.
        let t_total = PI / (4.0 * COUPLING_MAX);
        let dt = t_total / num_slices as f64;
        let mut pulse = PulseSequence::zeros(device.num_controls(), num_slices, dt);
        let coupling_index = device.num_controls() - 1;
        for t in 0..num_slices {
            pulse.set_amplitude(coupling_index, t, COUPLING_MAX);
        }
        let u = final_unitary(&device, &pulse);
        assert!(u.is_unitary(1e-9));
        // The evolution must differ from any tensor product of single-qubit identities;
        // check it moves |00> into a superposition involving |11>.
        assert!(u[(3, 0)].abs() > 0.5);
    }

    #[test]
    #[should_panic(expected = "waveforms")]
    fn mismatched_pulse_is_rejected() {
        let device = DeviceModel::qubits_line(2);
        let pulse = PulseSequence::zeros(3, 5, 0.5);
        propagate(&device, &pulse);
    }
}
