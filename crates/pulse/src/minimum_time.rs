//! Binary search for the minimum pulse duration (Section 5.3).
//!
//! GRAPE is run at candidate durations; the shortest duration at which it still reaches
//! the target fidelity is the pulse time reported for a block. The search is seeded with
//! the gate-based runtime of the block as the upper bound, which guarantees that
//! GRAPE-compiled blocks are never slower than the gate-based baseline — the property
//! the paper's aggregation scheme is designed to preserve.
//!
//! Probes share work two ways: each bisection probe warm-starts from the converged
//! pulse of the nearest-duration probe so far (resampled onto the new slice grid),
//! and every probe shares one [`EigenMemo`] so slice Hamiltonians revisited across
//! probes — or across re-tuned searches via
//! [`minimum_pulse_time_with_memo`] — skip their eigendecomposition.
//!
//! A third sharing axis crosses *blocks*: [`minimum_pulse_time_seeded`] accepts a
//! [`SearchSeed`] from a structural neighbor (a previously compiled binding of the
//! same subcircuit structure, via [`crate::transposition::TranspositionTable`]) and
//! opens the bisection at the neighbor's converged window — first probe at the
//! neighbor's converged duration, warm-started from the neighbor's pulse — instead
//! of at `[lower, gate_runtime]`. A stale seed (the neighbor's window does not hold
//! at this θ) falls back to the full window, so correctness — target fidelity, never
//! slower than the gate-based upper bound — is identical to the cold search; only
//! the iterations spent differ.

use crate::grape::{try_optimize_pulse_with, GrapeOptions, GrapeResult};
use crate::memo::EigenMemo;
use crate::profile::{self, Phase};
use crate::{DeviceModel, PulseError, PulseSequence};
use serde::{Deserialize, Serialize};
use vqc_linalg::Matrix;

/// Options controlling the binary search over pulse durations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinimumTimeOptions {
    /// Search precision Δt in nanoseconds (the paper uses 0.3 ns).
    pub precision_ns: f64,
    /// Lower bound of the search window in nanoseconds.
    pub lower_bound_ns: f64,
    /// Upper bound of the search window in nanoseconds. Typically the gate-based
    /// runtime of the block being compiled.
    pub upper_bound_ns: f64,
}

impl MinimumTimeOptions {
    /// A search window from `lower` to `upper` nanoseconds with the paper's 0.3 ns
    /// precision.
    pub fn new(lower_bound_ns: f64, upper_bound_ns: f64) -> Self {
        MinimumTimeOptions {
            precision_ns: 0.3,
            lower_bound_ns,
            upper_bound_ns,
        }
    }

    /// Coarser 1 ns precision, used by the `fast` benchmark effort level.
    pub fn with_precision(mut self, precision_ns: f64) -> Self {
        self.precision_ns = precision_ns;
        self
    }
}

/// A warm start for the duration search, taken from a structural neighbor's
/// [`crate::transposition::SeedEntry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSeed {
    /// Tightest duration (ns) below which the neighbor failed to converge; the
    /// seeded bisection never probes below it.
    pub lower_bound_ns: f64,
    /// The neighbor's shortest converged duration (ns), the seeded search's
    /// opening probe. `None` when the neighbor never converged.
    pub converged_duration_ns: Option<f64>,
    /// The neighbor's converged amplitudes, resampled onto each probe's grid as
    /// its initial guess.
    pub pulse: Option<PulseSequence>,
}

/// One probe of the binary search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchProbe {
    /// Candidate duration in nanoseconds.
    pub duration_ns: f64,
    /// Whether GRAPE converged at this duration.
    pub converged: bool,
    /// Infidelity reached at this duration.
    pub infidelity: f64,
    /// GRAPE iterations spent on this probe.
    pub iterations: usize,
}

/// The result of a minimum-time search.
#[derive(Debug, Clone)]
pub struct MinimumTimeResult {
    /// Shortest duration (ns) at which GRAPE reached the target fidelity. If GRAPE never
    /// converged, this is the upper bound (the gate-based fallback).
    pub duration_ns: f64,
    /// The optimized pulse at `duration_ns`, if any probe converged.
    pub best: Option<GrapeResult>,
    /// Every probe performed, in order.
    pub probes: Vec<SearchProbe>,
    /// Whether any probe converged (i.e. whether GRAPE beat or matched the fallback).
    pub converged: bool,
    /// Whether the search ran inside a neighbor's seeded window. `false` for cold
    /// searches and for stale seeds that fell back to the full window.
    pub seeded: bool,
}

impl MinimumTimeResult {
    /// Total GRAPE iterations across all probes — the dominant component of the
    /// compilation latency this search incurs.
    pub fn total_iterations(&self) -> usize {
        self.probes.iter().map(|p| p.iterations).sum()
    }
}

/// Finds the minimum pulse duration for a target unitary by binary search.
///
/// # Errors
///
/// Propagates [`PulseError`] from GRAPE for invalid inputs (dimension mismatch or an
/// upper bound shorter than one sample period).
pub fn minimum_pulse_time(
    target: &Matrix,
    device: &DeviceModel,
    search: &MinimumTimeOptions,
    grape: &GrapeOptions,
) -> Result<MinimumTimeResult, PulseError> {
    let mut memo = EigenMemo::new();
    minimum_pulse_time_with_memo(target, device, search, grape, &mut memo)
}

/// [`minimum_pulse_time`] against a caller-owned [`EigenMemo`], so repeated searches
/// on the same device — hyperparameter re-tuning in particular replays whole
/// trajectories — reuse each other's slice eigendecompositions.
///
/// # Errors
///
/// Same as [`minimum_pulse_time`].
pub fn minimum_pulse_time_with_memo(
    target: &Matrix,
    device: &DeviceModel,
    search: &MinimumTimeOptions,
    grape: &GrapeOptions,
    memo: &mut EigenMemo,
) -> Result<MinimumTimeResult, PulseError> {
    minimum_pulse_time_seeded(target, device, search, grape, memo, None)
}

/// [`minimum_pulse_time_with_memo`] warm-started from a structural neighbor.
///
/// With a usable seed — a converged neighbor duration strictly inside the search
/// window — the first probe runs at the neighbor's converged duration with the
/// neighbor's pulse as the initial guess, and the bisection window opens at
/// `[max(lower, neighbor's failed bound), neighbor's duration]`. If that probe
/// fails (the seed is stale at this θ), the search falls back to the full window,
/// keeping the failed probe as this block's own lower-bound evidence — so the
/// result is exactly as correct as a cold search, it just normally spends far
/// fewer iterations. Without a usable window the seed's pulse (if any) still
/// warm-starts the upper-bound probe.
///
/// # Errors
///
/// Same as [`minimum_pulse_time`].
pub fn minimum_pulse_time_seeded(
    target: &Matrix,
    device: &DeviceModel,
    search: &MinimumTimeOptions,
    grape: &GrapeOptions,
    memo: &mut EigenMemo,
    seed: Option<&SearchSeed>,
) -> Result<MinimumTimeResult, PulseError> {
    let mut probes = Vec::new();
    // Converged pulses by duration, the warm-start pool for later probes.
    let mut converged_pulses: Vec<(f64, PulseSequence)> = Vec::new();

    let upper = search.upper_bound_ns.max(grape.dt_ns);
    let seed_pulse = seed.and_then(|s| s.pulse.as_ref());
    // A usable seed window needs a finite converged duration at or below the
    // gate-based upper bound; anything above it degenerates to the cold search
    // (the seed's pulse, if any, still warm-starts the opening probe). A seed
    // exactly at the upper bound opens no smaller, but its non-converging lower
    // bound still raises the bisection floor.
    let seed_upper = seed
        .and_then(|s| s.converged_duration_ns)
        .filter(|d| d.is_finite() && *d > 0.0)
        .map(|d| d.max(grape.dt_ns))
        .filter(|d| *d <= upper);

    // Probe the opening duration first: the neighbor's converged duration when
    // seeded, else the upper bound — where a failure means falling back to
    // gate-based compilation for this block.
    let first = seed_upper.unwrap_or(upper);
    // Each probe runs under a DurationProbe scope: the scope records *self
    // time* (ADAM bookkeeping, convergence control, pulse resampling) while
    // the kernel phases inside the probe charge themselves, so the profiler's
    // per-phase sum still bounds the block's wall time.
    let result = {
        let _probe = profile::scope(Phase::DurationProbe);
        try_optimize_pulse_with(target, device, first, grape, seed_pulse, Some(&mut *memo))?
    };
    probes.push(SearchProbe {
        duration_ns: first,
        converged: result.converged,
        infidelity: result.infidelity,
        iterations: result.iterations,
    });

    let mut hi;
    let mut lo;
    let seeded;
    let mut best;
    if result.converged {
        hi = first;
        lo = search.lower_bound_ns.max(0.0);
        seeded = seed_upper.is_some();
        if seeded {
            if let Some(seed) = seed {
                // The neighbor's tightest non-converging bound; merged entries can
                // carry a bound above the converged duration (different θ), so clamp.
                lo = lo.max(seed.lower_bound_ns).min(hi);
            }
        }
        converged_pulses.push((first, result.pulse.clone()));
        best = Some(result);
    } else if first < upper {
        // Stale seed: the neighbor's window does not hold at this θ. Fall back to
        // the full window; the failed probe stands as this block's own evidence
        // for the new lower bound. (A seed exactly at the upper bound that failed
        // needs no retry — the probe already was the full-window opener.)
        let retry = {
            let _probe = profile::scope(Phase::DurationProbe);
            try_optimize_pulse_with(target, device, upper, grape, seed_pulse, Some(&mut *memo))?
        };
        probes.push(SearchProbe {
            duration_ns: upper,
            converged: retry.converged,
            infidelity: retry.infidelity,
            iterations: retry.iterations,
        });
        if !retry.converged {
            return Ok(MinimumTimeResult {
                duration_ns: upper,
                best: None,
                probes,
                converged: false,
                seeded: false,
            });
        }
        hi = upper;
        lo = search.lower_bound_ns.max(first).max(0.0).min(hi);
        seeded = false;
        converged_pulses.push((upper, retry.pulse.clone()));
        best = Some(retry);
    } else {
        return Ok(MinimumTimeResult {
            duration_ns: upper,
            best: None,
            probes,
            converged: false,
            seeded: false,
        });
    }

    while hi - lo > search.precision_ns {
        let mid = 0.5 * (hi + lo);
        if mid < grape.dt_ns {
            break;
        }
        // Warm-start from the converged probe nearest in duration: its resampled
        // pulse is a far better initial guess than the seeded sinusoid.
        let warm = converged_pulses
            .iter()
            .min_by(|a, b| {
                let da = (a.0 - mid).abs();
                let db = (b.0 - mid).abs();
                // audit:allow(unwrap): probe durations are finite by construction
                da.partial_cmp(&db).expect("finite durations")
            })
            .map(|(_, pulse)| pulse.clone());
        let result = {
            let _probe = profile::scope(Phase::DurationProbe);
            try_optimize_pulse_with(target, device, mid, grape, warm.as_ref(), Some(&mut *memo))?
        };
        probes.push(SearchProbe {
            duration_ns: mid,
            converged: result.converged,
            infidelity: result.infidelity,
            iterations: result.iterations,
        });
        if result.converged {
            hi = mid;
            converged_pulses.push((mid, result.pulse.clone()));
            best = Some(result);
        } else {
            lo = mid;
        }
    }

    Ok(MinimumTimeResult {
        duration_ns: hi,
        best,
        probes,
        converged: true,
        seeded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqc_sim::gates;

    fn fast_grape() -> GrapeOptions {
        GrapeOptions::fast()
    }

    #[test]
    fn x_gate_minimum_time_is_near_table1() {
        let device = DeviceModel::qubits_line(1);
        let target = gates::x();
        let search = MinimumTimeOptions::new(0.5, 6.0).with_precision(0.5);
        let result = minimum_pulse_time(&target, &device, &search, &fast_grape()).unwrap();
        assert!(result.converged);
        // Table 1 lists 2.5 ns for Rx(π); the search works at 0.5 ns granularity so
        // anything in [2.0, 3.5] is the right ballpark.
        assert!(
            result.duration_ns >= 2.0 && result.duration_ns <= 3.6,
            "got {} ns",
            result.duration_ns
        );
        assert!(result.best.is_some());
        assert!(result.total_iterations() > 0);
    }

    #[test]
    fn z_rotation_minimum_time_is_much_shorter_than_x() {
        let device = DeviceModel::qubits_line(1);
        let search = MinimumTimeOptions::new(0.0, 4.0).with_precision(0.5);
        let z = minimum_pulse_time(
            &gates::rz(std::f64::consts::PI),
            &device,
            &search,
            &fast_grape(),
        )
        .unwrap();
        let x = minimum_pulse_time(&gates::x(), &device, &search, &fast_grape()).unwrap();
        assert!(z.converged && x.converged);
        assert!(
            z.duration_ns < x.duration_ns,
            "z {} ns vs x {} ns",
            z.duration_ns,
            x.duration_ns
        );
    }

    #[test]
    fn unreachable_target_falls_back_to_upper_bound() {
        // Give the search an upper bound far too short for an X gate.
        let device = DeviceModel::qubits_line(1);
        let search = MinimumTimeOptions::new(0.0, 1.0).with_precision(0.5);
        let result = minimum_pulse_time(&gates::x(), &device, &search, &fast_grape()).unwrap();
        assert!(!result.converged);
        assert_eq!(result.duration_ns, 1.0);
        assert!(result.best.is_none());
    }

    #[test]
    fn shared_memo_accumulates_hits_across_searches() {
        let device = DeviceModel::qubits_line(1);
        let search = MinimumTimeOptions::new(0.0, 2.0).with_precision(0.5);
        let mut memo = EigenMemo::new();
        let first = minimum_pulse_time_with_memo(
            &gates::rz(1.0),
            &device,
            &search,
            &fast_grape(),
            &mut memo,
        )
        .unwrap();
        assert!(first.converged);
        let cold_hits = memo.hits();
        assert!(!memo.is_empty());
        let second = minimum_pulse_time_with_memo(
            &gates::rz(1.0),
            &device,
            &search,
            &fast_grape(),
            &mut memo,
        )
        .unwrap();
        assert!(second.converged);
        assert!(
            memo.hits() > cold_hits,
            "a replayed search must reuse cached eigendecompositions"
        );
        assert_eq!(first.duration_ns, second.duration_ns);
    }

    /// Builds the seed a transposition-table entry would hold after `result`.
    fn seed_from(result: &MinimumTimeResult, search: &MinimumTimeOptions) -> SearchSeed {
        let failed_below = result
            .probes
            .iter()
            .filter(|p| !p.converged)
            .map(|p| p.duration_ns)
            .fold(search.lower_bound_ns, f64::max);
        SearchSeed {
            lower_bound_ns: failed_below,
            converged_duration_ns: result.converged.then_some(result.duration_ns),
            pulse: result.best.as_ref().map(|b| b.pulse.clone()),
        }
    }

    #[test]
    fn seeded_search_matches_cold_within_precision_with_fewer_probes() {
        let device = DeviceModel::qubits_line(1);
        let search = MinimumTimeOptions::new(0.0, 4.0).with_precision(0.5);
        let cold = minimum_pulse_time(&gates::rz(1.0), &device, &search, &fast_grape()).unwrap();
        assert!(cold.converged && !cold.seeded);

        let seed = seed_from(&cold, &search);
        let mut memo = EigenMemo::new();
        let seeded = minimum_pulse_time_seeded(
            &gates::rz(1.0),
            &device,
            &search,
            &fast_grape(),
            &mut memo,
            Some(&seed),
        )
        .unwrap();
        assert!(seeded.converged && seeded.seeded);
        assert!(
            (seeded.duration_ns - cold.duration_ns).abs() <= search.precision_ns + 1e-9,
            "seeded {} ns vs cold {} ns",
            seeded.duration_ns,
            cold.duration_ns
        );
        // The cold search's final window is already within precision, so the
        // seeded search needs exactly one (warm-started) probe.
        assert_eq!(seeded.probes.len(), 1);
        assert!(seeded.total_iterations() <= cold.total_iterations());
    }

    #[test]
    fn stale_seed_falls_back_to_the_full_window() {
        let device = DeviceModel::qubits_line(1);
        let search = MinimumTimeOptions::new(0.5, 6.0).with_precision(0.5);
        // A seed claiming an X gate converges at 0.8 ns — far below the true
        // minimum, so the opening probe must fail and the search must recover.
        let seed = SearchSeed {
            lower_bound_ns: 0.0,
            converged_duration_ns: Some(0.8),
            pulse: None,
        };
        let mut memo = EigenMemo::new();
        let result = minimum_pulse_time_seeded(
            &gates::x(),
            &device,
            &search,
            &fast_grape(),
            &mut memo,
            Some(&seed),
        )
        .unwrap();
        assert!(result.converged);
        assert!(!result.seeded, "a stale seed must not count as seeded");
        assert!(!result.probes[0].converged);
        assert_eq!(result.probes[0].duration_ns, 0.8);
        assert_eq!(
            result.probes[1].duration_ns, 6.0,
            "fallback probes the full window"
        );
        // Same ballpark as the cold Table-1 search.
        assert!(
            result.duration_ns >= 2.0 && result.duration_ns <= 3.6,
            "got {} ns",
            result.duration_ns
        );
    }

    #[test]
    fn seed_at_or_above_the_upper_bound_degenerates_to_cold() {
        let device = DeviceModel::qubits_line(1);
        let search = MinimumTimeOptions::new(0.0, 2.0).with_precision(0.5);
        let cold = minimum_pulse_time(&gates::rz(1.0), &device, &search, &fast_grape()).unwrap();
        // The neighbor's converged duration is no better than our gate-based
        // upper bound: no window to seed, only the pulse warm-starts.
        let seed = SearchSeed {
            lower_bound_ns: 0.0,
            converged_duration_ns: Some(5.0),
            pulse: cold.best.as_ref().map(|b| b.pulse.clone()),
        };
        let mut memo = EigenMemo::new();
        let result = minimum_pulse_time_seeded(
            &gates::rz(1.0),
            &device,
            &search,
            &fast_grape(),
            &mut memo,
            Some(&seed),
        )
        .unwrap();
        assert!(result.converged && !result.seeded);
        assert_eq!(result.probes[0].duration_ns, 2.0);
        assert!((result.duration_ns - cold.duration_ns).abs() <= search.precision_ns + 1e-9);
    }

    #[test]
    fn probes_shrink_the_window() {
        let device = DeviceModel::qubits_line(1);
        let search = MinimumTimeOptions::new(0.0, 2.0).with_precision(0.5);
        let result = minimum_pulse_time(&gates::rz(1.0), &device, &search, &fast_grape()).unwrap();
        assert!(result.converged);
        // The first probe is always the upper bound, later probes bisect.
        assert!(result.probes.len() >= 2);
        assert_eq!(result.probes[0].duration_ns, 2.0);
        assert!(result.duration_ns <= 1.0 + 1e-9);
    }
}
